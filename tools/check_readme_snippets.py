#!/usr/bin/env python3
"""Extracts fenced ``sh`` blocks from README.md and smoke-runs each one.

Documentation that cannot be executed rots; this checker keeps every
command line in the README honest. Rules:

* Only ``` ```sh``` fences are run (```cpp`` etc. are ignored).
* A block is skipped when an HTML comment of the form
  ``<!-- snippet: skip ... -->`` appears on one of the few lines above
  its fence (used for the tier-1 block CI runs as its own job, and for
  paper-scale/long-running recipes).
* Each block runs under ``bash -euo pipefail`` in its own scratch
  directory, with the literal ``./build`` rewritten to the real build
  tree, so blocks can create files without dirtying the checkout.
* The caller scales workloads via the usual FLIM_BENCH_* environment
  knobs (CI sets tiny values); FLIM_RESULTS_DIR/FLIM_WEIGHTS_DIR
  default into the scratch directory so runs stay hermetic and the
  model cache is shared across blocks.

Usage: tools/check_readme_snippets.py [--build-dir BUILD] [--readme FILE]
"""

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile

SKIP_MARKER = "<!-- snippet: skip"
SKIP_LOOKBACK_LINES = 3


def extract_blocks(readme_text):
    """Returns [(first_line_number, skipped, script)] for each sh fence."""
    blocks = []
    lines = readme_text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == "```sh":
            lookback = lines[max(0, i - SKIP_LOOKBACK_LINES):i]
            skipped = any(SKIP_MARKER in line for line in lookback)
            body = []
            i += 1
            first_line = i + 1
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            blocks.append((first_line, skipped, "\n".join(body)))
        i += 1
    return blocks


def main():
    parser = argparse.ArgumentParser()
    repo = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--build-dir", default=str(repo / "build"))
    parser.add_argument("--readme", default=str(repo / "README.md"))
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir).resolve()
    if not build_dir.is_dir():
        print(f"error: build dir {build_dir} does not exist (build first)")
        return 2

    blocks = extract_blocks(pathlib.Path(args.readme).read_text())
    if not blocks:
        print("error: no ```sh blocks found -- did the README change shape?")
        return 2

    failures = 0
    ran = 0
    with tempfile.TemporaryDirectory(prefix="readme_snippets_") as scratch:
        scratch = pathlib.Path(scratch)
        env = dict(os.environ)
        # Hermetic output/cache dirs; the weight cache is shared across
        # blocks so each model trains at most once.
        env.setdefault("FLIM_RESULTS_DIR", str(scratch / "results"))
        env.setdefault("FLIM_WEIGHTS_DIR", str(scratch / "weights"))
        for index, (line, skipped, script) in enumerate(blocks):
            label = f"block #{index} (README.md:{line})"
            if skipped:
                print(f"-- {label}: skipped by marker")
                continue
            ran += 1
            workdir = scratch / f"block_{index}"
            workdir.mkdir()
            rewritten = script.replace("./build", str(build_dir))
            print(f"-- {label}: running\n{script}")
            proc = subprocess.run(
                ["bash", "-euo", "pipefail", "-c", rewritten],
                cwd=workdir, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            if proc.returncode != 0:
                failures += 1
                print(f"** {label} FAILED (exit {proc.returncode})")
                print(proc.stdout[-4000:])
            else:
                print(f"-- {label}: ok")
    print(f"README snippets: {ran} run, "
          f"{len(blocks) - ran} skipped, {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

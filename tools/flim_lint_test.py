#!/usr/bin/env python3
"""Self-test for flim_lint.py, wired into ctest as `lint_selftest`.

Builds a throwaway fixture tree with exactly one violation per rule plus an
allowlisted exception, and asserts the linter finds precisely what it
should: every planted violation (and nothing else), suppression through the
allowlist, per-line vs file-level entries, and stale-entry detection. The
linter guards the determinism story of the whole repo; this keeps the
linter itself from silently rotting.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import flim_lint  # noqa: E402


FIXTURES = {
    # One rng-source violation (line 3).
    "src/core/campaign_fix.cpp": (
        "#include <cstdlib>\n"
        "int draw() {\n"
        "  return rand() % 7;\n"
        "}\n"
    ),
    # One unordered-emission violation (line 2): unordered container in an
    # emission-path file.
    "src/exp/store_fix.cpp": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, double> g_points;\n"
    ),
    # One cout-in-library violation (line 2).
    "src/tensor/ops_fix.cpp": (
        "#include <iostream>\n"
        "void dump() { std::cout << 1; }\n"
    ),
    # One float-keyed-map violation (line 2).
    "src/fault/table_fix.hpp": (
        "#include <map>\n"
        "std::map<double, int> by_rate;\n"
    ),
    # One mutex-annotation violation (line 4): header mutex member, no
    # GUARDED_BY anywhere in the file.
    "src/core/cache_fix.hpp": (
        "#include <mutex>\n"
        "class Cache {\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  int value_ = 0;\n"
        "};\n"
    ),
    # One fleet-raw-mutex violation (line 2): raw std::mutex in fleet code.
    "src/fleet/state_fix.cpp": (
        "#include <mutex>\n"
        "std::mutex g_state_mutex;\n"
    ),
    # One fleet-naked-socket violation (line 2): raw socket() call above
    # the wire layer.
    "src/fleet/conn_fix.cpp": (
        "#include <sys/socket.h>\n"
        "int open_conn() { return ::socket(2, 1, 0); }\n"
    ),
    # The wire layer itself is the sanctioned home of raw socket calls and
    # must not fire fleet-naked-socket; fleet code holding RAII handles and
    # core::Mutex (with method names that merely contain socket-call tokens,
    # like send_line/connect_to) must not fire either rule.
    "src/fleet/wire_fix_clean.cpp": (
        "#include \"core/sync.hpp\"\n"
        "core::Mutex g_ok_mutex;\n"
        "void pump() { send_line_all(); connect_to_peer(); }\n"
    ),
    "src/fleet/wire.cpp": (
        "#include <sys/socket.h>\n"
        "int raw() { return ::socket(2, 1, 0); }\n"
    ),
    # One serve-raw-mutex violation (line 2): raw std::mutex in serving code.
    "src/serve/pool_fix.cpp": (
        "#include <mutex>\n"
        "std::mutex g_pool_mutex;\n"
    ),
    # One serve-naked-socket violation (line 2): raw socket() call in the
    # serving layer, which has no wire exemption at all.
    "src/serve/sock_fix.cpp": (
        "#include <sys/socket.h>\n"
        "int open_serve() { return ::socket(2, 1, 0); }\n"
    ),
    # Serve code holding RAII wire handles and core::Mutex must not fire
    # either serve rule, even when method names contain socket-call tokens.
    "src/serve/clean_serve_fix.cpp": (
        "#include \"core/sync.hpp\"\n"
        "core::Mutex g_serve_mutex;\n"
        "void pump() { send_line_all(); connect_to_peer(); }\n"
    ),
    # Allowlisted exception: a CLI-style file that prints to stdout; the
    # fixture allowlist vets it file-level, mirroring src/cli in the repo.
    "src/cli/print_fix.cpp": (
        "#include <iostream>\n"
        "void emit() { std::cout << \"csv\"; }\n"
    ),
    # Clean file: patterns inside comments and strings must NOT fire, and
    # identifiers containing rule tokens (reset_time) are not violations.
    "src/core/clean_fix.cpp": (
        "// rand() and std::cout in a comment are fine\n"
        "/* std::unordered_map<int,int> in a block comment */\n"
        "const char* kDoc = \"call srand() at time()\";\n"
        "void reset_time();\n"
        "int runtime(int x);\n"
    ),
    # Annotated header: mutex member + GUARDED_BY elsewhere in the file is
    # the sanctioned pattern and must pass.
    "src/core/annotated_fix.hpp": (
        "#include <mutex>\n"
        "#define FLIM_GUARDED_BY(x)\n"
        "class Pool {\n"
        "  std::mutex mutex_;\n"
        "  int tasks_ FLIM_GUARDED_BY(mutex_) = 0;\n"
        "};\n"
    ),
}

ALLOWLIST = (
    "# fixture allowlist\n"
    "cout-in-library src/cli/print_fix.cpp  # CLI output is the product\n"
)


class LintSelfTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="flim_lint_fixture_")
        self.root = Path(self._tmp.name)
        for rel, content in FIXTURES.items():
            path = self.root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        self.allowlist = self.root / "allowlist.txt"
        self.allowlist.write_text(ALLOWLIST, encoding="utf-8")

    def tearDown(self):
        self._tmp.cleanup()

    def run_lint(self, allowlist: Path | None = None):
        findings = []
        for rel in flim_lint.iter_sources(self.root):
            findings.extend(flim_lint.scan_file(self.root, rel))
        entries = flim_lint.load_allowlist(allowlist or self.allowlist)
        kept = flim_lint.apply_allowlist(findings, entries)
        return kept, entries

    def test_one_violation_per_rule_and_nothing_else(self):
        kept, _ = self.run_lint()
        got = {(f.path, f.line_no, f.rule.name) for f in kept}
        expect = {
            ("src/core/campaign_fix.cpp", 3, "rng-source"),
            ("src/exp/store_fix.cpp", 2, "unordered-emission"),
            ("src/tensor/ops_fix.cpp", 2, "cout-in-library"),
            ("src/fault/table_fix.hpp", 2, "float-keyed-map"),
            ("src/core/cache_fix.hpp", 4, "mutex-annotation"),
            ("src/fleet/state_fix.cpp", 2, "fleet-raw-mutex"),
            ("src/fleet/conn_fix.cpp", 2, "fleet-naked-socket"),
            ("src/serve/pool_fix.cpp", 2, "serve-raw-mutex"),
            ("src/serve/sock_fix.cpp", 2, "serve-naked-socket"),
        }
        self.assertEqual(got, expect)

    def test_allowlist_suppresses_the_vetted_file(self):
        kept, entries = self.run_lint()
        self.assertNotIn(
            "src/cli/print_fix.cpp", [f.path for f in kept],
            "file-level allowlist entry must suppress the CLI fixture",
        )
        self.assertEqual(entries[0].used, 1)

    def test_per_line_entry_only_suppresses_matching_lines(self):
        allow = self.root / "perline.txt"
        allow.write_text(
            "rng-source src/core/campaign_fix.cpp rand() % 7\n"
            "unordered-emission src/exp/store_fix.cpp g_points\n",
            encoding="utf-8",
        )
        kept, entries = self.run_lint(allowlist=allow)
        rules_left = {f.rule.name for f in kept}
        self.assertNotIn("rng-source", rules_left)
        self.assertNotIn("unordered-emission", rules_left)
        self.assertTrue(all(e.used == 1 for e in entries))

    def test_stale_allowlist_entry_is_reported(self):
        allow = self.root / "stale.txt"
        allow.write_text(
            "cout-in-library src/cli/print_fix.cpp\n"
            "rng-source src/core/clean_fix.cpp  # suppresses nothing\n",
            encoding="utf-8",
        )
        _, entries = self.run_lint(allowlist=allow)
        stale = [e for e in entries if e.used == 0]
        self.assertEqual(len(stale), 1)
        self.assertEqual(stale[0].path, "src/core/clean_fix.cpp")

    def test_unknown_rule_in_allowlist_is_rejected(self):
        allow = self.root / "bad.txt"
        allow.write_text("no-such-rule src/core/clean_fix.cpp\n", encoding="utf-8")
        with self.assertRaises(SystemExit):
            flim_lint.load_allowlist(allow)

    def test_main_exit_codes(self):
        # The fixture tree has violations -> 1; with every violation vetted
        # per-line -> 0.
        self.assertEqual(
            flim_lint.main(["--root", str(self.root),
                            "--allowlist", str(self.allowlist)]),
            1,
        )
        allow = self.root / "all.txt"
        allow.write_text(
            "cout-in-library src/cli/print_fix.cpp\n"
            "rng-source src/core/campaign_fix.cpp rand()\n"
            "unordered-emission src/exp/store_fix.cpp g_points\n"
            "cout-in-library src/tensor/ops_fix.cpp std::cout\n"
            "float-keyed-map src/fault/table_fix.hpp by_rate\n"
            "mutex-annotation src/core/cache_fix.hpp std::mutex mutex_\n"
            "fleet-raw-mutex src/fleet/state_fix.cpp g_state_mutex\n"
            "fleet-naked-socket src/fleet/conn_fix.cpp ::socket\n"
            "serve-raw-mutex src/serve/pool_fix.cpp g_pool_mutex\n"
            "serve-naked-socket src/serve/sock_fix.cpp ::socket\n",
            encoding="utf-8",
        )
        self.assertEqual(
            flim_lint.main(["--root", str(self.root), "--allowlist", str(allow)]),
            0,
        )


if __name__ == "__main__":
    unittest.main()

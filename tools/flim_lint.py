#!/usr/bin/env python3
"""flim_lint: the FLIM determinism/correctness lint.

The repo's core guarantee -- campaign results reproduce byte-identically
across serial/pooled/sharded/resumed executions -- is easy to break with one
innocent-looking line: an ad-hoc RNG, a wall-clock call, iteration over an
unordered container in an emission path. Generic linters cannot know these
project invariants, so this one encodes them as a small set of regex-lite
rules over the C++ tree (see docs/static-analysis.md#determinism-lint for
the rule catalog and the allowlist workflow):

  rng-source         no rand()/srand()/std::random_device/std::mt19937/
                     wall-clock seeding in src/ outside the seeded RNG
                     (src/core/rng.*). Everything random must flow from
                     core::Rng so seeds reproduce runs.
  unordered-emission no std::unordered_map/set in fingerprint/CSV/JSONL
                     emission paths (core/report, exp/store, exp/scenario,
                     fault_registry canonical forms, cli). Unordered
                     iteration order is unspecified and varies across
                     libstdc++ versions -- emitted bytes must not.
  cout-in-library    no std::cout/printf in src/ (library code returns data
                     or uses core::log; stdout belongs to the CLI, which is
                     a vetted allowlist exception).
  float-keyed-map    no float/double-keyed std::map/set/unordered_map:
                     float key comparison makes container behaviour depend
                     on rounding environment.
  mutex-annotation   every mutex member declared in a header must live in a
                     file using GUARDED_BY thread-safety annotations
                     (core/annotations.hpp), so Clang's -Wthread-safety can
                     actually see the lock discipline.
  fleet-raw-mutex    no raw std::mutex / std::lock_guard / std::unique_lock
                     in src/fleet; the fleet's coordinator state is guarded
                     by core::Mutex + MutexLock/CondLock (core/sync.hpp) so
                     -Wthread-safety covers every lock site.
  fleet-naked-socket no raw POSIX socket calls in src/fleet outside the RAII
                     wrapper (src/fleet/wire.*); everything above the wire
                     layer handles Socket/LineChannel objects, never file
                     descriptors, so no path can leak or double-close one.
  serve-raw-mutex    fleet-raw-mutex, mirrored over src/serve: the serving
                     layer's shared state (plan cache, batcher queue) uses
                     core::Mutex + MutexLock/CondLock exclusively.
  serve-naked-socket fleet-naked-socket, mirrored over src/serve with no
                     exemption at all: serve has no wire layer of its own --
                     it reuses src/fleet/wire.*, so every serve file handles
                     Socket/LineChannel objects, never file descriptors.

Findings print as `path:line: [rule] message` and exit non-zero. Vetted
exceptions go in the allowlist file (default tools/lint_allowlist.txt), one
per line:

    <rule> <path> [<line-substring>]   # justification

With a substring the entry suppresses only offending lines containing it
(per-line vetting); without, the whole file is exempt from that rule (for
structural exceptions like CLI stdout). Entries that no longer suppress
anything are themselves an error, so the allowlist cannot rot.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Directories scanned relative to the root (library code only: benches,
# tests, and examples may time things and print freely).
SRC_DIR = "src"

# Emission-path files for unordered-emission: everything whose output bytes
# are fingerprinted, diffed, or resumed against.
EMISSION_PATHS = (
    "src/core/report",
    "src/exp/store",
    "src/exp/scenario",
    "src/fault/fault_registry",
    "src/reliability/ecc/",
    "src/cli/",
)

RNG_EXEMPT = ("src/core/rng.",)

# The fleet's RAII socket layer: the only files allowed to touch raw fds.
WIRE_EXEMPT = ("src/fleet/wire.",)


@dataclass
class Rule:
    name: str
    message: str
    pattern: re.Pattern
    applies: "callable"


@dataclass
class Finding:
    path: str  # root-relative, forward slashes
    line_no: int  # 1-based
    line: str
    rule: Rule

    def format(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule.name}] {self.rule.message}"


@dataclass
class AllowEntry:
    rule: str
    path: str
    substring: str | None
    line_no: int  # line in the allowlist file, for stale reporting
    used: int = 0


def in_src(path: str) -> bool:
    return path.startswith(SRC_DIR + "/")


def rng_scope(path: str) -> bool:
    return in_src(path) and not any(path.startswith(p) for p in RNG_EXEMPT)


def emission_scope(path: str) -> bool:
    return any(path.startswith(p) for p in EMISSION_PATHS)


def header_scope(path: str) -> bool:
    return in_src(path) and Path(path).suffix in {".hpp", ".hh", ".h"}


def fleet_scope(path: str) -> bool:
    return path.startswith("src/fleet/")


def fleet_nonwire_scope(path: str) -> bool:
    return fleet_scope(path) and not any(
        path.startswith(p) for p in WIRE_EXEMPT
    )


def serve_scope(path: str) -> bool:
    return path.startswith("src/serve/")


RULES = [
    Rule(
        name="rng-source",
        message=(
            "nondeterministic randomness/time source in library code; all "
            "randomness must flow from the seeded core::Rng (core/rng.hpp)"
        ),
        pattern=re.compile(
            r"\brand\s*\(|\bsrand\s*\(|std::random_device"
            r"|std::mt19937|std::minstd_rand|std::default_random_engine"
            r"|\btime\s*\(|\bclock\s*\(|\bgettimeofday\s*\("
            r"|std::chrono::(system|steady|high_resolution)_clock::now"
        ),
        applies=rng_scope,
    ),
    Rule(
        name="unordered-emission",
        message=(
            "unordered container in an emission path; iteration order is "
            "unspecified and would leak into fingerprinted/emitted bytes -- "
            "use std::map/std::set or a sorted vector"
        ),
        pattern=re.compile(r"std::unordered_(map|set)\b"),
        applies=emission_scope,
    ),
    Rule(
        name="cout-in-library",
        message=(
            "stdout write in library code; return data to the caller or use "
            "core::log (stdout belongs to the CLI layer)"
        ),
        pattern=re.compile(r"std::cout\b|\bprintf\s*\(|\bputs\s*\("),
        applies=in_src,
    ),
    Rule(
        name="float-keyed-map",
        message=(
            "float-keyed associative container; float comparison/hashing "
            "makes behaviour depend on the rounding environment -- key on "
            "the label or a fixed-point/integer form"
        ),
        pattern=re.compile(
            r"std::(unordered_)?(map|set)\s*<\s*(float|double|long\s+double)\b"
        ),
        applies=in_src,
    ),
    Rule(
        name="mutex-annotation",
        message=(
            "mutex member in a header without thread-safety annotations; "
            "annotate the guarded members with FLIM_GUARDED_BY "
            "(core/annotations.hpp) so -Wthread-safety verifies the lock "
            "discipline"
        ),
        pattern=re.compile(
            r"^\s*(mutable\s+)?((std::)?(shared_)?mutex|(core::)?Mutex)\s+\w+"
        ),
        applies=header_scope,
    ),
    Rule(
        name="fleet-raw-mutex",
        message=(
            "raw standard-library mutex in fleet code; use core::Mutex with "
            "MutexLock/CondLock (core/sync.hpp) so Clang's -Wthread-safety "
            "verifies the lock discipline"
        ),
        pattern=re.compile(
            r"std::(recursive_|timed_|shared_)?mutex\b"
            r"|std::(scoped_lock|lock_guard|unique_lock|shared_lock)\b"
        ),
        applies=fleet_scope,
    ),
    Rule(
        name="fleet-naked-socket",
        message=(
            "raw socket call outside the wire layer; fleet code above "
            "src/fleet/wire.* must hold RAII Socket/LineChannel handles, "
            "never file descriptors"
        ),
        pattern=re.compile(
            r"\b(socket|bind|listen|accept|accept4|connect|send|recv"
            r"|recvfrom|sendto|setsockopt|getsockname|shutdown|poll"
            r"|inet_pton)\s*\("
            r"|::close\s*\("
        ),
        applies=fleet_nonwire_scope,
    ),
    Rule(
        name="serve-raw-mutex",
        message=(
            "raw standard-library mutex in serving code; use core::Mutex "
            "with MutexLock/CondLock (core/sync.hpp) so Clang's "
            "-Wthread-safety verifies the lock discipline"
        ),
        pattern=re.compile(
            r"std::(recursive_|timed_|shared_)?mutex\b"
            r"|std::(scoped_lock|lock_guard|unique_lock|shared_lock)\b"
        ),
        applies=serve_scope,
    ),
    Rule(
        name="serve-naked-socket",
        message=(
            "raw socket call in serving code; src/serve has no wire layer "
            "of its own -- it must hold RAII Socket/LineChannel handles "
            "from src/fleet/wire.*, never file descriptors"
        ),
        pattern=re.compile(
            r"\b(socket|bind|listen|accept|accept4|connect|send|recv"
            r"|recvfrom|sendto|setsockopt|getsockname|shutdown|poll"
            r"|inet_pton)\s*\("
            r"|::close\s*\("
        ),
        applies=serve_scope,
    ),
]


BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT = re.compile(r"//[^\n]*")
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')


def scrub(text: str) -> str:
    """Blanks comments and string literals, preserving line structure."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    text = STRING_LIT.sub(blank, text)
    text = LINE_COMMENT.sub(blank, text)
    return text


def scan_file(root: Path, rel: str) -> list[Finding]:
    raw = (root / rel).read_text(encoding="utf-8", errors="replace")
    lines = scrub(raw).splitlines()
    findings: list[Finding] = []

    file_rules = [r for r in RULES if r.applies(rel)]
    if not file_rules:
        return findings

    # mutex-annotation is file-contextual: a mutex member only needs the
    # file to use GUARDED_BY somewhere (the annotation sits on the guarded
    # members, not on the mutex line itself).
    has_guarded_by = "GUARDED_BY(" in raw

    for i, line in enumerate(lines, start=1):
        for rule in file_rules:
            if rule.name == "mutex-annotation" and has_guarded_by:
                continue
            if rule.pattern.search(line):
                findings.append(Finding(rel, i, line, rule))
    return findings


def load_allowlist(path: Path) -> list[AllowEntry]:
    entries: list[AllowEntry] = []
    if not path.exists():
        return entries
    for line_no, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(None, 2)
        if len(parts) < 2:
            raise SystemExit(
                f"{path}:{line_no}: allowlist entry needs '<rule> <path> "
                f"[<line-substring>]', got: {raw!r}"
            )
        rule, file_path = parts[0], parts[1]
        if rule not in {r.name for r in RULES}:
            raise SystemExit(
                f"{path}:{line_no}: unknown rule '{rule}' "
                f"(rules: {', '.join(r.name for r in RULES)})"
            )
        substring = parts[2].strip() if len(parts) == 3 else None
        entries.append(AllowEntry(rule, file_path, substring, line_no))
    return entries


def apply_allowlist(
    findings: list[Finding], entries: list[AllowEntry]
) -> list[Finding]:
    kept: list[Finding] = []
    for f in findings:
        suppressed = False
        for e in entries:
            if e.rule != f.rule.name or e.path != f.path:
                continue
            if e.substring is not None and e.substring not in f.line:
                continue
            e.used += 1
            suppressed = True
            break
        if not suppressed:
            kept.append(f)
    return kept


def iter_sources(root: Path) -> list[str]:
    out = []
    base = root / SRC_DIR
    if base.is_dir():
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                out.append(p.relative_to(root).as_posix())
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="FLIM determinism/correctness lint (see docs/static-analysis.md)"
    )
    ap.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repo root to scan (default: this checkout)",
    )
    ap.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help="vetted-exception file (default: <root>/tools/lint_allowlist.txt)",
    )
    ap.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        return 0

    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "tools" / "lint_allowlist.txt"
    entries = load_allowlist(allowlist_path)

    findings: list[Finding] = []
    files = iter_sources(root)
    for rel in files:
        findings.extend(scan_file(root, rel))
    findings = apply_allowlist(findings, entries)

    status = 0
    for f in findings:
        print(f.format())
        status = 1

    stale = [e for e in entries if e.used == 0]
    for e in stale:
        print(
            f"{allowlist_path}:{e.line_no}: stale allowlist entry "
            f"({e.rule} {e.path}"
            + (f" {e.substring}" if e.substring else "")
            + ") suppresses nothing -- remove it"
        )
        status = 1

    if status == 0:
        print(f"flim_lint: {len(files)} files clean ({len(entries)} vetted exceptions)")
    else:
        print(
            f"flim_lint: {len(findings)} violation(s), {len(stale)} stale "
            "allowlist entr(y/ies). Fix the code, or add a vetted exception "
            "to tools/lint_allowlist.txt with a justification comment "
            "(docs/static-analysis.md#determinism-lint)."
        )
    return status


if __name__ == "__main__":
    sys.exit(main())

// Entry point of the flim_cli tool.
#include <exception>
#include <iostream>

#include "cli/args.hpp"
#include "cli/commands.hpp"

int main(int argc, char** argv) {
  try {
    return flim::cli::run(flim::cli::Args::parse(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

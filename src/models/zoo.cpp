#include "models/zoo.hpp"

#include "core/check.hpp"
#include "core/rng.hpp"
#include "train/fault_training.hpp"

namespace flim::models {

using train::Graph;
using train::TrainLayerPtr;

namespace {

// ---- small builder helpers ------------------------------------------------

std::unique_ptr<train::TConv2D> conv(const std::string& name, std::int64_t in,
                                     std::int64_t out, std::int64_t k,
                                     std::int64_t s, std::int64_t p,
                                     core::Rng& rng) {
  return std::make_unique<train::TConv2D>(name, in, out, k, s, p, rng);
}

std::unique_ptr<train::TBinaryConv2D> bconv(const std::string& name,
                                            std::int64_t in, std::int64_t out,
                                            core::Rng& rng,
                                            bool gains = false) {
  return std::make_unique<train::TBinaryConv2D>(name, in, out, 3, 1, 1, rng,
                                                gains);
}

std::unique_ptr<train::TBatchNorm> bn(const std::string& name,
                                      std::int64_t channels) {
  return std::make_unique<train::TBatchNorm>(name, channels);
}

std::unique_ptr<train::TSign> sign(const std::string& name) {
  return std::make_unique<train::TSign>(name);
}

std::unique_ptr<train::TMaxPool2D> maxpool(const std::string& name) {
  return std::make_unique<train::TMaxPool2D>(name, 2, 2);
}

// Real stem executed in CMOS: conv + BN + sign.
void add_stem(Graph& g, std::int64_t in_ch, std::int64_t out_ch,
              core::Rng& rng, std::int64_t kernel = 3) {
  g.add(conv("stem", in_ch, out_ch, kernel, 1, kernel / 2, rng));
  g.add(bn("stem_bn", out_ch));
  g.add(sign("stem_sign"));
}

// Binarized classifier head on flattened features. The leading sign keeps
// training and inference consistent when the incoming features are real
// (e.g. after residual adds); it is the identity for ±1 features.
void add_binary_head(Graph& g, std::int64_t features, std::int64_t hidden,
                     core::Rng& rng) {
  g.add(std::make_unique<train::TFlatten>("flatten"));
  g.add(std::make_unique<train::TSign>("pre_head_sign"));
  g.add(std::make_unique<train::TBinaryDense>("dense0", features, hidden, rng));
  g.add(bn("dense0_bn", hidden));
  g.add(sign("dense0_sign"));
  g.add(std::make_unique<train::TBinaryDense>("dense1", hidden, 10, rng));
  g.add(bn("dense1_bn", 10));
}

// Real classifier head after global average pooling (ResNet-style families
// keep the last dense in full precision).
void add_real_gap_head(Graph& g, std::int64_t channels, core::Rng& rng) {
  g.add(std::make_unique<train::TGlobalAvgPool>("gap"));
  g.add(std::make_unique<train::TDense>("head", channels, 10, rng));
}

// One dense-connectivity unit: channels grow by `growth`. The leading sign
// binarizes the incoming features (identity when they are already ±1, as in
// plain DenseNets; required after MeliusNet improvement units whose residual
// adds produce real values).
TrainLayerPtr dense_unit(const std::string& name, std::int64_t in_ch,
                         std::int64_t growth, core::Rng& rng) {
  std::vector<TrainLayerPtr> body;
  body.push_back(sign(name + "/in_sign"));
  body.push_back(bconv(name + "/bconv", in_ch, growth, rng));
  body.push_back(bn(name + "/bn", growth));
  body.push_back(sign(name + "/sign"));
  return std::make_unique<train::TConcatBlock>(name, std::move(body));
}

// One binary residual unit: x + BN(bconv(sign(x))).
TrainLayerPtr residual_unit(const std::string& name, std::int64_t channels,
                            core::Rng& rng, bool gains = false) {
  std::vector<TrainLayerPtr> body;
  body.push_back(sign(name + "/sign"));
  body.push_back(bconv(name + "/bconv", channels, channels, rng, gains));
  body.push_back(bn(name + "/bn", channels));
  return std::make_unique<train::TResidualBlock>(name, std::move(body),
                                                 std::vector<TrainLayerPtr>{});
}

// Downsampling transition executed in CMOS: maxpool + real 1x1 conv + BN.
void add_transition(Graph& g, const std::string& name, std::int64_t in_ch,
                    std::int64_t out_ch, core::Rng& rng) {
  g.add(maxpool(name + "/pool"));
  g.add(conv(name + "/proj", in_ch, out_ch, 1, 1, 0, rng));
  g.add(bn(name + "/bn", out_ch));
  g.add(sign(name + "/sign"));
}

// ---- family builders -------------------------------------------------------

Graph build_densenet(const std::string& name, int units_per_stage,
                     std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g(name);
  const std::int64_t growth = 12;
  std::int64_t ch = 16;
  add_stem(g, 3, ch, rng);
  int unit = 0;
  for (int stage = 0; stage < 2; ++stage) {
    for (int u = 0; u < units_per_stage; ++u, ++unit) {
      g.add(dense_unit("block" + std::to_string(unit), ch, growth, rng));
      ch += growth;
    }
    if (stage == 0) {
      add_transition(g, "trans0", ch, ch / 2, rng);
      ch /= 2;
    }
  }
  g.add(maxpool("final_pool"));  // 16 -> 8
  add_binary_head(g, ch * 8 * 8, 64, rng);
  return g;
}

Graph build_resnet_family(const std::string& name, bool sign_after_add,
                          bool gains, std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g(name);
  std::int64_t ch = 16;
  add_stem(g, 3, ch, rng);
  int unit = 0;
  for (int stage = 0; stage < 3; ++stage) {
    for (int u = 0; u < 2; ++u, ++unit) {
      g.add(residual_unit("block" + std::to_string(unit), ch, rng, gains));
      if (sign_after_add) {
        // BinaryResNetE: activations re-binarize after each residual add,
        // so shortcuts carry binary values.
        g.add(sign("block" + std::to_string(unit) + "/post_sign"));
      }
      // Bi-Real / RealToBinary: no sign here -- real-valued activations
      // flow through the identity shortcuts.
    }
    if (stage < 2) {
      add_transition(g, "trans" + std::to_string(stage), ch, ch * 2, rng);
      ch *= 2;
    }
  }
  add_real_gap_head(g, ch, rng);
  return g;
}

Graph build_alexnet_family(const std::string& name, bool gains,
                           std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g(name);
  add_stem(g, 3, 16, rng, 5);
  g.add(maxpool("pool0"));  // 32 -> 16
  g.add(bconv("conv1", 16, 32, rng, gains));
  g.add(bn("conv1_bn", 32));
  g.add(sign("conv1_sign"));
  g.add(maxpool("pool1"));  // 16 -> 8
  g.add(bconv("conv2", 32, 48, rng, gains));
  g.add(bn("conv2_bn", 48));
  g.add(sign("conv2_sign"));
  g.add(maxpool("pool2"));  // 8 -> 4
  add_binary_head(g, 48 * 4 * 4, 96, rng);
  return g;
}

Graph build_meliusnet(const std::string& name, std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g(name);
  const std::int64_t growth = 12;
  std::int64_t ch = 16;
  add_stem(g, 3, ch, rng);
  int unit = 0;
  for (int stage = 0; stage < 2; ++stage) {
    for (int u = 0; u < 3; ++u, ++unit) {
      const std::string base = "unit" + std::to_string(unit);
      // MeliusNet: a dense unit grows the feature map, then an improvement
      // unit refines it with a residual binary conv.
      g.add(dense_unit(base + "/dense", ch, growth, rng));
      ch += growth;
      g.add(residual_unit(base + "/improve", ch, rng));
    }
    if (stage == 0) {
      add_transition(g, "trans0", ch, ch / 2, rng);
      ch /= 2;
    }
  }
  g.add(maxpool("final_pool"));  // 16 -> 8
  add_binary_head(g, ch * 8 * 8, 64, rng);
  return g;
}

}  // namespace

Graph build_lenet_binary(std::uint64_t seed) {
  core::Rng rng(seed);
  Graph g("lenet-binary");
  // conv0: real CMOS stem (not mapped onto crossbars, hence not faultable).
  g.add(conv("conv0", 1, 8, 3, 1, 1, rng));
  g.add(bn("conv0_bn", 8));
  g.add(sign("conv0_sign"));
  g.add(maxpool("pool0"));  // 28 -> 14
  // conv1 / conv2: binarized convolutions (crossbar-mapped).
  g.add(bconv("conv1", 8, 16, rng));
  g.add(bn("conv1_bn", 16));
  g.add(sign("conv1_sign"));
  g.add(maxpool("pool1"));  // 14 -> 7
  g.add(bconv("conv2", 16, 32, rng));
  g.add(bn("conv2_bn", 32));
  g.add(sign("conv2_sign"));
  g.add(maxpool("pool2"));  // 7 -> 3
  // dense0 / dense1: binarized dense layers (crossbar-mapped).
  add_binary_head(g, 32 * 3 * 3, 64, rng);
  return g;
}

Graph build_lenet_binary_fault_aware(std::uint64_t seed,
                                     const fault::FaultVectorFile& vectors,
                                     double active_probability) {
  core::Rng rng(seed);
  Graph g("lenet-binary-fault-aware");
  // Injection sites sit directly after each binarized layer's accumulator
  // (pre-batch-norm), mirroring where the inference FaultInjector applies
  // masks. full_scale = the layer's product-term count K.
  auto maybe_inject = [&](const std::string& layer, std::int64_t k) {
    if (const fault::FaultVectorEntry* entry = vectors.find(layer)) {
      g.add(std::make_unique<train::TFaultInjection>(
          layer + "/train_fault", *entry, static_cast<std::int32_t>(k),
          active_probability, seed ^ 0xfa157));
    }
  };

  g.add(conv("conv0", 1, 8, 3, 1, 1, rng));
  g.add(bn("conv0_bn", 8));
  g.add(sign("conv0_sign"));
  g.add(maxpool("pool0"));
  g.add(bconv("conv1", 8, 16, rng));
  maybe_inject("conv1", 8 * 9);
  g.add(bn("conv1_bn", 16));
  g.add(sign("conv1_sign"));
  g.add(maxpool("pool1"));
  g.add(bconv("conv2", 16, 32, rng));
  maybe_inject("conv2", 16 * 9);
  g.add(bn("conv2_bn", 32));
  g.add(sign("conv2_sign"));
  g.add(maxpool("pool2"));
  g.add(std::make_unique<train::TFlatten>("flatten"));
  g.add(std::make_unique<train::TSign>("pre_head_sign"));
  g.add(std::make_unique<train::TBinaryDense>("dense0", 32 * 3 * 3, 64, rng));
  maybe_inject("dense0", 32 * 3 * 3);
  g.add(bn("dense0_bn", 64));
  g.add(sign("dense0_sign"));
  g.add(std::make_unique<train::TBinaryDense>("dense1", 64, 10, rng));
  maybe_inject("dense1", 64);
  g.add(bn("dense1_bn", 10));
  return g;
}

const std::vector<std::string>& lenet_faultable_layers() {
  static const std::vector<std::string> layers = {"conv1", "conv2", "dense0",
                                                  "dense1"};
  return layers;
}

const std::vector<std::string>& zoo_model_names() {
  static const std::vector<std::string> names = {
      "RealToBinaryNet", "BinaryDenseNet45", "BinaryDenseNet37",
      "BinaryDenseNet28", "BinaryResNetE18", "BinaryAlexNet",
      "MeliusNet22",     "BiRealNet",        "XNORNet"};
  return names;
}

Graph build_zoo_graph(const std::string& model_name, std::uint64_t seed) {
  if (model_name == "BinaryDenseNet28") {
    return build_densenet(model_name, 3, seed);
  }
  if (model_name == "BinaryDenseNet37") {
    return build_densenet(model_name, 4, seed);
  }
  if (model_name == "BinaryDenseNet45") {
    return build_densenet(model_name, 5, seed);
  }
  if (model_name == "BinaryResNetE18") {
    return build_resnet_family(model_name, /*sign_after_add=*/true,
                               /*gains=*/false, seed);
  }
  if (model_name == "BiRealNet") {
    return build_resnet_family(model_name, /*sign_after_add=*/false,
                               /*gains=*/false, seed);
  }
  if (model_name == "RealToBinaryNet") {
    return build_resnet_family(model_name, /*sign_after_add=*/false,
                               /*gains=*/true, seed);
  }
  if (model_name == "BinaryAlexNet") {
    return build_alexnet_family(model_name, /*gains=*/false, seed);
  }
  if (model_name == "XNORNet") {
    return build_alexnet_family(model_name, /*gains=*/true, seed);
  }
  if (model_name == "MeliusNet22") {
    return build_meliusnet(model_name, seed);
  }
  FLIM_REQUIRE(false, "unknown zoo model: " + model_name);
  return Graph("");
}

}  // namespace flim::models

// Train-or-load cache for pretrained models.
//
// The paper evaluates pretrained models; since no pretrained weights exist
// for our from-scratch stack, benches train each model once on the synthetic
// dataset and cache the converted inference model on disk. Subsequent runs
// load the cache, which keeps bench startup fast and every run's weights
// identical.
#pragma once

#include <cstdint>
#include <string>

#include "bnn/model.hpp"
#include "data/synthetic_imagenet.hpp"
#include "data/synthetic_mnist.hpp"

namespace flim::models {

/// Training/caching knobs shared by the pretrained helpers.
struct PretrainOptions {
  int epochs = 4;
  std::int64_t train_samples = 4096;
  std::int64_t batch_size = 32;
  float learning_rate = 2e-3f;
  std::uint64_t seed = 77;
  bool force_retrain = false;
  bool verbose = false;
  /// Cache directory; $FLIM_WEIGHTS_DIR overrides, default "weights".
  std::string cache_dir;
};

/// Resolves the weight-cache directory for `options`.
std::string weights_dir(const PretrainOptions& options);

/// Returns the binary LeNet trained on the given synthetic-MNIST dataset,
/// loading from cache when available.
bnn::Model pretrained_lenet(const data::SyntheticMnist& dataset,
                            const PretrainOptions& options = {});

/// Returns a zoo model trained on the given synthetic-ImageNet dataset.
bnn::Model pretrained_zoo_model(const std::string& model_name,
                                const data::SyntheticImagenet& dataset,
                                const PretrainOptions& options = {});

}  // namespace flim::models

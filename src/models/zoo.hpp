// Model zoo: the binary LeNet used for the layer-resilience experiments and
// scaled-down versions of the nine ImageNet BNN families from Table II.
//
// Scaling substitution (DESIGN.md): the originals are ImageNet-sized and
// pretrained; here each family keeps its *distinguishing structural
// feature* at 32x32/10-class scale:
//   BinaryDenseNet28/37/45 -- dense connectivity with growth; depth ladder
//   BinaryResNetE18        -- residual blocks, sign after the add
//   Bi-Real Net            -- residual blocks, REAL activations on shortcuts
//   RealToBinaryNet        -- Bi-Real topology + per-channel gains
//   BinaryAlexNet          -- plain stack, dense-heavy head
//   MeliusNet22            -- alternating dense (concat) + improvement
//                             (residual) units
//   XNOR-Net               -- plain stack with XNOR-Net alpha gains
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_vector_file.hpp"
#include "train/graph.hpp"

namespace flim::models {

/// Binary LeNet for 28x28 greyscale digits: one real (CMOS) stem conv plus
/// binarized conv1, conv2, dense0, dense1 -- the four faultable layers of
/// Fig 4. Layer names match the paper's curves.
train::Graph build_lenet_binary(std::uint64_t seed);

/// Names of the four crossbar-mapped LeNet layers, in depth order.
const std::vector<std::string>& lenet_faultable_layers();

/// Fault-aware variant (the paper's future-work extension): the same binary
/// LeNet with training-time fault injection sites after each binarized
/// layer's accumulator, wired to the matching entries of `vectors` (layers
/// without an entry train clean). `active_probability` makes the injection
/// stochastic per batch.
train::Graph build_lenet_binary_fault_aware(
    std::uint64_t seed, const fault::FaultVectorFile& vectors,
    double active_probability = 1.0);

/// The nine Table-II model names, in the paper's order.
const std::vector<std::string>& zoo_model_names();

/// Builds a zoo model's training graph for 32x32 RGB inputs, 10 classes.
/// Throws std::invalid_argument for unknown names.
train::Graph build_zoo_graph(const std::string& model_name,
                             std::uint64_t seed);

}  // namespace flim::models

#include "models/pretrained.hpp"

#include <cstdlib>
#include <filesystem>

#include "bnn/serialize.hpp"
#include "core/log.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"

namespace flim::models {

namespace {

bnn::Model train_and_cache(train::Graph graph, const data::Dataset& dataset,
                           const PretrainOptions& options,
                           const std::string& cache_path) {
  train::Adam adam(options.learning_rate);
  train::TrainConfig cfg;
  cfg.epochs = options.epochs;
  cfg.batch_size = options.batch_size;
  cfg.train_samples = options.train_samples;
  cfg.shuffle_seed = options.seed;
  cfg.verbose = options.verbose;
  cfg.lr_decay = 0.7f;
  const train::TrainResult result = train::fit(graph, adam, dataset, cfg);
  FLIM_LOG_INFO << "trained " << graph.name() << ": loss "
                << result.final_train_loss << ", train acc "
                << result.final_train_accuracy;
  bnn::Model model = graph.to_inference_model();
  bnn::save_model(model, cache_path);
  return model;
}

}  // namespace

std::string weights_dir(const PretrainOptions& options) {
  if (!options.cache_dir.empty()) return options.cache_dir;
  if (const char* env = std::getenv("FLIM_WEIGHTS_DIR")) return env;
  return "weights";
}

bnn::Model pretrained_lenet(const data::SyntheticMnist& dataset,
                            const PretrainOptions& options) {
  const std::string path = weights_dir(options) + "/lenet-binary.flim";
  if (!options.force_retrain && std::filesystem::exists(path)) {
    return bnn::load_model(path);
  }
  return train_and_cache(build_lenet_binary(options.seed), dataset, options,
                         path);
}

bnn::Model pretrained_zoo_model(const std::string& model_name,
                                const data::SyntheticImagenet& dataset,
                                const PretrainOptions& options) {
  const std::string path = weights_dir(options) + "/" + model_name + ".flim";
  if (!options.force_retrain && std::filesystem::exists(path)) {
    return bnn::load_model(path);
  }
  return train_and_cache(build_zoo_graph(model_name, options.seed), dataset,
                         options, path);
}

}  // namespace flim::models

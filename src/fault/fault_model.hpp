// Composable fault models: the polymorphic core of the fault subsystem.
//
// The paper encodes three fault kinds (bit-flip, stuck-at, dynamic) and the
// original implementation hardwired that taxonomy into FaultKind switches
// threaded through the generator, the injector, both engines, and the CLI.
// A FaultModel replaces the switch: each model is a plugin that owns
//   * its parameter schema (declarative, range-checked, self-documenting),
//   * its mask realization (how fault sites are drawn on the virtual grid),
//   * its time semantics (when the realized faults are sensitized), and
//   * its application (how an active fault corrupts XNOR outputs or
//     product terms).
// Models are registered by name (fault_registry.hpp) and compose into an
// ordered FaultStack parsed from expressions such as
// "stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)"; the stack is realized per
// layer into RealizedFault components that the injector and engines apply
// polymorphically. The three paper kinds are ordinary registered models and
// reproduce the legacy switch bit for bit.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "fault/fault_mask.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::fault {

/// One declared parameter of a fault model.
struct ParamInfo {
  /// Parameter key in expressions ("rate", "tau", ...).
  std::string name;
  /// Value used when the expression omits the parameter.
  double default_value = 0.0;
  /// Inclusive accepted range; violations are rejected at parse time.
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  /// Whether the value must be a whole number (counts, periods).
  bool integer = false;
  /// One-line description for `flim_cli faults`.
  std::string doc;
};

/// Static description of one registered fault model.
struct ModelInfo {
  /// Registry key and expression name ("bitflip", "drift", ...).
  std::string name;
  /// One-line summary for listings.
  std::string summary;
  /// Human-readable time semantics ("static", "every period-th execution",
  /// "grows with execution count", ...).
  std::string time_semantics;
  /// Declared parameters, in documentation order.
  std::vector<ParamInfo> params;
  /// Granularity support: can the model corrupt feature-map elements?
  bool output_element = true;
  /// Granularity support: does the model reduce to static flip/stuck-at
  /// planes applicable before the CMOS popcount?
  bool product_term = true;
  /// Whether the device (X-Fault-style) engine can realize the model. Only
  /// models whose effect reduces to per-gate flips with a pure time gate
  /// plus statically stuck result cells qualify.
  bool device_backend = true;
};

/// A resolved parameter set: the explicitly given (name, value) pairs,
/// sorted by name (the canonical order used in fingerprints), with defaults
/// supplied on lookup.
class ModelParams {
 public:
  ModelParams() = default;
  /// `values` must be sorted by name and free of duplicates
  /// (parse_fault_expr and make_params guarantee both).
  explicit ModelParams(std::vector<std::pair<std::string, double>> values)
      : values_(std::move(values)) {}

  /// The explicitly set parameters in canonical (sorted) order.
  const std::vector<std::pair<std::string, double>>& values() const {
    return values_;
  }

  /// Value of `name`, or `fallback` when not explicitly set.
  double get(const std::string& name, double fallback) const;
  /// True when the parameter was explicitly set.
  bool has(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, double>> values_;
};

/// Shared placement policy for mask realization: the virtual grid plus the
/// spatial distribution of randomly placed sites. Models may override the
/// distribution via their `clustered`/`clusters`/`radius` parameters.
struct RealizeContext {
  lim::CrossbarGeometry grid{64, 64};
  FaultDistribution distribution = FaultDistribution::kUniform;
  int cluster_count = 0;
  double cluster_radius = 2.0;
};

/// One realized fault component: a model name, its canonical parameters,
/// and the drawn per-layer state. Components are pure data -- behaviour
/// lives in the FaultModel resolved from `model` -- so they serialize into
/// fault-vector files and replay identically.
struct RealizedFault {
  /// Registry key of the producing model.
  std::string model;
  /// Canonical (sorted) explicitly-set parameters.
  std::vector<std::pair<std::string, double>> params;
  /// Realized fault planes on the virtual grid.
  FaultMask mask;
  /// Model-defined per-slot auxiliary values (e.g. drift onset executions);
  /// empty for models without per-site state.
  std::vector<std::int64_t> site_values;
  /// First execution index at which the component can be active (0 = from
  /// the start). Lets the injector skip fully dormant components cheaply.
  std::int64_t first_active = 0;

  bool operator==(const RealizedFault& other) const {
    return model == other.model && params == other.params &&
           mask == other.mask && site_values == other.site_values &&
           first_active == other.first_active;
  }
};

/// Cached product-term mask planes shaped [out_channels, K].
struct TermMasks {
  tensor::BitMatrix flip;
  tensor::BitMatrix sa0;
  tensor::BitMatrix sa1;
};

/// Abstract fault model. Implementations are stateless singletons owned by
/// the registry; all per-layer state lives in RealizedFault.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Static description: name, parameters, time semantics, support matrix.
  virtual const ModelInfo& info() const = 0;

  /// Resolves `params` against the declared schema: unknown names and
  /// out-of-range values throw std::invalid_argument with the offending
  /// key. Hook for cross-parameter rules.
  virtual void validate(const ModelParams& params) const;

  /// Draws one realized component on `ctx.grid`. The RNG consumption order
  /// is part of each model's contract: for the three paper kinds it is
  /// exactly the legacy FaultGenerator order, which keeps campaign CSVs
  /// byte-identical across the API boundary.
  virtual RealizedFault realize(const ModelParams& params,
                                const RealizeContext& ctx,
                                core::Rng& rng) const = 0;

  /// Time semantics: is the component sensitized at 0-based layer execution
  /// `execution`? Default: static (always active once past first_active).
  virtual bool active(const RealizedFault& fault,
                      std::int64_t execution) const;

  /// Output-element application: corrupts rows [row_begin, row_end) of the
  /// integer feature map (rows = output positions, cols = channels). Op i
  /// of the image (position-major) maps to virtual slot i mod num_slots.
  /// Default: plane semantics -- a flipped op negates the accumulator, a
  /// stuck op pins it to the full-scale ±K value. Only called when
  /// active(fault, execution) is true.
  virtual void apply_output_element(const RealizedFault& fault,
                                    tensor::IntTensor& feature,
                                    std::int64_t row_begin,
                                    std::int64_t row_end,
                                    std::int64_t execution,
                                    std::int32_t full_scale) const;

  /// Product-term application: folds the component's planes into the
  /// [out_channels, K] term masks (term (ch, k) maps to virtual slot
  /// (ch*K + k) mod num_slots). Flips compose by XOR (two stacked flip
  /// mechanisms cancel), stuck-at planes by OR. Only called for models with
  /// info().product_term while active; must not depend on the execution
  /// index beyond the active() gate.
  virtual void fold_term_planes(const RealizedFault& fault, TermMasks& masks,
                                std::int64_t out_channels,
                                std::int64_t k) const;
};

/// Draws `marked` distinct flat slot indices on `ctx.grid` honoring the
/// effective distribution (ctx defaults, overridable via the model's
/// `clustered`/`clusters`/`radius` parameters). Shared by every placement-
/// based model; uniform placement consumes the RNG exactly like the legacy
/// generator.
std::vector<std::int64_t> draw_sites(const ModelParams& params,
                                     const RealizeContext& ctx,
                                     std::int64_t marked, core::Rng& rng);

/// Builds a ModelParams from unordered (name, value) pairs: sorts by name
/// and rejects duplicates.
ModelParams make_params(std::vector<std::pair<std::string, double>> values);

/// Value of an explicitly-set parameter of a realized component, or
/// `fallback` when the component's expression omitted it.
double realized_param(const RealizedFault& fault, const std::string& name,
                      double fallback);

}  // namespace flim::fault

#include "fault/fault_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/check.hpp"
#include "core/report.hpp"

namespace flim::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMaxCount = 1e9;

/// Placement-override parameters shared by every site-placing model.
void add_placement_params(std::vector<ParamInfo>& params) {
  params.push_back({"clustered", 0.0, 0.0, 1.0, true,
                    "placement override: 1 = clustered, 0 = uniform "
                    "(default: the campaign's distribution setting)"});
  params.push_back({"clusters", 0.0, 0.0, kMaxCount, true,
                    "clustered: cluster centers (0 derives one per ~24 "
                    "faults)"});
  params.push_back({"radius", 2.0, 1e-6, kInf, false,
                    "clustered: Gaussian scatter in cells around each "
                    "center"});
}

/// Shared realization skeleton of the paper-kind models: draw the marked
/// sites, mark them (flips, or stuck cells split by `sa1`), then mark whole
/// faulty rows/columns. The RNG draw order is exactly the legacy
/// FaultGenerator order -- masks are bit-identical to the pre-registry
/// switch for the same seed.
RealizedFault realize_placed(const ModelInfo& meta, const ModelParams& params,
                             const RealizeContext& ctx, core::Rng& rng,
                             bool stuck) {
  RealizedFault fault;
  fault.model = meta.name;
  fault.params = params.values();
  FaultMask mask(ctx.grid.rows, ctx.grid.cols);
  const std::int64_t slots = mask.num_slots();

  // "The injection rate specifies the number of elements within the array
  // set to 1": exact count, not per-slot Bernoulli, so the realized rate
  // matches the requested one (up to rounding).
  const double rate = params.get("rate", 0.0);
  const auto marked =
      static_cast<std::int64_t>(std::llround(rate * static_cast<double>(slots)));
  const std::vector<std::int64_t> sites = draw_sites(params, ctx, marked, rng);
  if (stuck) {
    const double sa1 = params.get("sa1", 0.5);
    for (const std::int64_t slot : sites) {
      if (rng.bernoulli(sa1)) {
        mask.set_sa1(slot, true);
      } else {
        mask.set_sa0(slot, true);
      }
    }
  } else {
    for (const std::int64_t slot : sites) {
      mask.set_flip(slot, true);
    }
  }

  // Whole faulty rows / columns (part of the bit-flip mask in the paper:
  // "entire rows/columns may also be faulty; thus, these rows/columns are
  // set to 1").
  const auto rows = static_cast<std::int64_t>(params.get("rows", 0.0));
  const auto cols = static_cast<std::int64_t>(params.get("cols", 0.0));
  FLIM_REQUIRE(rows <= ctx.grid.rows, "more faulty rows than grid rows");
  FLIM_REQUIRE(cols <= ctx.grid.cols, "more faulty columns than grid columns");
  for (const auto r : rng.sample_without_replacement(
           static_cast<std::uint64_t>(ctx.grid.rows),
           static_cast<std::uint64_t>(rows))) {
    mask.mark_row_flip(static_cast<std::int64_t>(r));
  }
  for (const auto c : rng.sample_without_replacement(
           static_cast<std::uint64_t>(ctx.grid.cols),
           static_cast<std::uint64_t>(cols))) {
    mask.mark_col_flip(static_cast<std::int64_t>(c));
  }
  fault.mask = std::move(mask);
  return fault;
}

// ---------------------------------------------------------------------------
// The paper's three kinds as registered models.

class BitFlipModel : public FaultModel {
 public:
  BitFlipModel() {
    info_.name = "bitflip";
    info_.summary =
        "transient bit-flips: the result of marked XNOR ops is inverted";
    info_.time_semantics = "static (active on every execution)";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false,
         "fraction of virtual crossbar slots flipped (the paper's injection "
         "rate)"},
        {"rows", 0.0, 0.0, kMaxCount, true, "whole faulty rows (Fig 4e)"},
        {"cols", 0.0, 0.0, kMaxCount, true, "whole faulty columns (Fig 4d)"},
    };
    add_placement_params(info_.params);
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    return realize_placed(info_, params, ctx, rng, /*stuck=*/false);
  }

 private:
  ModelInfo info_;
};

class StuckAtModel : public FaultModel {
 public:
  StuckAtModel() {
    info_.name = "stuckat";
    info_.summary =
        "permanent stuck-at faults: marked XNOR ops pin to the full-scale "
        "logic value";
    info_.time_semantics = "static (active on every execution)";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false, "fraction of slots stuck"},
        {"sa1", 0.5, 0.0, 1.0, false,
         "probability that a stuck cell is stuck-at-1 (the rest stick at 0)"},
        {"rows", 0.0, 0.0, kMaxCount, true,
         "whole faulty rows (marked as flips, as in the paper)"},
        {"cols", 0.0, 0.0, kMaxCount, true, "whole faulty columns"},
    };
    add_placement_params(info_.params);
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    return realize_placed(info_, params, ctx, rng, /*stuck=*/true);
  }

 private:
  ModelInfo info_;
};

class DynamicModel : public FaultModel {
 public:
  DynamicModel() {
    info_.name = "dynamic";
    info_.summary =
        "bit-flips sensitized only every period-th execution of the layer";
    info_.time_semantics =
        "periodic: fires on executions period-1, 2*period-1, ... (0 and 1 "
        "mean every execution)";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false, "fraction of slots flipped when "
                                       "sensitized"},
        {"period", 0.0, 0.0, kMaxCount, true,
         "sensitization period in layer executions"},
        {"rows", 0.0, 0.0, kMaxCount, true, "whole faulty rows"},
        {"cols", 0.0, 0.0, kMaxCount, true, "whole faulty columns"},
    };
    add_placement_params(info_.params);
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    return realize_placed(info_, params, ctx, rng, /*stuck=*/false);
  }

  bool active(const RealizedFault& fault,
              std::int64_t execution) const override {
    const auto period = static_cast<std::int64_t>(
        std::max(1.0, realized_param(fault, "period", 0.0)));
    // Fires on executions period-1, 2*period-1, ... ("every n-th operation").
    return (execution % period) == period - 1;
  }

 private:
  ModelInfo info_;
};

// ---------------------------------------------------------------------------
// Extended models the FaultKind enum could not express.

class ReadDisturbModel : public FaultModel {
 public:
  ReadDisturbModel() {
    info_.name = "readdisturb";
    info_.summary =
        "activation-dependent transient flips: a marked op is disturbed "
        "only when its accumulator reads above the threshold";
    info_.time_semantics = "static, data-dependent (fires only on matching "
                           "reads)";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false, "fraction of slots marked "
                                       "disturb-prone"},
        {"threshold", 0.0, -1.0, 1.0, false,
         "disturb when accumulator > threshold * K (fraction of full "
         "scale)"},
    };
    add_placement_params(info_.params);
    info_.product_term = false;   // data-dependent: no static term planes
    info_.device_backend = false;
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    return realize_placed(info_, params, ctx, rng, /*stuck=*/false);
  }

  void apply_output_element(const RealizedFault& fault,
                            tensor::IntTensor& feature,
                            std::int64_t row_begin, std::int64_t row_end,
                            std::int64_t /*execution*/,
                            std::int32_t full_scale) const override {
    const double threshold = realized_param(fault, "threshold", 0.0);
    const auto cutoff = static_cast<std::int32_t>(
        std::llround(threshold * static_cast<double>(full_scale)));
    const std::int64_t channels = feature.shape()[1];
    const std::int64_t slots = fault.mask.num_slots();
    std::int64_t op = 0;
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      std::int32_t* row = feature.data() + r * channels;
      for (std::int64_t c = 0; c < channels; ++c, ++op) {
        const std::int64_t slot = op % slots;
        // A strong match current through a disturb-prone cell flips it.
        if (fault.mask.flip(slot) && row[c] > cutoff) row[c] = -row[c];
      }
    }
  }

 private:
  ModelInfo info_;
};

class DriftModel : public FaultModel {
 public:
  DriftModel() {
    info_.name = "drift";
    info_.summary =
        "conductance aging: marked cells become permanently stuck after a "
        "per-cell onset execution with mean tau";
    info_.time_semantics =
        "monotone in time: stuck probability grows as 1 - exp(-t/tau) over "
        "layer executions t";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false, "fraction of slots that age"},
        {"tau", 2000.0, 1e-6, 1e15, false,
         "mean onset in layer executions (exponential per-cell onsets)"},
        {"sa1", 0.5, 0.0, 1.0, false,
         "probability that an aged cell sticks at 1 (the rest stick at 0)"},
    };
    add_placement_params(info_.params);
    info_.product_term = false;   // time-varying planes
    info_.device_backend = false;
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    RealizedFault fault;
    fault.model = info_.name;
    fault.params = params.values();
    FaultMask mask(ctx.grid.rows, ctx.grid.cols);
    const std::int64_t slots = mask.num_slots();
    const double rate = params.get("rate", 0.0);
    const double tau = params.get("tau", 2000.0);
    const double sa1 = params.get("sa1", 0.5);
    const auto marked = static_cast<std::int64_t>(
        std::llround(rate * static_cast<double>(slots)));
    const std::vector<std::int64_t> sites =
        draw_sites(params, ctx, marked, rng);
    fault.site_values.assign(static_cast<std::size_t>(slots), -1);
    std::int64_t min_onset = std::numeric_limits<std::int64_t>::max();
    for (const std::int64_t slot : sites) {
      // Exponential onset with mean tau, floored to whole executions.
      const double u = rng.uniform_double();
      const double onset_d = std::min(-tau * std::log1p(-u), 1e15);
      const auto onset = static_cast<std::int64_t>(std::floor(onset_d));
      fault.site_values[static_cast<std::size_t>(slot)] = onset;
      min_onset = std::min(min_onset, onset);
      // The eventual stuck polarity is drawn up front (planes mark where
      // the cell will land, site_values when it gets there).
      if (rng.bernoulli(sa1)) {
        mask.set_sa1(slot, true);
      } else {
        mask.set_sa0(slot, true);
      }
    }
    fault.first_active =
        sites.empty() ? std::numeric_limits<std::int64_t>::max() : min_onset;
    fault.mask = std::move(mask);
    return fault;
  }

  void apply_output_element(const RealizedFault& fault,
                            tensor::IntTensor& feature,
                            std::int64_t row_begin, std::int64_t row_end,
                            std::int64_t execution,
                            std::int32_t full_scale) const override {
    const std::int64_t channels = feature.shape()[1];
    const std::int64_t slots = fault.mask.num_slots();
    FLIM_REQUIRE(fault.site_values.size() ==
                     static_cast<std::size_t>(slots),
                 "drift component is missing its per-slot onset vector");
    std::int64_t op = 0;
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      std::int32_t* row = feature.data() + r * channels;
      for (std::int64_t c = 0; c < channels; ++c, ++op) {
        const std::int64_t slot = op % slots;
        const std::int64_t onset =
            fault.site_values[static_cast<std::size_t>(slot)];
        if (onset < 0 || execution < onset) continue;
        // The polarity planes gate the pin as well as choosing its sign: a
        // cell whose planes were cleared (e.g. by an ECC scrub of the
        // vector file) injects nothing even after its onset.
        if (fault.mask.sa1(slot)) {
          row[c] = +full_scale;
        } else if (fault.mask.sa0(slot)) {
          row[c] = -full_scale;
        }
      }
    }
  }

 private:
  ModelInfo info_;
};

class CouplingModel : public FaultModel {
 public:
  CouplingModel() {
    info_.name = "coupling";
    info_.summary =
        "spatially correlated flips: seed faults disturb crossbar "
        "neighbors with probability strength";
    info_.time_semantics = "static (active on every execution)";
    info_.params = {
        {"rate", 0.0, 0.0, 1.0, false, "fraction of slots seeded with a "
                                       "flip"},
        {"strength", 0.5, 0.0, 1.0, false,
         "probability that each grid neighbor of a seed also flips"},
        {"reach", 1.0, 1.0, 8.0, true,
         "neighborhood radius in cells (Chebyshev distance)"},
    };
    add_placement_params(info_.params);
  }

  const ModelInfo& info() const override { return info_; }

  RealizedFault realize(const ModelParams& params, const RealizeContext& ctx,
                        core::Rng& rng) const override {
    RealizedFault fault;
    fault.model = info_.name;
    fault.params = params.values();
    FaultMask mask(ctx.grid.rows, ctx.grid.cols);
    const std::int64_t slots = mask.num_slots();
    const double rate = params.get("rate", 0.0);
    const double strength = params.get("strength", 0.5);
    const auto reach = static_cast<std::int64_t>(params.get("reach", 1.0));
    const auto marked = static_cast<std::int64_t>(
        std::llround(rate * static_cast<double>(slots)));
    const std::vector<std::int64_t> seeds =
        draw_sites(params, ctx, marked, rng);
    for (const std::int64_t slot : seeds) {
      mask.set_flip(slot, true);
    }
    // Each seed disturbs its not-yet-flipped neighbors independently;
    // row-major offset order keeps the draw sequence deterministic.
    for (const std::int64_t seed : seeds) {
      const std::int64_t r0 = seed / ctx.grid.cols;
      const std::int64_t c0 = seed % ctx.grid.cols;
      for (std::int64_t dr = -reach; dr <= reach; ++dr) {
        for (std::int64_t dc = -reach; dc <= reach; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const std::int64_t r = r0 + dr;
          const std::int64_t c = c0 + dc;
          if (r < 0 || r >= ctx.grid.rows || c < 0 || c >= ctx.grid.cols) {
            continue;
          }
          const std::int64_t slot = r * ctx.grid.cols + c;
          if (mask.flip(slot)) continue;
          if (rng.bernoulli(strength)) mask.set_flip(slot, true);
        }
      }
    }
    fault.mask = std::move(mask);
    return fault;
  }

 private:
  ModelInfo info_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry.

FaultRegistry::FaultRegistry() {
  add(std::make_unique<BitFlipModel>());
  add(std::make_unique<StuckAtModel>());
  add(std::make_unique<DynamicModel>());
  add(std::make_unique<ReadDisturbModel>());
  add(std::make_unique<DriftModel>());
  add(std::make_unique<CouplingModel>());
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::add(std::unique_ptr<FaultModel> model) {
  FLIM_REQUIRE(model != nullptr, "cannot register a null fault model");
  const std::string& name = model->info().name;
  FLIM_REQUIRE(!name.empty(), "fault model name must be non-empty");
  const core::MutexLock lock(mutex_);
  const auto at = std::lower_bound(
      slots_.begin(), slots_.end(), name,
      [](const Slot& s, const std::string& n) { return s.name < n; });
  FLIM_REQUIRE(at == slots_.end() || at->name != name,
               "fault model '" + name + "' is already registered");
  slots_.insert(at, Slot{name, std::move(model)});
}

const FaultModel* FaultRegistry::find_locked(const std::string& name) const {
  const auto at = std::lower_bound(
      slots_.begin(), slots_.end(), name,
      [](const Slot& s, const std::string& n) { return s.name < n; });
  if (at == slots_.end() || at->name != name) return nullptr;
  return at->model.get();
}

const FaultModel* FaultRegistry::find(const std::string& name) const {
  const core::MutexLock lock(mutex_);
  return find_locked(name);
}

const FaultModel& FaultRegistry::get(const std::string& name) const {
  const core::MutexLock lock(mutex_);
  const FaultModel* model = find_locked(name);
  if (model == nullptr) {
    std::string known;
    for (const Slot& s : slots_) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    FLIM_REQUIRE(false, "unknown fault model: '" + name +
                            "' (registered models: " + known + ")");
  }
  return *model;
}

std::vector<const FaultModel*> FaultRegistry::models() const {
  const core::MutexLock lock(mutex_);
  std::vector<const FaultModel*> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back(s.model.get());
  return out;
}

// ---------------------------------------------------------------------------
// Fault stacks and the expression language.

std::string FaultStack::canonical() const {
  std::string out;
  for (const FaultStackItem& item : items_) {
    if (!out.empty()) out += "+";
    out += item.model->info().name;
    const auto& values = item.params.values();
    if (!values.empty()) {
      out += "(";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ",";
        out += values[i].first + "=" +
               core::format_double_shortest(values[i].second);
      }
      out += ")";
    }
  }
  return out;
}

void FaultStack::validate_granularity(FaultGranularity granularity) const {
  for (const FaultStackItem& item : items_) {
    const ModelInfo& meta = item.model->info();
    if (granularity == FaultGranularity::kProductTerm) {
      FLIM_REQUIRE(meta.product_term,
                   "fault model '" + meta.name +
                       "' does not support product-term granularity (its "
                       "effect is not a static per-term plane); use "
                       "output-element granularity");
    } else {
      FLIM_REQUIRE(meta.output_element,
                   "fault model '" + meta.name +
                       "' does not support output-element granularity");
    }
  }
}

void FaultStack::validate_device_backend() const {
  for (const FaultStackItem& item : items_) {
    const ModelInfo& meta = item.model->info();
    FLIM_REQUIRE(meta.device_backend,
                 "fault model '" + meta.name +
                     "' is not supported by the device backend (it does "
                     "not reduce to per-gate flips plus static stuck "
                     "cells); use --engine flim");
  }
}

std::vector<RealizedFault> FaultStack::realize(const RealizeContext& ctx,
                                               core::Rng& rng) const {
  std::vector<RealizedFault> components;
  components.reserve(items_.size());
  for (const FaultStackItem& item : items_) {
    components.push_back(item.model->realize(item.params, ctx, rng));
  }
  return components;
}

FaultVectorEntry FaultStack::realize_entry(const std::string& layer_name,
                                           FaultGranularity granularity,
                                           const RealizeContext& ctx,
                                           core::Rng& rng) const {
  FaultVectorEntry entry;
  entry.layer_name = layer_name;
  entry.granularity = granularity;
  entry.components = realize(ctx, rng);
  return entry;
}

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

[[noreturn]] void parse_fail(const std::string& expr, std::size_t pos,
                             const std::string& what) {
  FLIM_REQUIRE(false, "bad fault expression '" + expr + "' at position " +
                          std::to_string(pos) + ": " + what);
  std::abort();  // unreachable; FLIM_REQUIRE(false, ...) always throws
}

}  // namespace

FaultStack parse_fault_expr(const std::string& expr) {
  const FaultRegistry& registry = FaultRegistry::instance();
  std::vector<FaultStackItem> items;
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < expr.size() &&
           (expr[pos] == ' ' || expr[pos] == '\t')) {
      ++pos;
    }
  };
  const auto parse_name = [&]() -> std::string {
    skip_ws();
    const std::size_t begin = pos;
    while (pos < expr.size() && is_name_char(expr[pos])) ++pos;
    if (pos == begin) parse_fail(expr, begin, "expected a model name");
    return expr.substr(begin, pos - begin);
  };

  skip_ws();
  if (pos >= expr.size()) {
    FLIM_REQUIRE(false, "empty fault expression (expected e.g. "
                        "\"bitflip(rate=1e-3)\")");
  }
  while (true) {
    const std::size_t name_pos = pos;
    const std::string name = parse_name();
    const FaultModel* model = registry.find(name);
    if (model == nullptr) {
      std::string known;
      for (const FaultModel* m : registry.models()) {
        if (!known.empty()) known += ", ";
        known += m->info().name;
      }
      parse_fail(expr, name_pos,
                 "unknown fault model '" + name + "' (registered models: " +
                     known + ")");
    }

    std::vector<std::pair<std::string, double>> params;
    skip_ws();
    if (pos < expr.size() && expr[pos] == '(') {
      ++pos;
      skip_ws();
      if (pos < expr.size() && expr[pos] == ')') {
        ++pos;  // empty parameter list
      } else {
        while (true) {
          const std::string key = parse_name();
          skip_ws();
          if (pos >= expr.size() || expr[pos] != '=') {
            parse_fail(expr, pos, "expected '=' after parameter '" + key +
                                      "'");
          }
          ++pos;
          skip_ws();
          const char* begin = expr.c_str() + pos;
          char* end = nullptr;
          const double value = std::strtod(begin, &end);
          if (end == begin) {
            parse_fail(expr, pos, "expected a number for parameter '" + key +
                                      "'");
          }
          pos += static_cast<std::size_t>(end - begin);
          params.emplace_back(key, value);
          skip_ws();
          if (pos < expr.size() && expr[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < expr.size() && expr[pos] == ')') {
            ++pos;
            break;
          }
          parse_fail(expr, pos, "expected ',' or ')' in parameter list");
        }
      }
    }

    FaultStackItem item;
    item.model = model;
    item.params = make_params(std::move(params));
    model->validate(item.params);
    items.push_back(std::move(item));

    skip_ws();
    if (pos >= expr.size()) break;
    if (expr[pos] != '+') {
      parse_fail(expr, pos, "expected '+' between stacked models");
    }
    ++pos;
  }
  return FaultStack(std::move(items));
}

std::string canonical_fault_expr(const std::string& expr) {
  return parse_fault_expr(expr).canonical();
}

std::string model_name_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kStuckAt: return "stuckat";
    case FaultKind::kDynamic: return "dynamic";
  }
  FLIM_REQUIRE(false, "unhandled fault kind");
  return "";
}

FaultStack stack_from_spec(const FaultSpec& spec) {
  const FaultRegistry& registry = FaultRegistry::instance();
  std::vector<std::pair<std::string, double>> params;
  params.emplace_back("rate", spec.injection_rate);
  params.emplace_back("rows", static_cast<double>(spec.faulty_rows));
  params.emplace_back("cols", static_cast<double>(spec.faulty_cols));
  if (spec.kind == FaultKind::kStuckAt) {
    params.emplace_back("sa1", spec.stuck_at_one_fraction);
  }
  if (spec.kind == FaultKind::kDynamic) {
    params.emplace_back("period", static_cast<double>(spec.dynamic_period));
  }
  FaultStackItem item;
  item.model = &registry.get(model_name_for(spec.kind));
  item.params = make_params(std::move(params));
  return FaultStack({std::move(item)});
}

}  // namespace flim::fault

#include "fault/fault_injector.hpp"

#include "core/check.hpp"

namespace flim::fault {

FaultInjector::FaultInjector(FaultVectorEntry entry)
    : entry_(std::move(entry)) {
  FLIM_REQUIRE(!entry_.mask.empty(), "fault injector needs a non-empty mask");
}

bool FaultInjector::advance_execution() {
  const std::int64_t exec = execution_counter_++;
  if (entry_.kind != FaultKind::kDynamic) return true;
  const std::int64_t period = std::max(1, entry_.dynamic_period);
  // Fires on executions period-1, 2*period-1, ... -- "every n-th operation".
  return (exec % period) == period - 1;
}

void FaultInjector::reset_time() { execution_counter_ = 0; }

void FaultInjector::apply_output_element(tensor::IntTensor& feature,
                                         std::int64_t row_begin,
                                         std::int64_t row_end, bool active,
                                         std::int32_t full_scale) const {
  if (!active) return;
  FLIM_REQUIRE(full_scale > 0, "full_scale must be positive");
  FLIM_REQUIRE(feature.shape().rank() == 2,
               "feature map must be [positions, channels]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end &&
                   row_end <= feature.shape()[0],
               "image row range out of bounds");
  const std::int64_t channels = feature.shape()[1];
  const std::int64_t slots = entry_.mask.num_slots();

  std::int64_t op = 0;  // op index within this image, position-major
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    std::int32_t* row = feature.data() + r * channels;
    for (std::int64_t c = 0; c < channels; ++c, ++op) {
      const std::int64_t slot = op % slots;
      std::int32_t v = row[c];
      if (entry_.mask.flip(slot)) v = -v;
      // Stuck-at dominates (a stuck op cannot toggle) and pins the element
      // to the full-scale ±K accumulator value.
      if (entry_.mask.sa0(slot)) v = -full_scale;
      if (entry_.mask.sa1(slot)) v = +full_scale;
      row[c] = v;
    }
  }
}

const TermMasks& FaultInjector::term_masks(std::int64_t out_channels,
                                           std::int64_t k) {
  if (!term_masks_built_) {
    FLIM_REQUIRE(out_channels > 0 && k > 0,
                 "term mask dimensions must be positive");
    cached_term_masks_.flip = tensor::BitMatrix(out_channels, k);
    cached_term_masks_.sa0 = tensor::BitMatrix(out_channels, k);
    cached_term_masks_.sa1 = tensor::BitMatrix(out_channels, k);
    const std::int64_t slots = entry_.mask.num_slots();
    for (std::int64_t ch = 0; ch < out_channels; ++ch) {
      for (std::int64_t t = 0; t < k; ++t) {
        const std::int64_t slot = (ch * k + t) % slots;
        if (entry_.mask.flip(slot)) cached_term_masks_.flip.set_bit(ch, t, true);
        if (entry_.mask.sa0(slot)) cached_term_masks_.sa0.set_bit(ch, t, true);
        if (entry_.mask.sa1(slot)) cached_term_masks_.sa1.set_bit(ch, t, true);
      }
    }
    term_masks_built_ = true;
  } else {
    FLIM_REQUIRE(cached_term_masks_.flip.rows() == out_channels &&
                     cached_term_masks_.flip.cols() == k,
                 "term mask shape changed between calls");
  }
  return cached_term_masks_;
}

}  // namespace flim::fault

#include "fault/fault_injector.hpp"

#include "core/check.hpp"
#include "fault/fault_registry.hpp"

namespace flim::fault {

FaultInjector::FaultInjector(FaultVectorEntry entry)
    : entry_(std::move(entry)) {
  const FaultRegistry& registry = FaultRegistry::instance();
  if (entry_.components.empty()) {
    // Legacy single-kind entry: adapt (kind, dynamic_period, mask) into the
    // matching registered model. Behaviour is bit-identical to the
    // pre-registry switch.
    FLIM_REQUIRE(!entry_.mask.empty(),
                 "fault injector needs a non-empty mask or components");
    legacy_.model = model_name_for(entry_.kind);
    if (entry_.kind == FaultKind::kDynamic) {
      legacy_.params = {{"period", static_cast<double>(entry_.dynamic_period)}};
    }
    legacy_.mask = entry_.mask;
    components_.push_back({&registry.get(legacy_.model), &legacy_});
  } else {
    components_.reserve(entry_.components.size());
    for (const RealizedFault& fault : entry_.components) {
      FLIM_REQUIRE(!fault.mask.empty(),
                   "fault component '" + fault.model + "' has an empty mask");
      components_.push_back({&registry.get(fault.model), &fault});
    }
  }
  FLIM_REQUIRE(components_.size() <= 64,
               "fault stacks are limited to 64 components per layer");
  for (const Component& component : components_) {
    const ModelInfo& meta = component.model->info();
    if (entry_.granularity == FaultGranularity::kProductTerm) {
      FLIM_REQUIRE(meta.product_term,
                   "fault model '" + meta.name +
                       "' does not support product-term granularity");
    } else {
      FLIM_REQUIRE(meta.output_element,
                   "fault model '" + meta.name +
                       "' does not support output-element granularity");
    }
  }
}

void FaultInjector::reset_time() { execution_counter_ = 0; }

std::uint64_t FaultInjector::active_signature(std::int64_t execution) const {
  std::uint64_t signature = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].model->active(*components_[i].fault, execution)) {
      signature |= std::uint64_t{1} << i;
    }
  }
  return signature;
}

bool FaultInjector::any_active(std::int64_t execution) const {
  return active_signature(execution) != 0;
}

void FaultInjector::apply_output_element(tensor::IntTensor& feature,
                                         std::int64_t row_begin,
                                         std::int64_t row_end,
                                         std::int64_t execution,
                                         std::int32_t full_scale) const {
  FLIM_REQUIRE(full_scale > 0, "full_scale must be positive");
  FLIM_REQUIRE(feature.shape().rank() == 2,
               "feature map must be [positions, channels]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end &&
                   row_end <= feature.shape()[0],
               "image row range out of bounds");
  for (const Component& component : components_) {
    if (!component.model->active(*component.fault, execution)) continue;
    component.model->apply_output_element(*component.fault, feature,
                                          row_begin, row_end, execution,
                                          full_scale);
  }
}

const TermMasks* FaultInjector::term_masks(std::int64_t out_channels,
                                           std::int64_t k,
                                           std::int64_t execution) {
  FLIM_REQUIRE(out_channels > 0 && k > 0,
               "term mask dimensions must be positive");
  const std::uint64_t signature = active_signature(execution);
  if (signature == 0) return nullptr;

  // Folding the planes costs O(out_channels * K) -- worth caching per
  // active-component signature, and the cache must stay consistent when a
  // pooled campaign drives one injector from several workers.
  const core::MutexLock lock(term_cache_mutex_);
  if (term_out_channels_ < 0) {
    term_out_channels_ = out_channels;
    term_k_ = k;
  } else {
    FLIM_REQUIRE(term_out_channels_ == out_channels && term_k_ == k,
                 "term mask shape changed between calls");
  }
  const auto cached = term_cache_.find(signature);
  if (cached != term_cache_.end()) return cached->second.get();

  auto masks = std::make_unique<TermMasks>();
  masks->flip = tensor::BitMatrix(out_channels, k);
  masks->sa0 = tensor::BitMatrix(out_channels, k);
  masks->sa1 = tensor::BitMatrix(out_channels, k);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if ((signature & (std::uint64_t{1} << i)) == 0) continue;
    components_[i].model->fold_term_planes(*components_[i].fault, *masks,
                                           out_channels, k);
  }
  const TermMasks* result = masks.get();
  term_cache_.emplace(signature, std::move(masks));
  return result;
}

}  // namespace flim::fault

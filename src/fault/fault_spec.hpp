// Fault specifications: what to inject, where, and how often.
//
// The paper's Fault Generator "constructs a set of fault vectors encoding
// the fault type, location, and injection rate". FaultSpec is that encoding
// before randomization; FaultMask (fault_mask.hpp) is the realized location
// set for one seed.
#pragma once

#include <cstdint>
#include <string>

namespace flim::fault {

/// Fault categories from the paper (Section III, "Fault masking").
enum class FaultKind : std::uint8_t {
  kBitFlip = 0,   // transient: result of the XNOR op is inverted
  kStuckAt = 1,   // permanent: result pinned to 0 or 1
  kDynamic = 2,   // bit-flip sensitized only every n-th layer execution
};

/// Spatial distribution of the randomly placed faults over the grid.
///
/// The paper draws fault locations uniformly ("randomly distributed
/// bit-flips"); real ReRAM defect maps cluster around filament-formation
/// and etch defects, so the generator also offers a clustered mode: fault
/// sites scatter (discrete Gaussian) around a few cluster centers. The
/// total marked-slot count is identical in both modes -- only the spatial
/// correlation changes -- which is what the distribution ablation sweeps.
enum class FaultDistribution : std::uint8_t {
  kUniform = 0,
  kClustered = 1,
};

/// Injection granularity (docs/architecture.md, "Fault granularity").
///
/// kOutputElement reproduces the paper's TensorFlow implementation: masks
/// are applied to the layer's feature map (each element is "the XNOR op").
/// kProductTerm models the physical crossbar more closely: individual
/// product terms a_i XNOR w_i are corrupted before the CMOS popcount.
enum class FaultGranularity : std::uint8_t {
  kOutputElement = 0,
  kProductTerm = 1,
};

/// Declarative description of one fault campaign on one (virtual) crossbar.
struct FaultSpec {
  FaultKind kind = FaultKind::kBitFlip;

  /// Fraction of virtual crossbar slots marked faulty (0..1); the paper's
  /// "injection rate". Ignored slots from faulty_rows/cols come on top.
  double injection_rate = 0.0;

  /// Whole faulty rows / columns (Fig 4d/e). Rows/columns are chosen
  /// uniformly at random without replacement.
  std::int64_t faulty_rows = 0;
  std::int64_t faulty_cols = 0;

  /// For kDynamic: the fault fires on every `dynamic_period`-th execution
  /// of the affected layer; 0 and 1 both mean "every execution" (static).
  int dynamic_period = 0;

  /// For kStuckAt: probability that a stuck cell is stuck-at-1 (the rest
  /// are stuck-at-0).
  double stuck_at_one_fraction = 0.5;

  FaultGranularity granularity = FaultGranularity::kOutputElement;

  /// Spatial placement of the injection_rate faults.
  FaultDistribution distribution = FaultDistribution::kUniform;
  /// kClustered: number of cluster centers; 0 derives one center per ~24
  /// faulty slots.
  int cluster_count = 0;
  /// kClustered: Gaussian scatter (in cells) around each center.
  double cluster_radius = 2.0;
};

/// Human-readable names for reports.
std::string to_string(FaultKind kind);
std::string to_string(FaultGranularity granularity);
std::string to_string(FaultDistribution distribution);

/// Validates a spec, throwing std::invalid_argument on nonsense values.
void validate(const FaultSpec& spec);

}  // namespace flim::fault

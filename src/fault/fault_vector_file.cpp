#include "fault/fault_vector_file.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/check.hpp"

namespace flim::fault {

namespace {

constexpr std::uint64_t kMagic = 0x314356464d494c46ull;  // "FLIMFVC1"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::string str(std::size_t len) {
    require(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::uint8_t> raw(std::size_t len) {
    require(len);
    std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return v;
  }

 private:
  void require(std::size_t n) {
    FLIM_REQUIRE(pos_ + n <= bytes_.size(),
                 "fault vector file truncated or corrupt");
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

void put_packed_plane(std::vector<std::uint8_t>& out,
                      const std::vector<std::uint8_t>& plane) {
  std::uint8_t acc = 0;
  int bits = 0;
  for (const auto v : plane) {
    if (v) acc |= static_cast<std::uint8_t>(1u << bits);
    if (++bits == 8) {
      out.push_back(acc);
      acc = 0;
      bits = 0;
    }
  }
  if (bits > 0) out.push_back(acc);
}

std::vector<std::uint8_t> read_packed_plane(Reader& r, std::size_t n) {
  const std::size_t bytes = (n + 7) / 8;
  const auto packed = r.raw(bytes);
  std::vector<std::uint8_t> plane(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    plane[i] = (packed[i / 8] >> (i % 8)) & 1u;
  }
  return plane;
}

}  // namespace

const FaultVectorEntry* FaultVectorFile::find(
    const std::string& layer_name) const {
  for (const auto& e : entries_) {
    if (e.layer_name == layer_name) return &e;
  }
  return nullptr;
}

std::vector<std::uint8_t> FaultVectorFile::serialize() const {
  std::vector<std::uint8_t> out;
  put_u64(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    put_u32(out, static_cast<std::uint32_t>(e.layer_name.size()));
    out.insert(out.end(), e.layer_name.begin(), e.layer_name.end());
    out.push_back(static_cast<std::uint8_t>(e.kind));
    out.push_back(static_cast<std::uint8_t>(e.granularity));
    put_u32(out, static_cast<std::uint32_t>(e.dynamic_period));
    put_u64(out, static_cast<std::uint64_t>(e.mask.rows()));
    put_u64(out, static_cast<std::uint64_t>(e.mask.cols()));
    put_packed_plane(out, e.mask.flip_plane());
    put_packed_plane(out, e.mask.sa0_plane());
    put_packed_plane(out, e.mask.sa1_plane());
  }
  return out;
}

FaultVectorFile FaultVectorFile::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  FLIM_REQUIRE(r.u64() == kMagic, "not a FLIM fault vector file");
  FLIM_REQUIRE(r.u32() == kVersion, "unsupported fault vector file version");
  const std::uint32_t count = r.u32();
  FaultVectorFile file;
  for (std::uint32_t i = 0; i < count; ++i) {
    FaultVectorEntry e;
    const std::uint32_t name_len = r.u32();
    e.layer_name = r.str(name_len);
    e.kind = static_cast<FaultKind>(r.u8());
    e.granularity = static_cast<FaultGranularity>(r.u8());
    e.dynamic_period = static_cast<int>(r.u32());
    const auto rows = static_cast<std::int64_t>(r.u64());
    const auto cols = static_cast<std::int64_t>(r.u64());
    FLIM_REQUIRE(rows > 0 && cols > 0 && rows * cols < (std::int64_t{1} << 32),
                 "implausible mask dimensions in fault vector file");
    e.mask = FaultMask(rows, cols);
    const auto n = static_cast<std::size_t>(rows * cols);
    e.mask.mutable_flip_plane() = read_packed_plane(r, n);
    e.mask.mutable_sa0_plane() = read_packed_plane(r, n);
    e.mask.mutable_sa1_plane() = read_packed_plane(r, n);
    file.add(std::move(e));
  }
  return file;
}

void FaultVectorFile::save(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FLIM_REQUIRE(out.good(), "cannot open fault vector file for writing: " + path);
  const auto bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

FaultVectorFile FaultVectorFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLIM_REQUIRE(in.good(), "cannot open fault vector file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

}  // namespace flim::fault

#include "fault/fault_vector_file.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/check.hpp"
#include "core/report.hpp"

namespace flim::fault {

namespace {

constexpr std::uint64_t kMagic = 0x314356464d494c46ull;  // "FLIMFVC1"
// Version 1: legacy single-kind entries. Version 2 appends the realized
// fault-model components; it is written only when an entry carries any, so
// legacy files stay byte-identical.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersionComponents = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::string str(std::size_t len) {
    require(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::uint8_t> raw(std::size_t len) {
    require(len);
    std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return v;
  }

 private:
  void require(std::size_t n) {
    FLIM_REQUIRE(pos_ + n <= bytes_.size(),
                 "fault vector file truncated or corrupt");
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

void put_packed_plane(std::vector<std::uint8_t>& out,
                      const std::vector<std::uint8_t>& plane) {
  std::uint8_t acc = 0;
  int bits = 0;
  for (const auto v : plane) {
    if (v) acc |= static_cast<std::uint8_t>(1u << bits);
    if (++bits == 8) {
      out.push_back(acc);
      acc = 0;
      bits = 0;
    }
  }
  if (bits > 0) out.push_back(acc);
}

std::vector<std::uint8_t> read_packed_plane(Reader& r, std::size_t n) {
  const std::size_t bytes = (n + 7) / 8;
  const auto packed = r.raw(bytes);
  std::vector<std::uint8_t> plane(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    plane[i] = (packed[i / 8] >> (i % 8)) & 1u;
  }
  return plane;
}

std::uint64_t bit_cast_u64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bit_cast_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void put_mask(std::vector<std::uint8_t>& out, const FaultMask& mask) {
  put_u64(out, static_cast<std::uint64_t>(mask.rows()));
  put_u64(out, static_cast<std::uint64_t>(mask.cols()));
  put_packed_plane(out, mask.flip_plane());
  put_packed_plane(out, mask.sa0_plane());
  put_packed_plane(out, mask.sa1_plane());
}

FaultMask read_mask(Reader& r) {
  const auto rows = static_cast<std::int64_t>(r.u64());
  const auto cols = static_cast<std::int64_t>(r.u64());
  FLIM_REQUIRE(rows > 0 && cols > 0 && rows * cols < (std::int64_t{1} << 32),
               "implausible mask dimensions in fault vector file");
  FaultMask mask(rows, cols);
  const auto n = static_cast<std::size_t>(rows * cols);
  mask.mutable_flip_plane() = read_packed_plane(r, n);
  mask.mutable_sa0_plane() = read_packed_plane(r, n);
  mask.mutable_sa1_plane() = read_packed_plane(r, n);
  return mask;
}

}  // namespace

std::string FaultVectorEntry::describe() const {
  if (components.empty()) return to_string(kind);
  std::string out;
  for (const RealizedFault& c : components) {
    if (!out.empty()) out += "+";
    out += c.model;
    if (!c.params.empty()) {
      out += "(";
      for (std::size_t i = 0; i < c.params.size(); ++i) {
        if (i) out += ",";
        out += c.params[i].first + "=" +
               core::format_double_shortest(c.params[i].second);
      }
      out += ")";
    }
  }
  return out;
}

FaultMask FaultVectorEntry::combined_mask() const {
  if (components.empty()) return mask;
  const FaultMask& first = components.front().mask;
  FaultMask combined(first.rows(), first.cols());
  for (const RealizedFault& c : components) {
    FLIM_REQUIRE(c.mask.rows() == first.rows() &&
                     c.mask.cols() == first.cols(),
                 "fault components of one entry must share a mask grid");
    for (std::int64_t slot = 0; slot < c.mask.num_slots(); ++slot) {
      if (c.mask.flip(slot)) combined.set_flip(slot, true);
      if (c.mask.sa0(slot)) combined.set_sa0(slot, true);
      if (c.mask.sa1(slot)) combined.set_sa1(slot, true);
    }
  }
  return combined;
}

const FaultVectorEntry* FaultVectorFile::find(
    const std::string& layer_name) const {
  for (const auto& e : entries_) {
    if (e.layer_name == layer_name) return &e;
  }
  return nullptr;
}

std::vector<std::uint8_t> FaultVectorFile::serialize() const {
  bool any_components = false;
  for (const auto& e : entries_) {
    if (!e.components.empty()) any_components = true;
  }
  const std::uint32_t version =
      any_components ? kVersionComponents : kVersionLegacy;

  std::vector<std::uint8_t> out;
  put_u64(out, kMagic);
  put_u32(out, version);
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    put_u32(out, static_cast<std::uint32_t>(e.layer_name.size()));
    out.insert(out.end(), e.layer_name.begin(), e.layer_name.end());
    out.push_back(static_cast<std::uint8_t>(e.kind));
    out.push_back(static_cast<std::uint8_t>(e.granularity));
    put_u32(out, static_cast<std::uint32_t>(e.dynamic_period));
    // Component entries carry an empty legacy mask; persist a 1x1 stand-in
    // so the version-1 "positive dimensions" invariant holds everywhere.
    const FaultMask placeholder(1, 1);
    put_mask(out, e.mask.empty() ? placeholder : e.mask);
    if (version == kVersionComponents) {
      put_u32(out, static_cast<std::uint32_t>(e.components.size()));
      for (const RealizedFault& c : e.components) {
        put_u32(out, static_cast<std::uint32_t>(c.model.size()));
        out.insert(out.end(), c.model.begin(), c.model.end());
        put_u32(out, static_cast<std::uint32_t>(c.params.size()));
        for (const auto& [key, value] : c.params) {
          put_u32(out, static_cast<std::uint32_t>(key.size()));
          out.insert(out.end(), key.begin(), key.end());
          put_u64(out, bit_cast_u64(value));
        }
        put_u64(out, static_cast<std::uint64_t>(c.first_active));
        put_mask(out, c.mask);
        put_u64(out, static_cast<std::uint64_t>(c.site_values.size()));
        for (const std::int64_t v : c.site_values) {
          put_u64(out, static_cast<std::uint64_t>(v));
        }
      }
    }
  }
  return out;
}

FaultVectorFile FaultVectorFile::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  FLIM_REQUIRE(r.u64() == kMagic, "not a FLIM fault vector file");
  const std::uint32_t version = r.u32();
  FLIM_REQUIRE(version == kVersionLegacy || version == kVersionComponents,
               "unsupported fault vector file version");
  const std::uint32_t count = r.u32();
  FaultVectorFile file;
  for (std::uint32_t i = 0; i < count; ++i) {
    FaultVectorEntry e;
    const std::uint32_t name_len = r.u32();
    e.layer_name = r.str(name_len);
    e.kind = static_cast<FaultKind>(r.u8());
    e.granularity = static_cast<FaultGranularity>(r.u8());
    e.dynamic_period = static_cast<int>(r.u32());
    e.mask = read_mask(r);
    if (version == kVersionComponents) {
      const std::uint32_t component_count = r.u32();
      e.components.reserve(component_count);
      for (std::uint32_t c = 0; c < component_count; ++c) {
        RealizedFault rf;
        rf.model = r.str(r.u32());
        const std::uint32_t param_count = r.u32();
        rf.params.reserve(param_count);
        for (std::uint32_t p = 0; p < param_count; ++p) {
          std::string key = r.str(r.u32());
          rf.params.emplace_back(std::move(key), bit_cast_double(r.u64()));
        }
        rf.first_active = static_cast<std::int64_t>(r.u64());
        rf.mask = read_mask(r);
        const std::uint64_t n_values = r.u64();
        // All-or-nothing: models that carry per-site state (drift) always
        // serialize one value per slot and index the vector by slot, so a
        // partial vector would read out of bounds at apply time.
        FLIM_REQUIRE(n_values == 0 ||
                         n_values == static_cast<std::uint64_t>(
                                         rf.mask.num_slots()),
                     "implausible site-value count in fault vector file");
        rf.site_values.reserve(static_cast<std::size_t>(n_values));
        for (std::uint64_t v = 0; v < n_values; ++v) {
          rf.site_values.push_back(static_cast<std::int64_t>(r.u64()));
        }
        e.components.push_back(std::move(rf));
      }
      // A component entry round-trips its placeholder legacy mask back to
      // empty so equality with the in-memory original holds.
      if (!e.components.empty() && e.mask.rows() == 1 && e.mask.cols() == 1 &&
          !e.mask.any()) {
        e.mask = FaultMask();
      }
    }
    file.add(std::move(e));
  }
  return file;
}

void FaultVectorFile::save(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FLIM_REQUIRE(out.good(), "cannot open fault vector file for writing: " + path);
  const auto bytes = serialize();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

FaultVectorFile FaultVectorFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLIM_REQUIRE(in.good(), "cannot open fault vector file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

}  // namespace flim::fault

// Binary fault-vector files ("noise vector extraction").
//
// "The 2-dimensional arrays are flattened to 1 dimension. Furthermore, the
// vectors are stored in a binary file annotated with meta-information about
// the assigned layer and mask type. The binary file is independent of the
// dataset and reusable for a myriad of experiments." (paper, Section III).
//
// File layout (little-endian):
//   u64 magic 'FLIMFVC1'  u32 version  u32 entry_count
//   per entry:
//     u32 name_len, name bytes
//     u8 kind, u8 granularity, u32 dynamic_period
//     u64 rows, u64 cols
//     bit-packed flip plane, sa0 plane, sa1 plane (rows*cols bits each,
//     padded to whole bytes)
//   version 2 appends, per entry, the realized fault-model components:
//     u32 component_count
//     per component:
//       u32 model_len, model bytes
//       u32 param_count; per param: u32 key_len, key bytes, f64 value
//       i64 first_active
//       u64 rows, u64 cols, the three bit-packed planes
//       u64 site_value_count; i64 site values
// Version 1 is still written whenever no entry carries components, so files
// produced by the legacy single-kind API stay byte-identical and loadable
// by older builds.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_mask.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_spec.hpp"

namespace flim::fault {

/// One named fault entry (typically one per BNN layer).
///
/// Two representations coexist:
/// * legacy single-kind: `components` is empty and (kind, dynamic_period,
///   mask) describe one fault of the paper taxonomy; the injector
///   synthesizes the matching registered model, so behaviour is identical
///   to the pre-registry switch.
/// * composable: `components` holds the realized models of a FaultStack in
///   application order; kind/mask above are ignored.
struct FaultVectorEntry {
  std::string layer_name;
  FaultKind kind = FaultKind::kBitFlip;
  FaultGranularity granularity = FaultGranularity::kOutputElement;
  int dynamic_period = 0;
  FaultMask mask;
  /// Realized fault-model components (composable representation).
  std::vector<RealizedFault> components;

  /// Canonical description: the component stack expression, or the legacy
  /// kind name.
  std::string describe() const;

  /// Union of all fault planes (the legacy mask, or every component's
  /// planes OR-ed together) -- the static defect footprint consumers like
  /// the canary monitor and ECC scrubber see.
  FaultMask combined_mask() const;

  bool operator==(const FaultVectorEntry& other) const {
    return layer_name == other.layer_name && kind == other.kind &&
           granularity == other.granularity &&
           dynamic_period == other.dynamic_period && mask == other.mask &&
           components == other.components;
  }
};

/// A reusable set of fault vectors.
class FaultVectorFile {
 public:
  FaultVectorFile() = default;

  void add(FaultVectorEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<FaultVectorEntry>& entries() const { return entries_; }
  /// Mutable view, for post-realization rewrites (the ECC residual scrub
  /// edits masks in place so the realization RNG stream stays untouched).
  std::vector<FaultVectorEntry>& mutable_entries() { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Finds the entry for a layer; nullptr when absent.
  const FaultVectorEntry* find(const std::string& layer_name) const;

  /// Serializes to / from the binary representation.
  std::vector<std::uint8_t> serialize() const;
  static FaultVectorFile deserialize(const std::vector<std::uint8_t>& bytes);

  /// File I/O wrappers.
  void save(const std::string& path) const;
  static FaultVectorFile load(const std::string& path);

  bool operator==(const FaultVectorFile& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<FaultVectorEntry> entries_;
};

}  // namespace flim::fault

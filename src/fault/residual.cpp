#include "fault/residual.hpp"

#include <vector>

#include "core/check.hpp"

namespace flim::fault {

FaultMask apply_word_residual(const FaultMask& mask,
                              const ResidualOptions& options,
                              ResidualStats* stats) {
  FLIM_REQUIRE(options.word_bits > 0, "word_bits must be positive");
  FLIM_REQUIRE(options.interleave > 0, "interleave must be positive");
  FLIM_REQUIRE(options.correct_per_word > 0,
               "correct_per_word must be positive");

  FaultMask residual = mask;
  ResidualStats local;

  const std::int64_t rows = mask.rows();
  const std::int64_t cols = mask.cols();
  const auto faulty = [&](std::int64_t slot) {
    return mask.flip(slot) || mask.sa0(slot) || mask.sa1(slot);
  };

  std::vector<std::int64_t> word_slots;
  word_slots.reserve(static_cast<std::size_t>(options.word_bits));

  const auto scrub_word = [&] {
    ++local.words;
    int faulty_count = 0;
    for (const std::int64_t s : word_slots) {
      if (faulty(s)) ++faulty_count;
    }
    local.faulty_bits_before += faulty_count;
    if (faulty_count == 0) {
      ++local.clean_words;
    } else if (faulty_count <= options.correct_per_word) {
      ++local.corrected_words;
      for (const std::int64_t s : word_slots) {
        residual.set_flip(s, false);
        residual.set_sa0(s, false);
        residual.set_sa1(s, false);
      }
    } else {
      ++local.uncorrectable_words;
      local.faulty_bits_after += faulty_count;
    }
    word_slots.clear();
  };

  for (std::int64_t r = 0; r < rows; ++r) {
    for (int lane = 0; lane < options.interleave; ++lane) {
      // Cells of this row belonging to `lane`, in ascending column order,
      // chunked into words of word_bits cells (the final word may be short).
      for (std::int64_t c = lane; c < cols; c += options.interleave) {
        word_slots.push_back(r * cols + c);
        if (word_slots.size() ==
            static_cast<std::size_t>(options.word_bits)) {
          scrub_word();
        }
      }
      if (!word_slots.empty()) scrub_word();
    }
  }

  if (stats != nullptr) *stats = local;
  return residual;
}

void apply_entry_residual(FaultVectorEntry& entry,
                          const ResidualOptions& options,
                          ResidualStats* stats) {
  if (entry.components.empty()) {
    entry.mask = apply_word_residual(entry.mask, options, stats);
    return;
  }
  const FaultMask combined = entry.combined_mask();
  const FaultMask repaired = apply_word_residual(combined, options, stats);
  const auto faulty = [](const FaultMask& mask, std::int64_t slot) {
    return mask.flip(slot) || mask.sa0(slot) || mask.sa1(slot);
  };
  for (std::int64_t slot = 0; slot < combined.num_slots(); ++slot) {
    if (!faulty(combined, slot) || faulty(repaired, slot)) continue;
    for (RealizedFault& component : entry.components) {
      component.mask.set_flip(slot, false);
      component.mask.set_sa0(slot, false);
      component.mask.set_sa1(slot, false);
    }
  }
}

}  // namespace flim::fault

// Realized fault masks over the virtual crossbar grid.
//
// "The bit-flip mask defines a 2-dimensional Boolean array initialized with
// zeros. The injection rate specifies the number of elements within the
// array set to 1. [...] Likewise, the stuck-at mask follows the same
// structure." (paper, Section III). A FaultMask carries all three planes;
// for a given spec only the relevant ones are populated.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_spec.hpp"

namespace flim::fault {

/// Boolean planes (flip / stuck-at-0 / stuck-at-1) over an R x C grid of
/// XNOR-operation slots ("virtual crossbar representation").
class FaultMask {
 public:
  FaultMask() = default;
  FaultMask(std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t num_slots() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Plane accessors by flat slot index (row-major).
  bool flip(std::int64_t slot) const { return flip_[idx(slot)] != 0; }
  bool sa0(std::int64_t slot) const { return sa0_[idx(slot)] != 0; }
  bool sa1(std::int64_t slot) const { return sa1_[idx(slot)] != 0; }

  void set_flip(std::int64_t slot, bool v) { flip_[idx(slot)] = v ? 1 : 0; }
  void set_sa0(std::int64_t slot, bool v) { sa0_[idx(slot)] = v ? 1 : 0; }
  void set_sa1(std::int64_t slot, bool v) { sa1_[idx(slot)] = v ? 1 : 0; }

  /// 2-D convenience accessors.
  bool flip_at(std::int64_t r, std::int64_t c) const { return flip(r * cols_ + c); }
  bool sa0_at(std::int64_t r, std::int64_t c) const { return sa0(r * cols_ + c); }
  bool sa1_at(std::int64_t r, std::int64_t c) const { return sa1(r * cols_ + c); }

  /// Marks a whole row / column in the flip plane (used for Fig 4d/e).
  void mark_row_flip(std::int64_t r);
  void mark_col_flip(std::int64_t c);

  /// True when any plane has a marked slot.
  bool any() const;

  /// Population counts (for tests and reports).
  std::int64_t count_flip() const;
  std::int64_t count_sa0() const;
  std::int64_t count_sa1() const;

  /// Raw plane access for serialization ("noise vector extraction": the
  /// 2-dimensional arrays are flattened to 1 dimension).
  const std::vector<std::uint8_t>& flip_plane() const { return flip_; }
  const std::vector<std::uint8_t>& sa0_plane() const { return sa0_; }
  const std::vector<std::uint8_t>& sa1_plane() const { return sa1_; }
  std::vector<std::uint8_t>& mutable_flip_plane() { return flip_; }
  std::vector<std::uint8_t>& mutable_sa0_plane() { return sa0_; }
  std::vector<std::uint8_t>& mutable_sa1_plane() { return sa1_; }

  bool operator==(const FaultMask& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           flip_ == other.flip_ && sa0_ == other.sa0_ && sa1_ == other.sa1_;
  }

 private:
  std::size_t idx(std::int64_t slot) const;

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::uint8_t> flip_;
  std::vector<std::uint8_t> sa0_;
  std::vector<std::uint8_t> sa1_;
};

}  // namespace flim::fault

// The Fault Injector: applies realized fault components to running
// inference.
//
// One injector instance is attached to one binarized layer. It owns the
// layer's realized component stack, the execution counter ("notion of
// time": models can be sensitized only on some executions), and the cached
// product-term mask planes per active-component signature.
//
// All fault behaviour is dispatched polymorphically through the registered
// FaultModel of each component -- there is no fault-kind switch here. A
// legacy single-kind entry (empty `components`) is adapted on construction
// into the matching registered model, which reproduces the pre-registry
// semantics bit for bit.
//
// Application semantics (see docs/fault-models.md):
// * kOutputElement -- the paper's implementation: the layer's feature map is
//   treated as the XNOR-op outputs; every active component corrupts it in
//   stack order (later models see earlier models' corruption).
// * kProductTerm -- device-faithful: individual a_i XNOR w_i product terms
//   are corrupted before the CMOS popcount. Because LIM crossbars are
//   weight-stationary, a faulty cell corrupts the same (channel, term)
//   coordinate for every output position; masks are therefore shaped
//   [out_channels, K] and folded over the active components (flips XOR,
//   stuck-at OR).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_vector_file.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::fault {

/// Stateful per-layer fault applier.
class FaultInjector {
 public:
  /// Resolves the entry's components against the model registry; throws on
  /// unknown models, unsupported granularity, or an entry with neither a
  /// legacy mask nor components.
  explicit FaultInjector(FaultVectorEntry entry);

  const FaultVectorEntry& entry() const { return entry_; }
  FaultGranularity granularity() const { return entry_.granularity; }
  std::size_t num_components() const { return components_.size(); }

  /// Returns the 0-based index of this execution and advances the layer
  /// execution counter (call once per image).
  std::int64_t advance_execution() { return execution_counter_++; }

  /// Resets the execution counter (new campaign repetition).
  void reset_time();

  /// True when any component is sensitized at `execution`.
  bool any_active(std::int64_t execution) const;

  /// Output-element granularity: applies every component active at
  /// `execution`, in stack order, to rows [row_begin, row_end) of the
  /// integer feature map (rows = output positions, cols = channels) of one
  /// image. Op i of the image (position-major) maps to virtual slot
  /// i mod num_slots. `full_scale` is K, the product-term count.
  void apply_output_element(tensor::IntTensor& feature,
                            std::int64_t row_begin, std::int64_t row_end,
                            std::int64_t execution,
                            std::int32_t full_scale) const;

  /// Product-term granularity: the folded [out_channels, K] planes of the
  /// components active at `execution`, or nullptr when none is (clean fast
  /// path). Planes are built once per active-component signature and
  /// cached; the cache is mutex-guarded, so concurrent campaign workers
  /// sharing one injector stay race-free. Term op (ch, k) maps to virtual
  /// slot (ch*K + t) mod num_slots.
  const TermMasks* term_masks(std::int64_t out_channels, std::int64_t k,
                              std::int64_t execution);

 private:
  /// Resolved view of one component: the registry model plus a pointer
  /// into entry_.components (or legacy_) -- masks and site_values are
  /// never copied. The mutex member below makes the injector immovable,
  /// so the pointers stay valid for its whole lifetime.
  struct Component {
    const FaultModel* model = nullptr;
    const RealizedFault* fault = nullptr;
  };

  /// Bitmask over components active at `execution`.
  std::uint64_t active_signature(std::int64_t execution) const;

  FaultVectorEntry entry_;
  /// The component synthesized from a legacy single-kind entry.
  RealizedFault legacy_;
  std::vector<Component> components_;
  std::int64_t execution_counter_ = 0;

  mutable core::Mutex term_cache_mutex_;
  /// Entries are immutable once inserted and never erased, so the pointer
  /// term_masks() returns stays valid after the lock is released.
  std::map<std::uint64_t, std::unique_ptr<TermMasks>> term_cache_
      FLIM_GUARDED_BY(term_cache_mutex_);
  std::int64_t term_out_channels_ FLIM_GUARDED_BY(term_cache_mutex_) = -1;
  std::int64_t term_k_ FLIM_GUARDED_BY(term_cache_mutex_) = -1;
};

}  // namespace flim::fault

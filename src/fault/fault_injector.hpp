// The Fault Injector: applies realized masks to running inference.
//
// One injector instance is attached to one binarized layer. It owns the
// layer's mask entry, the dynamic-fault execution counter ("notion of time":
// faults can be sensitized only every n-th execution of the layer), and the
// cached product-term masks.
//
// Application semantics (see DESIGN.md):
// * kOutputElement -- the paper's implementation: the layer's feature map is
//   treated as the XNOR-op outputs. A flipped op negates the accumulator
//   value ("applying the fault masks by performing another XNOR operation"),
//   a stuck-at op pins it to the stuck logic value in the ±1 encoding.
// * kProductTerm -- device-faithful: individual a_i XNOR w_i product terms
//   are corrupted before the CMOS popcount. Because LIM crossbars are
//   weight-stationary, a faulty cell corrupts the same (channel, term)
//   coordinate for every output position; masks are therefore shaped
//   [out_channels, K].
#pragma once

#include <cstdint>

#include "fault/fault_vector_file.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::fault {

/// Cached product-term mask planes shaped [out_channels, K].
struct TermMasks {
  tensor::BitMatrix flip;
  tensor::BitMatrix sa0;
  tensor::BitMatrix sa1;
};

/// Stateful per-layer fault applier.
class FaultInjector {
 public:
  explicit FaultInjector(FaultVectorEntry entry);

  const FaultVectorEntry& entry() const { return entry_; }
  FaultGranularity granularity() const { return entry_.granularity; }

  /// Advances the layer execution counter (call once per image) and reports
  /// whether faults are active for this execution. Static faults are always
  /// active; dynamic faults fire every `dynamic_period`-th execution.
  bool advance_execution();

  /// Resets the dynamic execution counter (new campaign repetition).
  void reset_time();

  /// Output-element granularity: corrupts rows [row_begin, row_end) of the
  /// integer feature map (rows = output positions, cols = channels) of one
  /// image. Op i of the image (position-major) maps to virtual slot
  /// i mod num_slots. A flipped op negates the accumulator; a stuck-at op
  /// pins it to the full-scale value ∓`full_scale` (= K, the product-term
  /// count: a stuck XNOR column reports all-mismatch or all-match). No-op
  /// when `active` is false.
  void apply_output_element(tensor::IntTensor& feature,
                            std::int64_t row_begin, std::int64_t row_end,
                            bool active, std::int32_t full_scale) const;

  /// Product-term granularity: lazily builds and caches the [out_ch, K]
  /// masks. Term op (ch, k) maps to virtual slot (ch*K + k) mod num_slots.
  const TermMasks& term_masks(std::int64_t out_channels, std::int64_t k);

 private:
  FaultVectorEntry entry_;
  std::int64_t execution_counter_ = 0;
  bool term_masks_built_ = false;
  TermMasks cached_term_masks_;
};

}  // namespace flim::fault

#include "fault/fault_mask.hpp"

#include <numeric>

#include "core/check.hpp"

namespace flim::fault {

FaultMask::FaultMask(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  FLIM_REQUIRE(rows > 0 && cols > 0, "mask grid must be positive");
  const auto n = static_cast<std::size_t>(rows * cols);
  flip_.assign(n, 0);
  sa0_.assign(n, 0);
  sa1_.assign(n, 0);
}

std::size_t FaultMask::idx(std::int64_t slot) const {
  FLIM_ASSERT(slot >= 0 && slot < num_slots());
  return static_cast<std::size_t>(slot);
}

void FaultMask::mark_row_flip(std::int64_t r) {
  FLIM_REQUIRE(r >= 0 && r < rows_, "row out of range");
  for (std::int64_t c = 0; c < cols_; ++c) set_flip(r * cols_ + c, true);
}

void FaultMask::mark_col_flip(std::int64_t c) {
  FLIM_REQUIRE(c >= 0 && c < cols_, "column out of range");
  for (std::int64_t r = 0; r < rows_; ++r) set_flip(r * cols_ + c, true);
}

bool FaultMask::any() const {
  return count_flip() > 0 || count_sa0() > 0 || count_sa1() > 0;
}

namespace {
std::int64_t popcount(const std::vector<std::uint8_t>& plane) {
  return std::accumulate(plane.begin(), plane.end(), std::int64_t{0},
                         [](std::int64_t acc, std::uint8_t v) {
                           return acc + (v != 0 ? 1 : 0);
                         });
}
}  // namespace

std::int64_t FaultMask::count_flip() const { return popcount(flip_); }
std::int64_t FaultMask::count_sa0() const { return popcount(sa0_); }
std::int64_t FaultMask::count_sa1() const { return popcount(sa1_); }

}  // namespace flim::fault

#include "fault/fault_spec.hpp"

#include "core/check.hpp"

namespace flim::fault {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kDynamic: return "dynamic";
  }
  return "?";
}

std::string to_string(FaultGranularity granularity) {
  switch (granularity) {
    case FaultGranularity::kOutputElement: return "output-element";
    case FaultGranularity::kProductTerm: return "product-term";
  }
  return "?";
}

std::string to_string(FaultDistribution distribution) {
  switch (distribution) {
    case FaultDistribution::kUniform: return "uniform";
    case FaultDistribution::kClustered: return "clustered";
  }
  return "?";
}

void validate(const FaultSpec& spec) {
  FLIM_REQUIRE(spec.injection_rate >= 0.0 && spec.injection_rate <= 1.0,
               "injection rate must be in [0, 1], got " +
                   std::to_string(spec.injection_rate));
  FLIM_REQUIRE(spec.faulty_rows >= 0 && spec.faulty_cols >= 0,
               "faulty row/column counts must be non-negative, got rows=" +
                   std::to_string(spec.faulty_rows) + " cols=" +
                   std::to_string(spec.faulty_cols));
  FLIM_REQUIRE(spec.dynamic_period >= 0,
               "dynamic period must be >= 0, got " +
                   std::to_string(spec.dynamic_period));
  FLIM_REQUIRE(
      spec.stuck_at_one_fraction >= 0.0 && spec.stuck_at_one_fraction <= 1.0,
      "stuck-at-1 fraction must be in [0, 1], got " +
          std::to_string(spec.stuck_at_one_fraction));
  FLIM_REQUIRE(spec.cluster_count >= 0,
               "cluster count must be >= 0, got " +
                   std::to_string(spec.cluster_count) +
                   " (use 0 to derive one center per ~24 faults)");
  FLIM_REQUIRE(spec.cluster_radius > 0.0,
               "cluster radius must be positive, got " +
                   std::to_string(spec.cluster_radius) +
                   " (cells of Gaussian scatter around each center)");
  if (spec.distribution == FaultDistribution::kClustered) {
    FLIM_REQUIRE(spec.injection_rate > 0.0,
                 "clustered distribution with a zero injection rate places "
                 "no clustered faults; set a positive rate or use the "
                 "uniform distribution");
  }
}

}  // namespace flim::fault

#include "fault/fault_generator.hpp"

#include <utility>

#include "core/check.hpp"
#include "fault/fault_registry.hpp"

namespace flim::fault {

FaultGenerator::FaultGenerator(lim::CrossbarGeometry grid) : grid_(grid) {
  FLIM_REQUIRE(grid_.rows > 0 && grid_.cols > 0,
               "generator grid must be positive");
}

FaultMask FaultGenerator::generate(const FaultSpec& spec,
                                   core::Rng& rng) const {
  validate(spec);
  // The legacy single-kind path is the one-model stack of the matching
  // registered model; realization (and the RNG draw order) lives there.
  const FaultStack stack = stack_from_spec(spec);
  RealizeContext ctx;
  ctx.grid = grid_;
  ctx.distribution = spec.distribution;
  ctx.cluster_count = spec.cluster_count;
  ctx.cluster_radius = spec.cluster_radius;
  std::vector<RealizedFault> components = stack.realize(ctx, rng);
  return std::move(components.front().mask);
}

}  // namespace flim::fault

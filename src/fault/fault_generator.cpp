#include "fault/fault_generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.hpp"

namespace flim::fault {

namespace {

/// Scatters `marked` distinct slots around random cluster centers: each
/// site is a discrete Gaussian offset from a uniformly chosen center.
/// Slots falling off-grid or onto an occupied slot are redrawn; if the
/// clusters saturate (tiny radius, many faults) the remainder falls back
/// to uniform placement so the exact count is always honored.
std::vector<std::int64_t> place_clustered(const lim::CrossbarGeometry& grid,
                                          std::int64_t marked,
                                          const FaultSpec& spec,
                                          core::Rng& rng) {
  const std::int64_t slots = grid.num_cells();
  const int centers = spec.cluster_count > 0
                          ? spec.cluster_count
                          : std::max<int>(1, static_cast<int>(marked / 24));
  std::vector<std::int64_t> center_slots;
  center_slots.reserve(static_cast<std::size_t>(centers));
  for (int i = 0; i < centers; ++i) {
    center_slots.push_back(static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(slots))));
  }

  std::vector<std::uint8_t> occupied(static_cast<std::size_t>(slots), 0);
  std::vector<std::int64_t> placed;
  placed.reserve(static_cast<std::size_t>(marked));
  std::int64_t attempts_left = 64 * marked + 64;
  while (static_cast<std::int64_t>(placed.size()) < marked &&
         attempts_left-- > 0) {
    const std::int64_t center = center_slots[static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(centers)))];
    const std::int64_t r =
        center / grid.cols +
        static_cast<std::int64_t>(std::llround(
            rng.normal(0.0, spec.cluster_radius)));
    const std::int64_t c =
        center % grid.cols +
        static_cast<std::int64_t>(std::llround(
            rng.normal(0.0, spec.cluster_radius)));
    if (r < 0 || r >= grid.rows || c < 0 || c >= grid.cols) continue;
    const std::int64_t slot = r * grid.cols + c;
    if (occupied[static_cast<std::size_t>(slot)] != 0) continue;
    occupied[static_cast<std::size_t>(slot)] = 1;
    placed.push_back(slot);
  }
  // Saturated clusters: fill the remainder uniformly (exact-count contract).
  while (static_cast<std::int64_t>(placed.size()) < marked) {
    const auto slot = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(slots)));
    if (occupied[static_cast<std::size_t>(slot)] != 0) continue;
    occupied[static_cast<std::size_t>(slot)] = 1;
    placed.push_back(slot);
  }
  return placed;
}

}  // namespace

FaultGenerator::FaultGenerator(lim::CrossbarGeometry grid) : grid_(grid) {
  FLIM_REQUIRE(grid_.rows > 0 && grid_.cols > 0,
               "generator grid must be positive");
}

FaultMask FaultGenerator::generate(const FaultSpec& spec,
                                   core::Rng& rng) const {
  validate(spec);
  FaultMask mask(grid_.rows, grid_.cols);
  const std::int64_t slots = mask.num_slots();

  // "The injection rate specifies the number of elements within the array
  // set to 1": exact count, not per-slot Bernoulli, so the realized rate
  // matches the requested one (up to rounding).
  const auto marked = static_cast<std::int64_t>(
      std::llround(spec.injection_rate * static_cast<double>(slots)));

  std::vector<std::int64_t> sites;
  if (spec.distribution == FaultDistribution::kClustered) {
    sites = place_clustered(grid_, marked, spec, rng);
  } else {
    for (const auto slot : rng.sample_without_replacement(
             static_cast<std::uint64_t>(slots),
             static_cast<std::uint64_t>(marked))) {
      sites.push_back(static_cast<std::int64_t>(slot));
    }
  }

  switch (spec.kind) {
    case FaultKind::kBitFlip:
    case FaultKind::kDynamic: {
      for (const auto slot : sites) {
        mask.set_flip(slot, true);
      }
      break;
    }
    case FaultKind::kStuckAt: {
      for (const auto slot : sites) {
        if (rng.bernoulli(spec.stuck_at_one_fraction)) {
          mask.set_sa1(slot, true);
        } else {
          mask.set_sa0(slot, true);
        }
      }
      break;
    }
  }

  // Whole faulty rows / columns (part of the bit-flip mask in the paper:
  // "entire rows/columns may also be faulty; thus, these rows/columns are
  // set to 1").
  FLIM_REQUIRE(spec.faulty_rows <= grid_.rows,
               "more faulty rows than grid rows");
  FLIM_REQUIRE(spec.faulty_cols <= grid_.cols,
               "more faulty columns than grid columns");
  for (const auto r : rng.sample_without_replacement(
           static_cast<std::uint64_t>(grid_.rows),
           static_cast<std::uint64_t>(spec.faulty_rows))) {
    mask.mark_row_flip(static_cast<std::int64_t>(r));
  }
  for (const auto c : rng.sample_without_replacement(
           static_cast<std::uint64_t>(grid_.cols),
           static_cast<std::uint64_t>(spec.faulty_cols))) {
    mask.mark_col_flip(static_cast<std::int64_t>(c));
  }
  return mask;
}

}  // namespace flim::fault

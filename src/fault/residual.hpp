// Mask-level residual application of per-word error correction.
//
// An ECC scrub walks the stored cells word by word and repairs every word
// whose fault count is within the configured code's correction radius; what
// remains is the *residual* fault mask the workload actually sees. The word
// walk itself is codec-agnostic -- only the correction radius differs
// between a SEC-DED scrub (1 repairable fault per word) and, say, a BCH
// t=2 scrub -- so it lives here in fault/, below reliability/: the codec
// subsystem configures it via ResidualOptions::correct_per_word and the
// legacy reliability::apply_secded_scrub delegates to it with radius 1
// (bit-identically).
#pragma once

#include <cstdint>

#include "fault/fault_mask.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::fault {

/// Word organization and correction radius of one scrub pass.
struct ResidualOptions {
  /// Data cells per ECC word.
  int word_bits = 64;
  /// Bit interleaving degree: adjacent columns of one row belong to
  /// different ECC words, so a physical burst spreads over several words.
  int interleave = 1;
  /// Faults per word the code repairs (1 = SEC-DED, t for BCH).
  int correct_per_word = 1;
};

/// Tallies of one residual pass. Field-compatible with the legacy
/// reliability::EccScrubStats (which wraps this).
struct ResidualStats {
  std::int64_t words = 0;
  std::int64_t clean_words = 0;
  std::int64_t corrected_words = 0;
  std::int64_t uncorrectable_words = 0;
  std::int64_t faulty_bits_before = 0;
  std::int64_t faulty_bits_after = 0;
};

/// Scrubs `mask`: cells of each row are split into interleave lanes,
/// chunked into words of word_bits cells (the final word may be short), and
/// every word with 1..correct_per_word faulty cells is cleared on all
/// planes. Words with more faults keep them. The parity cells themselves
/// are modeled as fault-free spare columns (the optimistic textbook
/// assumption; docs/ecc.md discusses it and the exhaustive enumeration
/// measures the codecs without it).
FaultMask apply_word_residual(const FaultMask& mask,
                              const ResidualOptions& options,
                              ResidualStats* stats = nullptr);

/// Residual application over one fault-vector entry, handling both entry
/// representations: a legacy single-mask entry scrubs `entry.mask`
/// directly; a composable entry scrubs the *physical* word -- the union of
/// every component's planes, so a word holding faults from two components
/// is uncorrectable even when each component alone looks in-radius -- and
/// then clears per-component bits only at the slots the combined scrub
/// repaired.
void apply_entry_residual(FaultVectorEntry& entry,
                          const ResidualOptions& options,
                          ResidualStats* stats = nullptr);

}  // namespace flim::fault

#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace flim::fault {

double ModelParams::get(const std::string& name, double fallback) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return value;
  }
  return fallback;
}

bool ModelParams::has(const std::string& name) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return true;
  }
  return false;
}

double realized_param(const RealizedFault& fault, const std::string& name,
                      double fallback) {
  for (const auto& [key, value] : fault.params) {
    if (key == name) return value;
  }
  return fallback;
}

ModelParams make_params(std::vector<std::pair<std::string, double>> values) {
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < values.size(); ++i) {
    FLIM_REQUIRE(values[i - 1].first != values[i].first,
                 "duplicate fault-model parameter: " + values[i].first);
  }
  return ModelParams(std::move(values));
}

void FaultModel::validate(const ModelParams& params) const {
  const ModelInfo& meta = info();
  bool declares_clustered = false;
  bool declares_rate = false;
  for (const ParamInfo& p : meta.params) {
    if (p.name == "clustered") declares_clustered = true;
    if (p.name == "rate") declares_rate = true;
  }
  // Every placement-based model (declares both `clustered` and `rate`)
  // gets the clustered-needs-sites rule automatically -- registered
  // third-party models included.
  if (declares_clustered && declares_rate &&
      params.get("clustered", 0.0) != 0.0 && params.get("rate", 0.0) == 0.0) {
    FLIM_REQUIRE(false, "fault model '" + meta.name +
                            "': clustered placement with rate=0 places no "
                            "faults; set rate > 0 or drop clustered=1");
  }
  for (const auto& [key, value] : params.values()) {
    const ParamInfo* declared = nullptr;
    for (const ParamInfo& p : meta.params) {
      if (p.name == key) declared = &p;
    }
    if (declared == nullptr) {
      std::string known;
      for (const ParamInfo& p : meta.params) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      FLIM_REQUIRE(false, "fault model '" + meta.name +
                              "' has no parameter '" + key + "' (known: " +
                              known + ")");
    }
    FLIM_REQUIRE(std::isfinite(value) && value >= declared->min_value &&
                     value <= declared->max_value,
                 "fault model '" + meta.name + "': parameter '" + key +
                     "' out of range (" + std::to_string(value) + ")");
    FLIM_REQUIRE(!declared->integer || std::floor(value) == value,
                 "fault model '" + meta.name + "': parameter '" + key +
                     "' must be a whole number (" + std::to_string(value) +
                     ")");
  }
}

bool FaultModel::active(const RealizedFault& fault,
                        std::int64_t execution) const {
  return execution >= fault.first_active;
}

void FaultModel::apply_output_element(const RealizedFault& fault,
                                      tensor::IntTensor& feature,
                                      std::int64_t row_begin,
                                      std::int64_t row_end,
                                      std::int64_t /*execution*/,
                                      std::int32_t full_scale) const {
  const std::int64_t channels = feature.shape()[1];
  const std::int64_t slots = fault.mask.num_slots();
  std::int64_t op = 0;  // op index within this image, position-major
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    std::int32_t* row = feature.data() + r * channels;
    for (std::int64_t c = 0; c < channels; ++c, ++op) {
      const std::int64_t slot = op % slots;
      std::int32_t v = row[c];
      if (fault.mask.flip(slot)) v = -v;
      // Stuck-at dominates (a stuck op cannot toggle) and pins the element
      // to the full-scale ±K accumulator value.
      if (fault.mask.sa0(slot)) v = -full_scale;
      if (fault.mask.sa1(slot)) v = +full_scale;
      row[c] = v;
    }
  }
}

void FaultModel::fold_term_planes(const RealizedFault& fault, TermMasks& masks,
                                  std::int64_t out_channels,
                                  std::int64_t k) const {
  const std::int64_t slots = fault.mask.num_slots();
  for (std::int64_t ch = 0; ch < out_channels; ++ch) {
    for (std::int64_t t = 0; t < k; ++t) {
      const std::int64_t slot = (ch * k + t) % slots;
      // Two stacked flip mechanisms on one term cancel (XOR); stuck-at
      // planes accumulate (OR).
      if (fault.mask.flip(slot)) {
        masks.flip.set_bit(ch, t, masks.flip.get(ch, t) <= 0);
      }
      if (fault.mask.sa0(slot)) masks.sa0.set_bit(ch, t, true);
      if (fault.mask.sa1(slot)) masks.sa1.set_bit(ch, t, true);
    }
  }
}

namespace {

/// Scatters `marked` distinct slots around random cluster centers: each
/// site is a discrete Gaussian offset from a uniformly chosen center.
/// Slots falling off-grid or onto an occupied slot are redrawn; if the
/// clusters saturate (tiny radius, many faults) the remainder falls back
/// to uniform placement so the exact count is always honored. RNG draw
/// order is identical to the pre-registry FaultGenerator.
std::vector<std::int64_t> place_clustered(const lim::CrossbarGeometry& grid,
                                          std::int64_t marked,
                                          int cluster_count,
                                          double cluster_radius,
                                          core::Rng& rng) {
  const std::int64_t slots = grid.num_cells();
  const int centers = cluster_count > 0
                          ? cluster_count
                          : std::max<int>(1, static_cast<int>(marked / 24));
  std::vector<std::int64_t> center_slots;
  center_slots.reserve(static_cast<std::size_t>(centers));
  for (int i = 0; i < centers; ++i) {
    center_slots.push_back(static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(slots))));
  }

  std::vector<std::uint8_t> occupied(static_cast<std::size_t>(slots), 0);
  std::vector<std::int64_t> placed;
  placed.reserve(static_cast<std::size_t>(marked));
  std::int64_t attempts_left = 64 * marked + 64;
  while (static_cast<std::int64_t>(placed.size()) < marked &&
         attempts_left-- > 0) {
    const std::int64_t center = center_slots[static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(centers)))];
    const std::int64_t r =
        center / grid.cols +
        static_cast<std::int64_t>(std::llround(rng.normal(0.0, cluster_radius)));
    const std::int64_t c =
        center % grid.cols +
        static_cast<std::int64_t>(std::llround(rng.normal(0.0, cluster_radius)));
    if (r < 0 || r >= grid.rows || c < 0 || c >= grid.cols) continue;
    const std::int64_t slot = r * grid.cols + c;
    if (occupied[static_cast<std::size_t>(slot)] != 0) continue;
    occupied[static_cast<std::size_t>(slot)] = 1;
    placed.push_back(slot);
  }
  // Saturated clusters: fill the remainder uniformly (exact-count contract).
  while (static_cast<std::int64_t>(placed.size()) < marked) {
    const auto slot = static_cast<std::int64_t>(
        rng.uniform(static_cast<std::uint64_t>(slots)));
    if (occupied[static_cast<std::size_t>(slot)] != 0) continue;
    occupied[static_cast<std::size_t>(slot)] = 1;
    placed.push_back(slot);
  }
  return placed;
}

}  // namespace

std::vector<std::int64_t> draw_sites(const ModelParams& params,
                                     const RealizeContext& ctx,
                                     std::int64_t marked, core::Rng& rng) {
  const std::int64_t slots = ctx.grid.num_cells();
  FLIM_REQUIRE(marked >= 0 && marked <= slots,
               "cannot place " + std::to_string(marked) + " fault sites on " +
                   std::to_string(slots) + " grid slots");
  const bool clustered =
      params.has("clustered")
          ? params.get("clustered", 0.0) != 0.0
          : ctx.distribution == FaultDistribution::kClustered;
  if (clustered) {
    const int clusters = static_cast<int>(
        params.get("clusters", static_cast<double>(ctx.cluster_count)));
    const double radius = params.get("radius", ctx.cluster_radius);
    FLIM_REQUIRE(clusters >= 0, "cluster count must be >= 0");
    FLIM_REQUIRE(radius > 0.0, "cluster radius must be positive");
    return place_clustered(ctx.grid, marked, clusters, radius, rng);
  }
  std::vector<std::int64_t> sites;
  sites.reserve(static_cast<std::size_t>(marked));
  for (const auto slot : rng.sample_without_replacement(
           static_cast<std::uint64_t>(slots),
           static_cast<std::uint64_t>(marked))) {
    sites.push_back(static_cast<std::int64_t>(slot));
  }
  return sites;
}

}  // namespace flim::fault

// String-keyed fault-model registry and the fault-expression language.
//
// Every FaultModel registers under a unique name; campaigns select and
// compose models with declarative expressions:
//
//   expr       := stack-term ('+' stack-term)*
//   stack-term := name | name '(' [param {',' param}] ')'
//   param      := key '=' number
//
// e.g. "bitflip(rate=1e-3)" or "stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)".
// A parsed expression is a FaultStack: an ordered list of configured models
// applied per layer in stack order (later models see earlier models'
// corruption). canonical() renders the stack with sorted parameters and
// round-trip number formatting, which is the form store fingerprints hash --
// so two spellings of the same stack resume each other's run files.
//
// The registry ships with the paper's three kinds (bitflip, stuckat,
// dynamic) plus the extended scenario space the old FaultKind enum could
// not express (readdisturb, drift, coupling); embedders may add their own
// models at startup via FaultRegistry::add.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::fault {

/// Process-wide model registry. add() is meant for startup wiring (tests,
/// embedders), but the slot table is mutex-guarded so a late registration
/// cannot race the lookups running campaign workers issue; returned
/// FaultModel pointers stay valid for the process lifetime (models are
/// never removed).
class FaultRegistry {
 public:
  /// The singleton, with the built-in models pre-registered.
  static FaultRegistry& instance();

  /// Registers a model; rejects duplicate names.
  void add(std::unique_ptr<FaultModel> model);

  /// Model by name; nullptr when unknown.
  const FaultModel* find(const std::string& name) const;

  /// Model by name; throws std::invalid_argument naming the known models
  /// when unknown.
  const FaultModel& get(const std::string& name) const;

  /// All registered models, sorted by name.
  std::vector<const FaultModel*> models() const;

 private:
  FaultRegistry();
  struct Slot {
    std::string name;
    std::unique_ptr<FaultModel> model;
  };
  /// Unlocked lookup shared by find() and get() (get() holds the lock
  /// across lookup and error-message assembly).
  const FaultModel* find_locked(const std::string& name) const
      FLIM_REQUIRES(mutex_);

  mutable core::Mutex mutex_;
  std::vector<Slot> slots_ FLIM_GUARDED_BY(mutex_);  // name-sorted
};

/// One configured entry of a fault stack.
struct FaultStackItem {
  /// Registry-owned model (never null).
  const FaultModel* model = nullptr;
  /// Resolved (validated) parameters.
  ModelParams params;
};

/// An ordered composition of configured fault models, applied per layer in
/// stack order.
class FaultStack {
 public:
  FaultStack() = default;
  explicit FaultStack(std::vector<FaultStackItem> items)
      : items_(std::move(items)) {}

  const std::vector<FaultStackItem>& items() const { return items_; }
  bool empty() const { return items_.empty(); }

  /// Canonical expression: model names in stack order, parameters sorted,
  /// numbers in round-trip format. This is the fingerprint-stable form.
  std::string canonical() const;

  /// Validates the stack against an injection granularity, throwing
  /// std::invalid_argument with the offending model when a model does not
  /// support it.
  void validate_granularity(FaultGranularity granularity) const;

  /// Validates that the device (X-Fault-style) backend can realize every
  /// model of the stack.
  void validate_device_backend() const;

  /// Realizes the stack for one layer: every component drawn from `rng` in
  /// stack order.
  std::vector<RealizedFault> realize(const RealizeContext& ctx,
                                     core::Rng& rng) const;

  /// Realizes a full fault-vector entry for one layer.
  FaultVectorEntry realize_entry(const std::string& layer_name,
                                 FaultGranularity granularity,
                                 const RealizeContext& ctx,
                                 core::Rng& rng) const;

 private:
  std::vector<FaultStackItem> items_;
};

/// Parses a fault expression against the registry; throws
/// std::invalid_argument with the offending token on malformed input,
/// unknown models, or invalid parameters.
FaultStack parse_fault_expr(const std::string& expr);

/// parse + canonical in one step (validates `expr` as a side effect).
std::string canonical_fault_expr(const std::string& expr);

/// The registered model name of a legacy FaultKind.
std::string model_name_for(FaultKind kind);

/// Converts a legacy single-kind FaultSpec into the equivalent one-model
/// stack ("bitflip(rate=...,rows=...,cols=...)" etc.). The realized masks
/// and runtime behaviour are bit-identical to the pre-registry generator
/// and injector.
FaultStack stack_from_spec(const FaultSpec& spec);

}  // namespace flim::fault

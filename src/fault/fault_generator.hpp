// Offline fault-mask synthesis (the paper's "Fault Generator").
//
// Mask generation is an offline process: masks are drawn once per
// (spec, seed) and reused over an entire campaign, which is precisely why
// FLIM is fast -- "the expensive mapping and distribution of faults are
// performed once and reused over the whole simulation".
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "fault/fault_mask.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"

namespace flim::fault {

/// Draws fault masks over a virtual crossbar grid.
class FaultGenerator {
 public:
  /// Masks are generated for `grid.rows x grid.cols` XNOR-op slots.
  explicit FaultGenerator(lim::CrossbarGeometry grid);

  const lim::CrossbarGeometry& grid() const { return grid_; }

  /// Realizes one mask for `spec` with randomness from `rng`. Since the
  /// registry redesign this is a thin wrapper over the registered model
  /// matching spec.kind (fault_registry.hpp) -- masks are bit-identical to
  /// the pre-registry generator for the same seed:
  /// - kBitFlip / kDynamic: injection_rate * slots random flips, plus the
  ///   requested whole faulty rows/columns;
  /// - kStuckAt: injection_rate * slots random stuck cells, each stuck-at-1
  ///   with probability spec.stuck_at_one_fraction.
  /// Placement follows spec.distribution: uniform (the paper's model) or
  /// clustered around spec.cluster_count Gaussian defect clusters; the
  /// marked-slot count is identical either way.
  FaultMask generate(const FaultSpec& spec, core::Rng& rng) const;

 private:
  lim::CrossbarGeometry grid_;
};

}  // namespace flim::fault

#include "reliability/monitor.hpp"

#include "core/check.hpp"
#include "core/rng.hpp"

namespace flim::reliability {

OnlineMonitor::OnlineMonitor(MonitorConfig config) : config_(config) {
  FLIM_REQUIRE(config_.grid.rows > 0 && config_.grid.cols > 0,
               "monitor grid must have positive dimensions");
  FLIM_REQUIRE(config_.test_period > 0, "test_period must be positive");
  FLIM_REQUIRE(config_.slots_per_round > 0,
               "slots_per_round must be positive");
}

double OnlineMonitor::overhead_ops_per_inference() const {
  return 2.0 * config_.slots_per_round / config_.test_period;
}

DetectionOutcome OnlineMonitor::run_until_detection(
    const fault::FaultMask& mask, std::int64_t max_inferences) const {
  FLIM_REQUIRE(mask.rows() == config_.grid.rows &&
                   mask.cols() == config_.grid.cols,
               "fault mask geometry must match the monitored grid");
  FLIM_REQUIRE(max_inferences > 0, "max_inferences must be positive");

  const std::int64_t slots = config_.grid.num_cells();
  const auto faulty = [&](std::int64_t slot) {
    return mask.flip(slot) || mask.sa0(slot) || mask.sa1(slot);
  };

  core::Rng rng(config_.seed);
  // Round-robin starts at a random offset so campaign repetitions average
  // over fault-position/start-phase alignment like the paper's reseeding.
  std::int64_t cursor =
      static_cast<std::int64_t>(rng.uniform(
          static_cast<std::uint64_t>(slots)));

  DetectionOutcome outcome;
  for (std::int64_t inf = config_.test_period; inf <= max_inferences;
       inf += config_.test_period) {
    outcome.inferences_elapsed = inf;
    for (int probe = 0; probe < config_.slots_per_round; ++probe) {
      std::int64_t slot = 0;
      switch (config_.policy) {
        case CanaryPolicy::kRoundRobin:
          slot = cursor;
          cursor = (cursor + 1) % slots;
          break;
        case CanaryPolicy::kRandom:
          slot = static_cast<std::int64_t>(
              rng.uniform(static_cast<std::uint64_t>(slots)));
          break;
      }
      outcome.canary_ops_spent += 2;  // match + mismatch operand patterns
      if (faulty(slot)) {
        outcome.detected = true;
        outcome.detecting_slot = slot;
        return outcome;
      }
    }
  }
  outcome.inferences_elapsed = max_inferences;
  return outcome;
}

}  // namespace flim::reliability

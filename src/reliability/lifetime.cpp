#include "reliability/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "bnn/flim_engine.hpp"
#include "bnn/redundancy.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::reliability {

namespace {

/// Accumulating per-layer, per-replica fault state over one virtual grid.
struct GridState {
  // 0 = healthy, 1 = stuck-at-0, 2 = stuck-at-1 (permanent).
  std::vector<std::uint8_t> stuck;
  // Transient flip slots awaiting the next scrub.
  std::vector<std::uint8_t> flip;

  explicit GridState(std::int64_t slots)
      : stuck(static_cast<std::size_t>(slots), 0),
        flip(static_cast<std::size_t>(slots), 0) {}

  std::int64_t count_stuck() const {
    std::int64_t n = 0;
    for (const auto s : stuck) n += s != 0;
    return n;
  }
  std::int64_t count_flips() const {
    std::int64_t n = 0;
    for (const auto f : flip) n += f != 0;
    return n;
  }
};

/// Weibull CDF F(t) = 1 - exp(-(t/eta)^beta).
double weibull_cdf(double t, const WearoutModel& w) {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / w.scale_hours, w.shape));
}

/// Builds the mask visible to computation: residual stuck cells (after
/// optional ECC remapping) plus the current transient flips.
fault::FaultMask effective_mask(const GridState& state,
                                const lim::CrossbarGeometry& grid,
                                const MitigationStack& mitigation,
                                std::int64_t* stuck_effective) {
  fault::FaultMask mask(grid.rows, grid.cols);
  for (std::int64_t s = 0; s < grid.num_cells(); ++s) {
    const auto st = state.stuck[static_cast<std::size_t>(s)];
    if (st == 1) mask.set_sa0(s, true);
    if (st == 2) mask.set_sa1(s, true);
  }
  if (mitigation.ecc) {
    mask = apply_secded_scrub(mask, mitigation.ecc_options);
  }
  if (stuck_effective != nullptr) {
    *stuck_effective = mask.count_sa0() + mask.count_sa1();
  }
  for (std::int64_t s = 0; s < grid.num_cells(); ++s) {
    if (state.flip[static_cast<std::size_t>(s)] != 0) {
      mask.set_flip(s, true);
    }
  }
  return mask;
}

}  // namespace

std::string MitigationStack::name() const {
  std::string label;
  if (scrub) label = "scrub";
  if (ecc) label += label.empty() ? "ECC" : "+ECC";
  if (modular_redundancy > 1) {
    label += label.empty() ? "" : "+";
    label += std::to_string(modular_redundancy) + "MR";
  }
  return label.empty() ? "none" : label;
}

LifetimeSimulator::LifetimeSimulator(LifetimeConfig config)
    : config_(config) {
  FLIM_REQUIRE(config_.grid.rows > 0 && config_.grid.cols > 0,
               "lifetime grid must have positive dimensions");
  FLIM_REQUIRE(config_.step_hours > 0.0, "step_hours must be positive");
  FLIM_REQUIRE(config_.horizon_hours >= config_.step_hours,
               "horizon must cover at least one step");
  FLIM_REQUIRE(config_.wearout.scale_hours > 0.0 &&
                   config_.wearout.shape > 0.0,
               "Weibull parameters must be positive");
  FLIM_REQUIRE(config_.transients.upsets_per_grid_hour >= 0.0,
               "upset rate must be non-negative");
  FLIM_REQUIRE(config_.stuck_at_one_fraction >= 0.0 &&
                   config_.stuck_at_one_fraction <= 1.0,
               "stuck_at_one_fraction must be a probability");
}

LifetimeCurve LifetimeSimulator::simulate(
    const bnn::Model& model, const data::Batch& batch,
    const std::vector<bnn::LayerWorkload>& layers,
    const MitigationStack& mitigation) const {
  FLIM_REQUIRE(!layers.empty(), "need at least one layer to fault");
  FLIM_REQUIRE(mitigation.modular_redundancy >= 1 &&
                   mitigation.modular_redundancy % 2 == 1,
               "modular redundancy must be an odd count >= 1");
  FLIM_REQUIRE(!mitigation.ecc || mitigation.scrub,
               "ECC remapping requires scrubbing to be enabled");

  const std::int64_t slots = config_.grid.num_cells();
  const int replicas = mitigation.modular_redundancy;

  // state[replica][layer]: replicas age independently (independent fault
  // distributions are what make majority voting effective).
  std::vector<std::vector<GridState>> state(
      static_cast<std::size_t>(replicas));
  for (auto& rep : state) {
    rep.assign(layers.size(), GridState(slots));
  }

  core::Rng rng(config_.seed);
  LifetimeCurve curve;
  double last_scrub = 0.0;

  for (double t = config_.step_hours; t <= config_.horizon_hours + 1e-9;
       t += config_.step_hours) {
    const double t_prev = t - config_.step_hours;
    // Conditional per-cell wear-out probability for this step.
    const double f_prev = weibull_cdf(t_prev, config_.wearout);
    const double f_now = weibull_cdf(t, config_.wearout);
    const double hazard =
        f_prev < 1.0 ? (f_now - f_prev) / (1.0 - f_prev) : 1.0;

    for (auto& rep : state) {
      for (auto& grid : rep) {
        for (std::int64_t s = 0; s < slots; ++s) {
          auto& cell = grid.stuck[static_cast<std::size_t>(s)];
          if (cell == 0 && rng.bernoulli(hazard)) {
            cell = rng.bernoulli(config_.stuck_at_one_fraction) ? 2 : 1;
          }
        }
        const std::uint64_t upsets = rng.poisson(
            config_.transients.upsets_per_grid_hour * config_.step_hours);
        for (std::uint64_t u = 0; u < upsets; ++u) {
          const auto s = rng.uniform(static_cast<std::uint64_t>(slots));
          grid.flip[static_cast<std::size_t>(s)] = 1;
        }
      }
    }

    // Scrubbing: rewriting the arrays clears transient state corruption.
    if (mitigation.scrub &&
        t - last_scrub >= mitigation.scrub_period_hours - 1e-9) {
      last_scrub = t;
      for (auto& rep : state) {
        for (auto& grid : rep) {
          std::fill(grid.flip.begin(), grid.flip.end(),
                    static_cast<std::uint8_t>(0));
        }
      }
    }

    // Checkpoint: assemble engines and evaluate.
    LifetimePoint point;
    point.hours = t;
    std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> engines;
    engines.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
      auto engine = std::make_unique<bnn::FlimEngine>();
      for (std::size_t li = 0; li < layers.size(); ++li) {
        std::int64_t stuck_effective = 0;
        fault::FaultVectorEntry entry;
        entry.layer_name = layers[li].layer_name;
        entry.kind = fault::FaultKind::kStuckAt;
        entry.mask = effective_mask(state[static_cast<std::size_t>(r)][li],
                                    config_.grid, mitigation,
                                    &stuck_effective);
        if (r == 0) {
          point.transient_flips += entry.mask.count_flip();
          point.stuck_cells_raw +=
              state[static_cast<std::size_t>(r)][li].count_stuck();
          point.stuck_cells_effective += stuck_effective;
        }
        engine->set_layer_fault(std::move(entry));
      }
      engines.push_back(std::move(engine));
    }

    if (replicas == 1) {
      point.accuracy = model.evaluate(batch, *engines.front());
    } else {
      bnn::MedianVoteEngine voter(std::move(engines));
      point.accuracy = model.evaluate(batch, voter);
    }
    curve.points.push_back(point);
  }
  return curve;
}

std::optional<double> LifetimeCurve::hours_to_threshold(
    double threshold) const {
  double prev_hours = 0.0;
  double prev_acc = points.empty() ? 0.0 : points.front().accuracy;
  for (const LifetimePoint& p : points) {
    if (p.accuracy < threshold) {
      if (p.hours == prev_hours || prev_acc <= p.accuracy) return p.hours;
      // Linear interpolation between the bracketing checkpoints.
      const double frac = (prev_acc - threshold) / (prev_acc - p.accuracy);
      return prev_hours + frac * (p.hours - prev_hours);
    }
    prev_hours = p.hours;
    prev_acc = p.accuracy;
  }
  return std::nullopt;
}

}  // namespace flim::reliability

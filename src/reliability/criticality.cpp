#include "reliability/criticality.hpp"

#include <algorithm>

#include "bnn/flim_engine.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"

namespace flim::reliability {

namespace {

/// Marks the given columns faulty: stuck cells of per-seed polarity for
/// kStuckAt, flips otherwise (matching FaultGenerator's plane conventions).
fault::FaultMask columns_mask(const lim::CrossbarGeometry& grid,
                              const std::vector<std::int64_t>& columns,
                              fault::FaultKind kind, core::Rng& rng) {
  fault::FaultMask mask(grid.rows, grid.cols);
  for (const std::int64_t c : columns) {
    for (std::int64_t r = 0; r < grid.rows; ++r) {
      const std::int64_t slot = r * grid.cols + c;
      if (kind == fault::FaultKind::kStuckAt) {
        if (rng.bernoulli(0.5)) {
          mask.set_sa1(slot, true);
        } else {
          mask.set_sa0(slot, true);
        }
      } else {
        mask.set_flip(slot, true);
      }
    }
  }
  return mask;
}

double evaluate_columns(const bnn::Model& model, const data::Batch& batch,
                        const std::string& layer_name,
                        const std::vector<std::int64_t>& columns,
                        const CriticalityConfig& config,
                        std::uint64_t stream) {
  core::Rng rng = core::Rng(config.master_seed).derive(stream);
  double total = 0.0;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    bnn::FlimEngine engine;
    fault::FaultVectorEntry entry;
    entry.layer_name = layer_name;
    entry.kind = config.kind;
    entry.mask = columns_mask(config.grid, columns, config.kind, rng);
    engine.set_layer_fault(std::move(entry));
    total += model.evaluate(batch, engine);
  }
  return total / config.repetitions;
}

}  // namespace

CriticalityReport rank_columns(const bnn::Model& model,
                               const data::Batch& batch,
                               const std::string& layer_name,
                               const CriticalityConfig& config) {
  FLIM_REQUIRE(config.repetitions > 0, "repetitions must be positive");
  CriticalityReport report;
  report.layer_name = layer_name;

  bnn::ReferenceEngine clean;
  report.clean_accuracy = model.evaluate(batch, clean);

  for (std::int64_t c = 0; c < config.grid.cols; ++c) {
    ColumnCriticality entry;
    entry.column = c;
    entry.accuracy = evaluate_columns(model, batch, layer_name, {c}, config,
                                      static_cast<std::uint64_t>(c));
    entry.drop = report.clean_accuracy - entry.accuracy;
    report.columns.push_back(entry);
  }
  std::stable_sort(report.columns.begin(), report.columns.end(),
                   [](const ColumnCriticality& a, const ColumnCriticality& b) {
                     return a.drop > b.drop;
                   });
  return report;
}

HardeningOutcome evaluate_selective_hardening(
    const bnn::Model& model, const data::Batch& batch,
    const std::string& layer_name, const CriticalityReport& report,
    int hardening_budget, const CriticalityConfig& config) {
  FLIM_REQUIRE(hardening_budget > 0, "hardening budget must be positive");
  FLIM_REQUIRE(2 * hardening_budget <= config.grid.cols,
               "scenario needs 2*budget columns in the grid");

  // Criticality order of every column (most critical first).
  std::vector<std::int64_t> ranked;
  ranked.reserve(report.columns.size());
  for (const ColumnCriticality& c : report.columns) ranked.push_back(c.column);

  core::Rng scenario_rng = core::Rng(config.master_seed).derive(0x5eed);
  HardeningOutcome outcome;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    // 2k distinct columns fail.
    const auto failed_idx = scenario_rng.sample_without_replacement(
        static_cast<std::uint64_t>(config.grid.cols),
        static_cast<std::uint64_t>(2 * hardening_budget));
    std::vector<std::int64_t> failed(failed_idx.begin(), failed_idx.end());

    // Guided repair: keep the k failed columns that rank *least* critical
    // faulty (the k most critical ones get the spares).
    std::vector<std::int64_t> guided_left = failed;
    std::sort(guided_left.begin(), guided_left.end(),
              [&](std::int64_t a, std::int64_t b) {
                const auto pos = [&](std::int64_t col) {
                  return std::find(ranked.begin(), ranked.end(), col) -
                         ranked.begin();
                };
                return pos(a) > pos(b);  // least critical first
              });
    guided_left.resize(static_cast<std::size_t>(hardening_budget));

    // Random repair: an arbitrary half survives.
    std::vector<std::int64_t> random_left = failed;
    for (std::size_t i = 0; i < random_left.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  scenario_rng.uniform(random_left.size() - i));
      std::swap(random_left[i], random_left[j]);
    }
    random_left.resize(static_cast<std::size_t>(hardening_budget));

    const std::uint64_t stream = 0x1000u + static_cast<std::uint64_t>(rep);
    outcome.faulty_accuracy +=
        evaluate_columns(model, batch, layer_name, failed, config, stream);
    outcome.random_hardening += evaluate_columns(model, batch, layer_name,
                                                 random_left, config, stream);
    outcome.guided_hardening += evaluate_columns(model, batch, layer_name,
                                                 guided_left, config, stream);
  }
  outcome.faulty_accuracy /= config.repetitions;
  outcome.random_hardening /= config.repetitions;
  outcome.guided_hardening /= config.repetitions;
  return outcome;
}

}  // namespace flim::reliability

// In-field lifetime simulation of a LIM-accelerated BNN.
//
// The paper frames its fault taxonomy in lifetime terms: environmental
// variations cause transient bit-flips, temporal variations cause
// degradation, and "towards the end of their life cycle, memories encounter
// stuck-at faults". This module turns that narrative into a simulator:
// transient upsets arrive as a Poisson process, cells wear out permanently
// under a Weibull hazard, and the accumulated per-layer fault masks are
// periodically evaluated on the real model via the FLIM engine -- with or
// without a mitigation stack (scrubbing, SEC-DED ECC remapping, N-modular
// redundancy), quantifying how much each strategy extends useful life.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bnn/model.hpp"
#include "data/dataset.hpp"
#include "lim/mapper.hpp"
#include "reliability/ecc.hpp"

namespace flim::reliability {

/// Permanent-fault (wear-out) process: each cell's life is Weibull
/// distributed; shape > 1 gives the increasing hazard ("end of life cycle")
/// the paper describes.
struct WearoutModel {
  double scale_hours = 20000.0;  // Weibull eta: characteristic cell life
  double shape = 2.8;            // Weibull beta: > 1 means wear-out
};

/// Transient-fault (environmental upset) process: new bit-flip slots arrive
/// Poisson-distributed per grid and hour, and persist in the stored state
/// until a scrub rewrites the array.
struct TransientModel {
  double upsets_per_grid_hour = 1.0;
};

/// Mitigation strategies evaluated by the simulator.
struct MitigationStack {
  /// Periodic rewrite of all arrays: clears accumulated transient flips.
  bool scrub = false;
  double scrub_period_hours = 24.0;
  /// SEC-DED spare columns + remap at scrub time: wear-out faults in words
  /// with a single faulty cell are hidden from computation (ecc.hpp).
  /// Requires scrub (the correction happens during the scrub pass).
  bool ecc = false;
  EccOptions ecc_options;
  /// N-modular redundancy: odd replica count with independent fault
  /// accumulation, combined by majority vote. 1 disables.
  int modular_redundancy = 1;

  /// Short label for reports, e.g. "scrub+ECC" or "none".
  std::string name() const;
};

/// Simulation configuration.
struct LifetimeConfig {
  /// Virtual op-slot grid per binarized layer (matches the fault masks).
  lim::CrossbarGeometry grid{64, 64};
  WearoutModel wearout;
  TransientModel transients;
  /// Fraction of worn-out cells pinned at logic 1 (the rest at 0).
  double stuck_at_one_fraction = 0.5;
  /// Simulation step between accuracy checkpoints.
  double step_hours = 500.0;
  double horizon_hours = 20000.0;
  std::uint64_t seed = 2023;
};

/// One accuracy checkpoint.
struct LifetimePoint {
  double hours = 0.0;
  double accuracy = 0.0;
  /// Active transient flip slots across layers of replica 0 at evaluation
  /// time (after any scrub).
  std::int64_t transient_flips = 0;
  /// Accumulated worn-out cells across layers of replica 0.
  std::int64_t stuck_cells_raw = 0;
  /// Worn-out cells still visible to computation after ECC remapping.
  std::int64_t stuck_cells_effective = 0;
};

/// A full accuracy-over-lifetime trajectory.
struct LifetimeCurve {
  std::vector<LifetimePoint> points;

  /// First time the accuracy falls below `threshold` (linear interpolation
  /// between checkpoints); nullopt when it never does within the horizon.
  std::optional<double> hours_to_threshold(double threshold) const;
};

/// Steps fault accumulation over time and evaluates the model at each
/// checkpoint under the given mitigation stack.
class LifetimeSimulator {
 public:
  explicit LifetimeSimulator(LifetimeConfig config);

  const LifetimeConfig& config() const { return config_; }

  /// Runs one trajectory. `layers` names the binarized layers to fault
  /// (from Model::analyze); `batch` is the evaluation set.
  LifetimeCurve simulate(const bnn::Model& model, const data::Batch& batch,
                         const std::vector<bnn::LayerWorkload>& layers,
                         const MitigationStack& mitigation) const;

 private:
  LifetimeConfig config_;
};

}  // namespace flim::reliability

// Polymorphic ECC codecs over crossbar-stored bit vectors.
//
// The legacy reliability/ecc.hpp models exactly one code -- the (72,64)
// extended Hamming SEC-DED -- as a hardwired class. This subsystem mirrors
// the fault-registry design (fault/fault_model.hpp): each code family is a
// plugin with a declarative parameter schema, configured instances expose
// encode/decode/correct over plain bit vectors plus a capability report and
// an in-crossbar cost model, and families are resolved by name through a
// string-keyed registry (registry.hpp) from expressions such as
// "hamming(d=64,k=8)", "hsiao(d=64,k=0)" or "bch(d=64,t=2)".
//
// Codewords are std::vector<uint8_t> of 0/1 values so every family --
// whatever its internal representation -- presents one exhaustively
// enumerable surface (exhaust.hpp walks all nCr error placements through
// this interface).
#pragma once

/// \file
/// Polymorphic ECC codec interface: code families as plugins with
/// declarative parameter schemas, configured instances exposing
/// encode/decode/correct over explicit bit vectors plus capability and
/// in-crossbar cost reports. See docs/ecc.md.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_model.hpp"

namespace flim::reliability::ecc {

/// One codeword (or data word) as explicit bits; element values are 0 or 1.
using BitVec = std::vector<std::uint8_t>;

/// Parameter schema entries are shared with the fault registry: same
/// declarative shape, same range/integer validation, same expression
/// grammar.
using fault::ModelParams;
using fault::ParamInfo;

/// Static description of one registered code family.
struct CodecInfo {
  /// Registry key and expression name ("hamming", "hsiao", "bch", "secded").
  std::string name;
  /// One-line summary for `flim_cli ecc list`.
  std::string summary;
  /// Declared parameters, in documentation order.
  std::vector<ParamInfo> params;
};

/// Guarantee report of one configured codec.
struct Capability {
  /// Data bits per codeword (d).
  int data_bits = 0;
  /// Parity bits per codeword (k).
  int parity_bits = 0;
  /// Total codeword bits (d + k).
  int code_bits = 0;
  /// Every error pattern of weight <= correct_guarantee is corrected.
  int correct_guarantee = 0;
  /// Every error pattern of weight <= detect_guarantee is corrected or
  /// flagged -- never silently aliased to wrong data. Beyond this weight
  /// miscorrection is possible (exhaust.hpp measures how often).
  int detect_guarantee = 0;
};

/// In-crossbar cost of deploying one configured codec: spare columns for
/// parity cells and crossbar read cycles for a scrubbing pass.
struct CostModel {
  /// Data bits per codeword (d).
  int data_bits = 0;
  /// Parity bits per codeword (k).
  int parity_bits = 0;
  /// Crossbar read-XOR operations one syndrome computation costs (one per
  /// parity equation term). Scrubbing decodes every word once.
  std::int64_t syndrome_ops_per_word = 0;

  /// Parity storage overhead: parity cells per data cell.
  double parity_overhead() const {
    return static_cast<double>(parity_bits) / static_cast<double>(data_bits);
  }

  /// Spare columns a crossbar of `data_columns` weight columns must add to
  /// hold parity (ceiling: partial words still need full parity).
  std::int64_t extra_columns(std::int64_t data_columns) const {
    const auto d = static_cast<std::int64_t>(data_bits);
    const std::int64_t words = (data_columns + d - 1) / d;
    return words * static_cast<std::int64_t>(parity_bits);
  }

  /// Read cycles one scrub pass over `data_cells` stored bits costs.
  std::int64_t scrub_cycles(std::int64_t data_cells) const {
    const auto d = static_cast<std::int64_t>(data_bits);
    const std::int64_t words = (data_cells + d - 1) / d;
    return words * syndrome_ops_per_word;
  }
};

/// Decode verdicts, family-agnostic.
enum class DecodeStatus : std::uint8_t {
  kClean = 0,   ///< codeword intact
  kCorrected,   ///< errors found and repaired (data is trustworthy)
  kDetected,    ///< uncorrectable; flagged, data NOT repaired
};

/// Result of decoding one (possibly corrupted) codeword.
struct DecodeOutcome {
  /// Decoded (possibly corrected) data bits; on kDetected the raw data
  /// bits as stored, unrepaired.
  BitVec data;
  /// Decode verdict for `data`.
  DecodeStatus status = DecodeStatus::kClean;
};

/// A configured codec instance: one code family resolved against one
/// parameter set. Instances are immutable and thread-safe after
/// construction; the registry caches them per canonical expression.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Family name ("hamming", ...).
  virtual const std::string& family() const = 0;

  /// Canonical expression of this configuration (family name plus the
  /// explicitly-set parameters, sorted -- the registry cache key and the
  /// store-fingerprint spelling).
  virtual const std::string& canonical() const = 0;

  /// Guarantee report of this configuration.
  virtual const Capability& capability() const = 0;
  /// In-crossbar deployment cost of this configuration.
  virtual CostModel cost() const = 0;

  /// Encodes `data` (capability().data_bits entries) into a codeword of
  /// capability().code_bits bits.
  virtual BitVec encode(const BitVec& data) const = 0;

  /// Decodes a (possibly corrupted) codeword of capability().code_bits
  /// bits.
  virtual DecodeOutcome decode(const BitVec& code) const = 0;

  /// Re-encodes the decoded data: the scrubbed codeword a repair pass would
  /// write back. On kDetected the input is returned unchanged (nothing
  /// trustworthy to write).
  BitVec correct(const BitVec& code) const;
};

/// A registered code family: schema plus configured-instance factory.
/// Families are stateless singletons owned by the registry.
class CodecFamily {
 public:
  virtual ~CodecFamily() = default;

  /// Static description: registry name, summary, parameter schema.
  virtual const CodecInfo& info() const = 0;

  /// Resolves `params` against the declared schema: unknown names and
  /// out-of-range values throw std::invalid_argument with the offending
  /// key. Override for cross-parameter rules (call the base first).
  virtual void validate(const ModelParams& params) const;

  /// Builds one configured instance; `params` has been validated.
  virtual std::unique_ptr<Codec> make(const ModelParams& params) const = 0;
};

/// Smallest m with 2^m >= data_bits + m + 1: the Hamming parity-bit count
/// of a SEC code over `data_bits` data bits (add one for SEC-DED). Shared
/// with the legacy scrub's overhead accounting.
int hamming_parity_bits(int data_bits);

/// Canonical expression text: `name` plus the explicitly-set parameters in
/// sorted order with shortest round-trip number formatting -- the exact
/// spelling rules of fault::FaultStack::canonical().
std::string canonical_codec_text(const std::string& name,
                                 const ModelParams& params);

}  // namespace flim::reliability::ecc

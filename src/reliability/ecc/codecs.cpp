// Built-in linear code families: hamming (SEC / extended SEC-DED), hsiao
// (odd-weight-column SEC-DED), and secded (the legacy (72,64) codec of
// reliability/ecc.hpp re-registered as a plugin, bit-identical by
// construction -- it delegates to SecDedCodec instead of reimplementing
// it). The BCH family lives in bch.cpp.
#include <bit>
#include <utility>

#include "core/check.hpp"
#include "reliability/ecc.hpp"
#include "reliability/ecc/codec.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::reliability::ecc {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

/// Shared immutable-instance plumbing: identity, capability, and cost.
class ConfiguredBase : public Codec {
 public:
  ConfiguredBase(std::string family, std::string canonical, Capability cap,
                 std::int64_t syndrome_ops)
      : family_(std::move(family)),
        canonical_(std::move(canonical)),
        capability_(cap),
        syndrome_ops_(syndrome_ops) {}

  const std::string& family() const override { return family_; }
  const std::string& canonical() const override { return canonical_; }
  const Capability& capability() const override { return capability_; }
  CostModel cost() const override {
    return CostModel{capability_.data_bits, capability_.parity_bits,
                     syndrome_ops_};
  }

 protected:
  void check_data(const BitVec& data) const {
    FLIM_REQUIRE(data.size() ==
                     static_cast<std::size_t>(capability_.data_bits),
                 canonical_ + ": expected " +
                     std::to_string(capability_.data_bits) + " data bits, got " +
                     std::to_string(data.size()));
  }
  void check_code(const BitVec& code) const {
    FLIM_REQUIRE(code.size() ==
                     static_cast<std::size_t>(capability_.code_bits),
                 canonical_ + ": expected " +
                     std::to_string(capability_.code_bits) + " code bits, got " +
                     std::to_string(code.size()));
  }

 private:
  std::string family_;
  std::string canonical_;
  Capability capability_;
  std::int64_t syndrome_ops_;
};

// ---------------------------------------------------------------------------
// hamming: classical 1-based power-of-two-position layout, parameterized
// over the data width, with or without the extending overall-parity bit.

/// Read-XOR incidences of the Hamming parity equations over positions
/// 1..n_h (each position contributes to popcount(position) equations),
/// plus the overall-parity equation when extended.
std::int64_t hamming_syndrome_ops(int n_h, bool extended) {
  std::int64_t ops = 0;
  for (int p = 1; p <= n_h; ++p) {
    ops += std::popcount(static_cast<unsigned>(p));
  }
  if (extended) ops += n_h + 1;
  return ops;
}

/// Hamming codeword layout: when extended, vector index 0 holds the
/// overall parity and index i (1..n_h) holds 1-based code position i;
/// plain SEC drops the overall bit and index i holds position i+1.
class HammingCodec : public ConfiguredBase {
 public:
  HammingCodec(std::string family, std::string canonical, int data_bits,
               bool extended)
      : ConfiguredBase(
            std::move(family), std::move(canonical),
            make_capability(data_bits, extended),
            hamming_syndrome_ops(data_bits + hamming_parity_bits(data_bits),
                                 extended)),
        extended_(extended) {
    const int m = hamming_parity_bits(data_bits);
    positions_ = data_bits + m;
    data_position_.reserve(static_cast<std::size_t>(data_bits));
    position_to_data_.assign(static_cast<std::size_t>(positions_) + 1, -1);
    for (int pos = 1; pos <= positions_; ++pos) {
      if (is_power_of_two(pos)) continue;
      position_to_data_[static_cast<std::size_t>(pos)] =
          static_cast<int>(data_position_.size());
      data_position_.push_back(pos);
    }
    FLIM_ASSERT(static_cast<int>(data_position_.size()) == data_bits);
  }

  BitVec encode(const BitVec& data) const override {
    check_data(data);
    BitVec code(static_cast<std::size_t>(capability().code_bits), 0);
    int syn = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] == 0) continue;
      set_position(code, data_position_[i]);
      syn ^= data_position_[i];
    }
    for (int b = 0; (1 << b) <= positions_; ++b) {
      if ((syn >> b) & 1) set_position(code, 1 << b);
    }
    if (extended_) {
      std::uint8_t overall = 0;
      for (std::size_t j = 1; j < code.size(); ++j) overall ^= code[j];
      code[0] = overall;
    }
    return code;
  }

  DecodeOutcome decode(const BitVec& code) const override {
    check_code(code);
    DecodeOutcome out;
    out.data = extract_data(code);
    int syn = 0;
    int ones = 0;
    for (int pos = 1; pos <= positions_; ++pos) {
      if (get_position(code, pos) != 0) {
        syn ^= pos;
        ++ones;
      }
    }
    if (!extended_) {
      if (syn == 0) {
        out.status = DecodeStatus::kClean;
      } else if (syn <= positions_) {
        // SEC assumes a single error at position `syn` and corrects it.
        out.status = DecodeStatus::kCorrected;
        const int di = position_to_data_[static_cast<std::size_t>(syn)];
        if (di >= 0) out.data[static_cast<std::size_t>(di)] ^= 1;
      } else {
        // No single error produces a syndrome beyond the code length.
        out.status = DecodeStatus::kDetected;
      }
      return out;
    }

    const bool parity_mismatch = ((ones + code[0]) & 1) != 0;
    if (syn == 0 && !parity_mismatch) {
      out.status = DecodeStatus::kClean;
      return out;
    }
    if (parity_mismatch) {
      if (syn == 0) {
        // The overall parity bit itself flipped; data is intact.
        out.status = DecodeStatus::kCorrected;
        return out;
      }
      if (syn > positions_) {
        // >= 3 errors; report detection rather than miscorrect.
        out.status = DecodeStatus::kDetected;
        return out;
      }
      out.status = DecodeStatus::kCorrected;
      const int di = position_to_data_[static_cast<std::size_t>(syn)];
      if (di >= 0) out.data[static_cast<std::size_t>(di)] ^= 1;
      return out;
    }
    // Non-zero syndrome with intact overall parity: even error count.
    out.status = DecodeStatus::kDetected;
    return out;
  }

 private:
  static Capability make_capability(int data_bits, bool extended) {
    const int m = hamming_parity_bits(data_bits);
    Capability cap;
    cap.data_bits = data_bits;
    cap.parity_bits = extended ? m + 1 : m;
    cap.code_bits = data_bits + cap.parity_bits;
    cap.correct_guarantee = 1;
    cap.detect_guarantee = extended ? 2 : 1;
    return cap;
  }

  std::size_t index_of(int position) const {
    return static_cast<std::size_t>(extended_ ? position : position - 1);
  }
  void set_position(BitVec& code, int position) const {
    code[index_of(position)] ^= 1;
  }
  std::uint8_t get_position(const BitVec& code, int position) const {
    return code[index_of(position)];
  }
  BitVec extract_data(const BitVec& code) const {
    BitVec data(data_position_.size(), 0);
    for (std::size_t i = 0; i < data_position_.size(); ++i) {
      data[i] = get_position(code, data_position_[i]);
    }
    return data;
  }

  bool extended_;
  int positions_ = 0;               // n_h = data + hamming parity
  std::vector<int> data_position_;  // data bit index -> 1-based position
  std::vector<int> position_to_data_;
};

class HammingFamily : public CodecFamily {
 public:
  HammingFamily() {
    info_.name = "hamming";
    info_.summary =
        "classical Hamming code: SEC with k=m parity bits, extended SEC-DED "
        "with k=m+1 (m = smallest with 2^m >= d+m+1)";
    info_.params = {
        {"d", 64.0, 1.0, 4096.0, true, "data bits per codeword"},
        {"k", 0.0, 0.0, 64.0, true,
         "parity bits: m (SEC), m+1 (SEC-DED), or 0 to auto-size to m+1"},
    };
  }

  const CodecInfo& info() const override { return info_; }

  void validate(const ModelParams& params) const override {
    CodecFamily::validate(params);
    const int d = static_cast<int>(params.get("d", 64.0));
    const int m = hamming_parity_bits(d);
    const int k = static_cast<int>(params.get("k", 0.0));
    FLIM_REQUIRE(k == 0 || k == m || k == m + 1,
                 "hamming: d=" + std::to_string(d) + " needs k=" +
                     std::to_string(m) + " (SEC) or k=" + std::to_string(m + 1) +
                     " (SEC-DED); got k=" + std::to_string(k));
  }

  std::unique_ptr<Codec> make(const ModelParams& params) const override {
    const int d = static_cast<int>(params.get("d", 64.0));
    const int m = hamming_parity_bits(d);
    const int k = static_cast<int>(params.get("k", 0.0));
    const bool extended = (k == 0 || k == m + 1);
    return std::make_unique<HammingCodec>(
        info_.name, canonical_codec_text(info_.name, params), d, extended);
  }

 private:
  CodecInfo info_;
};

// ---------------------------------------------------------------------------
// hsiao: odd-weight-column SEC-DED. The parity-check matrix H = [A | I]
// uses distinct odd-weight (>= 3) columns for the data bits -- every double
// error yields an even-weight (hence non-column, hence detected) syndrome
// with strictly fewer parity-tree levels than the extended Hamming code.

/// Smallest k whose odd-weight (>= 3) k-bit patterns cover d data columns:
/// 2^(k-1) odd patterns minus the k weight-1 columns reserved for parity.
int hsiao_auto_parity_bits(int data_bits) {
  int k = 4;
  while ((std::int64_t{1} << (k - 1)) - k < data_bits) ++k;
  return k;
}

class HsiaoCodec : public ConfiguredBase {
 public:
  HsiaoCodec(std::string family, std::string canonical, int data_bits,
             int parity_bits)
      : ConfiguredBase(std::move(family), std::move(canonical),
                       make_capability(data_bits, parity_bits),
                       /*syndrome_ops=*/0) {
    // Deterministic column choice: all odd-weight >= 3 patterns in
    // ascending weight, then ascending numeric value -- the minimal-weight
    // (fastest-tree) subset, reproducible across runs and platforms.
    columns_.reserve(static_cast<std::size_t>(data_bits));
    for (int weight = 3; weight <= parity_bits &&
                         static_cast<int>(columns_.size()) < data_bits;
         weight += 2) {
      for (std::uint64_t pattern = 0;
           pattern < (std::uint64_t{1} << parity_bits) &&
           static_cast<int>(columns_.size()) < data_bits;
           ++pattern) {
        if (std::popcount(pattern) == weight) columns_.push_back(pattern);
      }
    }
    FLIM_ASSERT(static_cast<int>(columns_.size()) == data_bits);
    std::int64_t ops = 0;
    for (const std::uint64_t c : columns_) ops += std::popcount(c);
    ops += parity_bits;  // the identity columns
    syndrome_ops_ = ops;
  }

  CostModel cost() const override {
    return CostModel{capability().data_bits, capability().parity_bits,
                     syndrome_ops_};
  }

  BitVec encode(const BitVec& data) const override {
    check_data(data);
    BitVec code(static_cast<std::size_t>(capability().code_bits), 0);
    std::uint64_t parity = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      code[i] = data[i];
      if (data[i] != 0) parity ^= columns_[i];
    }
    for (int j = 0; j < capability().parity_bits; ++j) {
      code[data.size() + static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>((parity >> j) & 1);
    }
    return code;
  }

  DecodeOutcome decode(const BitVec& code) const override {
    check_code(code);
    const auto d = static_cast<std::size_t>(capability().data_bits);
    DecodeOutcome out;
    out.data.assign(code.begin(), code.begin() + static_cast<std::ptrdiff_t>(d));
    std::uint64_t syn = 0;
    for (std::size_t i = 0; i < d; ++i) {
      if (code[i] != 0) syn ^= columns_[i];
    }
    for (int j = 0; j < capability().parity_bits; ++j) {
      if (code[d + static_cast<std::size_t>(j)] != 0) {
        syn ^= std::uint64_t{1} << j;
      }
    }
    if (syn == 0) {
      out.status = DecodeStatus::kClean;
      return out;
    }
    if ((std::popcount(syn) & 1) == 0) {
      // Even-weight syndromes are never columns (all columns have odd
      // weight): a double error, detected by construction.
      out.status = DecodeStatus::kDetected;
      return out;
    }
    if (std::popcount(syn) == 1) {
      // A parity column: the parity bit itself flipped; data is intact.
      out.status = DecodeStatus::kCorrected;
      return out;
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == syn) {
        out.status = DecodeStatus::kCorrected;
        out.data[i] ^= 1;
        return out;
      }
    }
    // Odd-weight non-column syndrome: >= 3 errors, detected.
    out.status = DecodeStatus::kDetected;
    return out;
  }

 private:
  static Capability make_capability(int data_bits, int parity_bits) {
    Capability cap;
    cap.data_bits = data_bits;
    cap.parity_bits = parity_bits;
    cap.code_bits = data_bits + parity_bits;
    cap.correct_guarantee = 1;
    cap.detect_guarantee = 2;
    return cap;
  }

  std::vector<std::uint64_t> columns_;  // data-bit parity columns (H's A)
  std::int64_t syndrome_ops_ = 0;
};

class HsiaoFamily : public CodecFamily {
 public:
  HsiaoFamily() {
    info_.name = "hsiao";
    info_.summary =
        "Hsiao odd-weight-column SEC-DED: the standard DRAM/SRAM code, "
        "shallower parity trees than extended Hamming";
    info_.params = {
        {"d", 64.0, 1.0, 4096.0, true, "data bits per codeword"},
        {"k", 0.0, 0.0, 48.0, true,
         "parity bits (0 auto-sizes to the smallest k whose odd-weight "
         "columns cover d)"},
    };
  }

  const CodecInfo& info() const override { return info_; }

  void validate(const ModelParams& params) const override {
    CodecFamily::validate(params);
    const int d = static_cast<int>(params.get("d", 64.0));
    const int k = static_cast<int>(params.get("k", 0.0));
    const int k_min = hsiao_auto_parity_bits(d);
    FLIM_REQUIRE(k == 0 || k >= k_min,
                 "hsiao: d=" + std::to_string(d) + " needs k >= " +
                     std::to_string(k_min) +
                     " (odd-weight columns must cover every data bit); got "
                     "k=" + std::to_string(k));
  }

  std::unique_ptr<Codec> make(const ModelParams& params) const override {
    const int d = static_cast<int>(params.get("d", 64.0));
    int k = static_cast<int>(params.get("k", 0.0));
    if (k == 0) k = hsiao_auto_parity_bits(d);
    return std::make_unique<HsiaoCodec>(
        info_.name, canonical_codec_text(info_.name, params), d, k);
  }

 private:
  CodecInfo info_;
};

// ---------------------------------------------------------------------------
// secded: the legacy (72,64) extended-Hamming codec as a plugin. Delegates
// every encode/decode to reliability::SecDedCodec -- bit-identity with the
// pre-registry scrub is by construction, not by reimplementation.

class SecDedPluginCodec : public ConfiguredBase {
 public:
  SecDedPluginCodec(std::string family, std::string canonical)
      : ConfiguredBase(std::move(family), std::move(canonical),
                       make_capability(),
                       hamming_syndrome_ops(71, /*extended=*/true)) {}

  BitVec encode(const BitVec& data) const override {
    check_data(data);
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] != 0) packed |= std::uint64_t{1} << i;
    }
    return unpack(legacy_.encode(packed));
  }

  DecodeOutcome decode(const BitVec& code) const override {
    check_code(code);
    const SecDedCodec::DecodeResult result = legacy_.decode(pack(code));
    DecodeOutcome out;
    out.data.assign(static_cast<std::size_t>(SecDedCodec::kDataBits), 0);
    for (int i = 0; i < SecDedCodec::kDataBits; ++i) {
      out.data[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((result.data >> i) & 1);
    }
    switch (result.status) {
      case SecDedCodec::Status::kClean:
        out.status = DecodeStatus::kClean;
        break;
      case SecDedCodec::Status::kCorrectedSingle:
        out.status = DecodeStatus::kCorrected;
        break;
      case SecDedCodec::Status::kDetectedDouble:
        out.status = DecodeStatus::kDetected;
        break;
    }
    return out;
  }

 private:
  static Capability make_capability() {
    Capability cap;
    cap.data_bits = SecDedCodec::kDataBits;
    cap.parity_bits = SecDedCodec::kParityBits;
    cap.code_bits = SecDedCodec::kCodeBits;
    cap.correct_guarantee = 1;
    cap.detect_guarantee = 2;
    return cap;
  }

  /// Codeword layout (shared with hamming's extended layout so the two
  /// families agree placement-for-placement): index 0 = overall parity,
  /// index p in 1..71 = 1-based code position p (powers of two are the
  /// legacy packed parity bits p1..p64, the rest are data bits ascending).
  static BitVec unpack(const SecDedCodec::Codeword& word) {
    BitVec code(static_cast<std::size_t>(SecDedCodec::kCodeBits), 0);
    code[0] = static_cast<std::uint8_t>(word.parity & 1);
    int data_index = 0;
    int parity_index = 1;
    for (int pos = 1; pos <= 71; ++pos) {
      std::uint8_t bit = 0;
      if (is_power_of_two(pos)) {
        bit = static_cast<std::uint8_t>((word.parity >> parity_index) & 1);
        ++parity_index;
      } else {
        bit = static_cast<std::uint8_t>((word.data >> data_index) & 1);
        ++data_index;
      }
      code[static_cast<std::size_t>(pos)] = bit;
    }
    return code;
  }

  static SecDedCodec::Codeword pack(const BitVec& code) {
    SecDedCodec::Codeword word;
    word.parity = static_cast<std::uint8_t>(code[0] & 1);
    int data_index = 0;
    int parity_index = 1;
    for (int pos = 1; pos <= 71; ++pos) {
      if (code[static_cast<std::size_t>(pos)] != 0) {
        if (is_power_of_two(pos)) {
          word.parity |= static_cast<std::uint8_t>(1 << parity_index);
        } else {
          word.data |= std::uint64_t{1} << data_index;
        }
      }
      if (is_power_of_two(pos)) {
        ++parity_index;
      } else {
        ++data_index;
      }
    }
    return word;
  }

  SecDedCodec legacy_;
};

class SecDedFamily : public CodecFamily {
 public:
  SecDedFamily() {
    info_.name = "secded";
    info_.summary =
        "the legacy (72,64) extended-Hamming SEC-DED scrub codec, "
        "re-registered as a plugin (bit-identical to reliability/ecc.hpp)";
    info_.params = {};  // fixed geometry; use hamming(d=...) to resize
  }

  const CodecInfo& info() const override { return info_; }

  std::unique_ptr<Codec> make(const ModelParams& params) const override {
    return std::make_unique<SecDedPluginCodec>(
        info_.name, canonical_codec_text(info_.name, params));
  }

 private:
  CodecInfo info_;
};

}  // namespace

std::unique_ptr<CodecFamily> make_hamming_family() {
  return std::make_unique<HammingFamily>();
}
std::unique_ptr<CodecFamily> make_hsiao_family() {
  return std::make_unique<HsiaoFamily>();
}
std::unique_ptr<CodecFamily> make_secded_family() {
  return std::make_unique<SecDedFamily>();
}

}  // namespace flim::reliability::ecc

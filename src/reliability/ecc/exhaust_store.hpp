// Durable store for exhaustive ECC enumerations: append-only JSONL chunk
// files mirroring the campaign run store (exp/store.hpp). The first line is
// a header carrying the spec fingerprint and shard identity; every
// subsequent line is one completed chunk's tallies, fsync'd as a progress
// marker. Loading tolerates a torn tail (a killed run resumes from the last
// complete line) and merge validates fingerprints, disjointness, and
// completeness before folding shard files into one result -- byte-identical
// CSV to a single-process run, because tallies are integers.
#pragma once

/// \file
/// Durable store for exhaustive ECC enumerations: append-only JSONL chunk
/// files with fingerprinted headers, fsync'd chunk tallies, torn-tail
/// tolerant resume, and shard-file merging byte-identical to a
/// single-process run. See docs/ecc.md.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "reliability/ecc/exhaust.hpp"

namespace flim::reliability::ecc {

/// Revision of the exhaust-file layout; bumped on incompatible changes.
inline constexpr int kExhaustFormatVersion = 1;

/// First line of an exhaust store file.
struct ExhaustHeader {
  /// Exhaust-file layout revision (kExhaustFormatVersion at write time).
  int format = kExhaustFormatVersion;
  /// Canonical codec expression.
  std::string codec;
  /// exhaust_fingerprint() of the producing spec.
  std::string fingerprint;
  /// core::code_fingerprint() of the producing build (informational; the
  /// fingerprint already mixes it in).
  std::string library_version;
  /// ExhaustSpec::data_seed of the producing spec.
  std::uint64_t data_seed = 0;
  /// True when the spec enumerates burst windows, not combinations.
  bool burst = false;
  /// Placements per chunk (the checkpoint/shard granule).
  std::uint64_t chunk = 0;
  /// Normalized (sorted, deduplicated) weights of the producing spec.
  std::vector<int> weights;
  /// Codeword length of the configured codec.
  int code_bits = 0;
  /// Chunk count of the producing plan.
  std::uint64_t total_chunks = 0;
  /// Placement count of the producing plan.
  std::uint64_t total_placements = 0;
  /// This file's shard identity under the interleaved partition.
  int shard_index = 0;
  /// Shard count of the producing run (1 = unsharded).
  int shard_count = 1;
};

/// Builds the header a run of `spec` writes.
ExhaustHeader make_exhaust_header(const ExhaustSpec& spec,
                                  const ExhaustPlan& plan, int shard_index,
                                  int shard_count);

/// True when chunk `chunk_index` belongs to shard `shard_index` of
/// `shard_count` under the deterministic interleaved partition.
bool exhaust_shard_owns(std::uint64_t chunk_index, int shard_index,
                        int shard_count);

/// A loaded exhaust store file: header plus every cleanly parsed chunk
/// line (duplicates keep the first occurrence).
struct ExhaustFile {
  /// Parsed header line.
  ExhaustHeader header;
  /// Cleanly parsed chunk lines, file order.
  std::vector<ChunkCounts> chunks;
  /// Byte length of the valid prefix; a resumed writer truncates here.
  std::size_t valid_prefix_bytes = 0;
  /// True when a torn/corrupt tail was ignored.
  bool truncated_tail = false;

  /// Loads `path`. Throws std::invalid_argument on a missing file or bad
  /// header; a malformed chunk line ends the scan gracefully.
  static ExhaustFile load(const std::string& path);

  /// True when the file holds chunk `chunk_index`.
  bool has(std::uint64_t chunk_index) const;

  /// Chunks this file's shard owns (its progress denominator).
  std::uint64_t owned_chunks() const;

  /// True when every owned chunk is present.
  bool complete() const;
};

/// Append-only exhaust store writer; append() is thread-safe and fsyncs
/// each line, so parallel chunk workers checkpoint without interleaving.
class ExhaustStoreWriter {
 public:
  /// Creates (or truncates) `path`, writes the header line, and syncs it.
  ExhaustStoreWriter(const std::string& path, const ExhaustHeader& header);

  /// Reopens an existing store for appending, truncating the torn tail
  /// first (pass ExhaustFile::valid_prefix_bytes).
  static ExhaustStoreWriter resume(const std::string& path,
                                   std::size_t valid_prefix_bytes);

  /// Appends one completed chunk and syncs it. Thread-safe.
  void append(const ChunkCounts& chunk);

  /// Path this writer appends to.
  const std::string& path() const { return path_; }

 private:
  ExhaustStoreWriter();

  struct FileCloser {
    void operator()(std::FILE* f) const;
  };

  std::string path_;
  /// Heap-allocated (never null) so the writer stays movable.
  std::unique_ptr<core::Mutex> mutex_;
  std::unique_ptr<std::FILE, FileCloser> file_ FLIM_PT_GUARDED_BY(*mutex_);
};

/// Loads shard files of one enumeration (or a single complete file),
/// validates equal fingerprints, disjoint chunk ownership, and full
/// coverage, and folds them into the complete result. Throws
/// std::invalid_argument on any incompatibility or gap.
ExhaustResult merge_exhaust_files(const std::vector<std::string>& paths);

}  // namespace flim::reliability::ecc

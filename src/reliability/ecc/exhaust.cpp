#include "reliability/ecc/exhaust.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "core/sysinfo.hpp"
#include "core/thread_pool.hpp"
#include "reliability/ecc/exhaust_store.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::reliability::ecc {

namespace {

constexpr std::uint64_t kFlatStride = 0x9E3779B97F4A7C15ull;

/// Percentage cell with enough digits that rare aliasing events stay
/// visible; integer inputs make this deterministic across shard layouts.
std::string pct_cell(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return core::format_double(0.0, 4);
  return core::format_double(
      100.0 * static_cast<double>(part) / static_cast<double>(whole), 4);
}

}  // namespace

std::uint64_t ncr(int n, int r) {
  FLIM_REQUIRE(n >= 0 && r >= 0, "ncr: n and r must be non-negative");
  if (r > n) return 0;
  if (r > n - r) r = n - r;
  unsigned __int128 acc = 1;
  for (int i = 1; i <= r; ++i) {
    // acc is C(n-r+i-1, i-1); this step keeps it exact: the product of i
    // consecutive integers is divisible by i!.
    acc = acc * static_cast<unsigned>(n - r + i) / static_cast<unsigned>(i);
    FLIM_REQUIRE(acc <= static_cast<unsigned __int128>(UINT64_MAX),
                 "ncr(" + std::to_string(n) + ", " + std::to_string(r) +
                     ") overflows 64 bits; the enumeration is infeasible");
  }
  return static_cast<std::uint64_t>(acc);
}

std::vector<int> unrank_combination(int n, int r, std::uint64_t rank) {
  FLIM_REQUIRE(rank < ncr(n, r), "unrank_combination: rank " +
                                     std::to_string(rank) + " out of range");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(r));
  // Combinatorial number system, lexicographic: at each position either
  // it is the next chosen element (when rank falls inside the block of
  // combinations that include it) or we skip past that whole block.
  for (int pos = 0; r > 0; ++pos) {
    const std::uint64_t with_pos = ncr(n - pos - 1, r - 1);
    if (rank < with_pos) {
      out.push_back(pos);
      --r;
    } else {
      rank -= with_pos;
    }
  }
  return out;
}

ExhaustSpec normalize_exhaust_spec(const ExhaustSpec& spec) {
  ExhaustSpec norm = spec;
  norm.codec_expr = canonical_codec_expr(spec.codec_expr);
  FLIM_REQUIRE(norm.chunk >= 1, "exhaust: chunk size must be >= 1");
  FLIM_REQUIRE(!norm.weights.empty(),
               "exhaust: at least one error weight is required");
  std::sort(norm.weights.begin(), norm.weights.end());
  norm.weights.erase(std::unique(norm.weights.begin(), norm.weights.end()),
                     norm.weights.end());
  const int code_bits =
      CodecRegistry::instance().configure(norm.codec_expr).capability()
          .code_bits;
  for (const int w : norm.weights) {
    FLIM_REQUIRE(w >= 1 && w <= code_bits,
                 "exhaust: weight " + std::to_string(w) +
                     " outside [1, " + std::to_string(code_bits) +
                     "] for codec " + norm.codec_expr);
  }
  return norm;
}

std::string canonical_exhaust_spec(const ExhaustSpec& spec) {
  std::ostringstream os;
  os << "flim-exhaust-v" << kExhaustFormatVersion << "\n";
  os << "codec=" << spec.codec_expr << "\n";
  os << "mode=" << (spec.burst ? "burst" : "combination") << "\n";
  os << "weights=";
  for (std::size_t i = 0; i < spec.weights.size(); ++i) {
    if (i) os << ",";
    os << spec.weights[i];
  }
  os << "\n";
  os << "data_seed=" << spec.data_seed << "\n";
  os << "chunk=" << spec.chunk << "\n";
  return os.str();
}

std::string exhaust_fingerprint(const ExhaustSpec& spec) {
  return core::hash_hex(core::fnv1a64(core::code_fingerprint() + "\n" +
                                      canonical_exhaust_spec(spec)));
}

ExhaustPlan plan_exhaust(const ExhaustSpec& spec) {
  const Codec& codec = CodecRegistry::instance().configure(spec.codec_expr);
  ExhaustPlan plan;
  plan.code_bits = codec.capability().code_bits;
  std::uint64_t flat = 0;
  for (const int w : spec.weights) {
    WeightBlock block;
    block.weight = w;
    block.first = flat;
    block.placements =
        spec.burst ? static_cast<std::uint64_t>(plan.code_bits - w + 1)
                   : ncr(plan.code_bits, w);
    const std::uint64_t next = flat + block.placements;
    FLIM_REQUIRE(next >= flat, "exhaust: placement space overflows 64 bits");
    flat = next;
    plan.blocks.push_back(block);
  }
  plan.total_placements = flat;
  plan.total_chunks = (flat + spec.chunk - 1) / spec.chunk;
  return plan;
}

ChunkCounts run_exhaust_chunk(const ExhaustSpec& spec, const ExhaustPlan& plan,
                              std::uint64_t chunk_index) {
  FLIM_REQUIRE(chunk_index < plan.total_chunks,
               "exhaust: chunk index out of range");
  const Codec& codec = CodecRegistry::instance().configure(spec.codec_expr);
  const int d = codec.capability().data_bits;

  ChunkCounts out;
  out.chunk_index = chunk_index;
  const std::uint64_t begin = chunk_index * spec.chunk;
  const std::uint64_t end =
      std::min(begin + spec.chunk, plan.total_placements);

  std::size_t block_at = 0;
  WeightCounts* tally = nullptr;
  BitVec data(static_cast<std::size_t>(d), 0);
  for (std::uint64_t flat = begin; flat < end; ++flat) {
    while (flat >= plan.blocks[block_at].first +
                       plan.blocks[block_at].placements) {
      ++block_at;
      tally = nullptr;
    }
    const WeightBlock& block = plan.blocks[block_at];
    if (tally == nullptr) {
      out.counts.push_back(WeightCounts{block.weight, 0, 0, 0, 0});
      tally = &out.counts.back();
    }

    // An independent random data word per placement: the stream depends
    // only on (data_seed, flat), never on enumeration order or sharding.
    core::Rng rng(spec.data_seed + flat * kFlatStride);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(rng.uniform(2));
    }

    BitVec code = codec.encode(data);
    const std::uint64_t rank = flat - block.first;
    if (spec.burst) {
      for (int i = 0; i < block.weight; ++i) {
        code[static_cast<std::size_t>(rank) + static_cast<std::size_t>(i)] ^=
            1;
      }
    } else {
      for (const int pos :
           unrank_combination(plan.code_bits, block.weight, rank)) {
        code[static_cast<std::size_t>(pos)] ^= 1;
      }
    }

    const DecodeOutcome outcome = codec.decode(code);
    ++tally->placements;
    if (outcome.status == DecodeStatus::kDetected) {
      ++tally->detected;
    } else if (outcome.data == data) {
      ++tally->corrected;
    } else {
      ++tally->aliased;  // silently decoded to WRONG data
    }
  }
  return out;
}

ExhaustResult fold_exhaust_counts(const ExhaustSpec& spec,
                                  const ExhaustPlan& plan,
                                  const std::vector<ChunkCounts>& chunks) {
  ExhaustResult result;
  result.codec_expr = spec.codec_expr;
  result.burst = spec.burst;
  result.code_bits = plan.code_bits;
  for (const WeightBlock& block : plan.blocks) {
    result.per_weight.push_back(WeightCounts{block.weight, 0, 0, 0, 0});
  }
  std::vector<char> seen(static_cast<std::size_t>(plan.total_chunks), 0);
  for (const ChunkCounts& chunk : chunks) {
    FLIM_REQUIRE(chunk.chunk_index < plan.total_chunks,
                 "exhaust: chunk index out of range in fold");
    char& mark = seen[static_cast<std::size_t>(chunk.chunk_index)];
    FLIM_REQUIRE(mark == 0, "exhaust: chunk " +
                                std::to_string(chunk.chunk_index) +
                                " tallied twice");
    mark = 1;
    for (const WeightCounts& wc : chunk.counts) {
      WeightCounts* into = nullptr;
      for (WeightCounts& total : result.per_weight) {
        if (total.weight == wc.weight) into = &total;
      }
      FLIM_REQUIRE(into != nullptr,
                   "exhaust: chunk tallies an unplanned weight " +
                       std::to_string(wc.weight));
      into->placements += wc.placements;
      into->corrected += wc.corrected;
      into->detected += wc.detected;
      into->aliased += wc.aliased;
    }
  }
  return result;
}

core::Table ExhaustResult::to_table() const {
  core::Table table({burst ? "burst_len" : "weight", "placements",
                     "corrected", "detected", "aliased", "corrected_%",
                     "detected_%", "aliased_%"});
  for (const WeightCounts& wc : per_weight) {
    table.add(wc.weight, wc.placements, wc.corrected, wc.detected, wc.aliased,
              pct_cell(wc.corrected, wc.placements),
              pct_cell(wc.detected, wc.placements),
              pct_cell(wc.aliased, wc.placements));
  }
  return table;
}

ExhaustResult run_exhaust(const ExhaustSpec& raw_spec,
                          const std::string& store_path, int shard_index,
                          int shard_count, int jobs) {
  FLIM_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                   shard_index < shard_count,
               "exhaust: shard index must be in [0, shard_count)");
  const ExhaustSpec spec = normalize_exhaust_spec(raw_spec);
  const ExhaustPlan plan = plan_exhaust(spec);
  FLIM_REQUIRE(!store_path.empty() || shard_count == 1,
               "exhaust: a sharded run needs a durable store (pass a store "
               "path so the shards can be merged)");

  std::vector<ChunkCounts> done;
  std::unique_ptr<ExhaustStoreWriter> writer;
  if (!store_path.empty()) {
    if (std::filesystem::exists(store_path)) {
      // Resume: an existing store must really be OURS -- fingerprint and
      // shard mismatches are errors, never silently overwritten.
      ExhaustFile existing = ExhaustFile::load(store_path);
      const std::string fp = exhaust_fingerprint(spec);
      FLIM_REQUIRE(existing.header.fingerprint == fp,
                   "exhaust: store '" + store_path +
                       "' was written by a different spec or build "
                       "(fingerprint " + existing.header.fingerprint +
                       " != " + fp + "); delete it to start over");
      FLIM_REQUIRE(existing.header.shard_index == shard_index &&
                       existing.header.shard_count == shard_count,
                   "exhaust: store '" + store_path + "' belongs to shard " +
                       std::to_string(existing.header.shard_index) + "/" +
                       std::to_string(existing.header.shard_count) +
                       ", not " + std::to_string(shard_index) + "/" +
                       std::to_string(shard_count));
      done = std::move(existing.chunks);
      writer = std::make_unique<ExhaustStoreWriter>(ExhaustStoreWriter::resume(
          store_path, existing.valid_prefix_bytes));
    } else {
      writer = std::make_unique<ExhaustStoreWriter>(
          store_path,
          make_exhaust_header(spec, plan, shard_index, shard_count));
    }
  }

  std::vector<char> have(static_cast<std::size_t>(plan.total_chunks), 0);
  for (const ChunkCounts& chunk : done) {
    if (chunk.chunk_index < plan.total_chunks) {
      have[static_cast<std::size_t>(chunk.chunk_index)] = 1;
    }
  }
  std::vector<std::uint64_t> pending;
  for (std::uint64_t c = 0; c < plan.total_chunks; ++c) {
    if (exhaust_shard_owns(c, shard_index, shard_count) &&
        have[static_cast<std::size_t>(c)] == 0) {
      pending.push_back(c);
    }
  }

  std::vector<ChunkCounts> fresh_counts(pending.size());
  if (!pending.empty()) {
    core::ThreadPool pool(static_cast<std::size_t>(jobs));
    pool.parallel_for_slotted(
        pending.size(), [&](std::size_t i, std::size_t /*slot*/) {
          fresh_counts[i] = run_exhaust_chunk(spec, plan, pending[i]);
          if (writer != nullptr) writer->append(fresh_counts[i]);
        });
  }

  done.insert(done.end(), fresh_counts.begin(), fresh_counts.end());
  return fold_exhaust_counts(spec, plan, done);
}

}  // namespace flim::reliability::ecc

#include "reliability/ecc/exhaust_store.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/check.hpp"
#include "core/minijson.hpp"
#include "core/report.hpp"
#include "core/sysinfo.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace flim::reliability::ecc {

namespace {

using core::JsonError;
using core::JsonValue;
using core::json_array;
using core::json_number;
using core::json_string;

std::string quote(const std::string& s) {
  return '"' + core::json_escape(s) + '"';
}

std::string header_line(const ExhaustHeader& h) {
  std::ostringstream os;
  os << "{\"flim_exhaust_format\": " << h.format
     << ", \"codec\": " << quote(h.codec)
     << ", \"fingerprint\": " << quote(h.fingerprint)
     << ", \"library_version\": " << quote(h.library_version)
     // 64-bit values go as strings: JSON numbers decay to binary64 on
     // parse, which cannot hold every value exactly.
     << ", \"data_seed\": \"" << h.data_seed << '"'
     << ", \"mode\": " << quote(h.burst ? "burst" : "combination")
     << ", \"chunk\": \"" << h.chunk << '"' << ", \"weights\": [";
  for (std::size_t i = 0; i < h.weights.size(); ++i) {
    if (i) os << ", ";
    os << h.weights[i];
  }
  os << "], \"code_bits\": " << h.code_bits << ", \"total_chunks\": \""
     << h.total_chunks << "\", \"total_placements\": \""
     << h.total_placements << "\", \"shard_index\": " << h.shard_index
     << ", \"shard_count\": " << h.shard_count << "}";
  return os.str();
}

/// One chunk per line. Per-weight tallies are flattened into one numeric
/// array in groups of five (weight, placements, corrected, detected,
/// aliased): minijson only speaks flat arrays of numbers/strings. Tallies
/// are bounded by the chunk size, so binary64 holds them exactly.
std::string chunk_line(const ChunkCounts& c) {
  std::ostringstream os;
  os << "{\"chunk\": \"" << c.chunk_index << "\", \"counts\": [";
  for (std::size_t i = 0; i < c.counts.size(); ++i) {
    const WeightCounts& wc = c.counts[i];
    if (i) os << ", ";
    os << wc.weight << ", " << wc.placements << ", " << wc.corrected << ", "
       << wc.detected << ", " << wc.aliased;
  }
  os << "]}";
  return os.str();
}

std::uint64_t parse_u64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 10);
}

ExhaustHeader parse_header(const std::string& line) {
  const auto obj = core::parse_json_object_line(line);
  ExhaustHeader h;
  h.format = static_cast<int>(json_number(obj, "flim_exhaust_format"));
  h.codec = json_string(obj, "codec");
  h.fingerprint = json_string(obj, "fingerprint");
  h.library_version = json_string(obj, "library_version");
  h.data_seed = parse_u64(json_string(obj, "data_seed"));
  const std::string mode = json_string(obj, "mode");
  if (mode != "burst" && mode != "combination") {
    throw JsonError{"unknown exhaust mode: " + mode};
  }
  h.burst = (mode == "burst");
  h.chunk = parse_u64(json_string(obj, "chunk"));
  for (const JsonValue& v : json_array(obj, "weights")) {
    if (v.kind != JsonValue::Kind::kNumber) {
      throw JsonError{"weights entry is not a number"};
    }
    h.weights.push_back(static_cast<int>(v.number));
  }
  h.code_bits = static_cast<int>(json_number(obj, "code_bits"));
  h.total_chunks = parse_u64(json_string(obj, "total_chunks"));
  h.total_placements = parse_u64(json_string(obj, "total_placements"));
  h.shard_index = static_cast<int>(json_number(obj, "shard_index"));
  h.shard_count = static_cast<int>(json_number(obj, "shard_count"));
  return h;
}

ChunkCounts parse_chunk(const std::string& line) {
  const auto obj = core::parse_json_object_line(line);
  ChunkCounts c;
  c.chunk_index = parse_u64(json_string(obj, "chunk"));
  const std::vector<JsonValue>& flat = json_array(obj, "counts");
  if (flat.size() % 5 != 0) {
    throw JsonError{"counts array is not a multiple of five"};
  }
  for (std::size_t i = 0; i < flat.size(); i += 5) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (flat[i + j].kind != JsonValue::Kind::kNumber) {
        throw JsonError{"counts entry is not a number"};
      }
    }
    WeightCounts wc;
    wc.weight = static_cast<int>(flat[i].number);
    wc.placements = static_cast<std::uint64_t>(flat[i + 1].number);
    wc.corrected = static_cast<std::uint64_t>(flat[i + 2].number);
    wc.detected = static_cast<std::uint64_t>(flat[i + 3].number);
    wc.aliased = static_cast<std::uint64_t>(flat[i + 4].number);
    c.counts.push_back(wc);
  }
  return c;
}

void sync_now(std::FILE* f) {
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(fileno(f));
#endif
}

}  // namespace

ExhaustHeader make_exhaust_header(const ExhaustSpec& spec,
                                  const ExhaustPlan& plan, int shard_index,
                                  int shard_count) {
  FLIM_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                   shard_index < shard_count,
               "shard index must be in [0, shard_count)");
  ExhaustHeader h;
  h.codec = spec.codec_expr;
  h.fingerprint = exhaust_fingerprint(spec);
  h.library_version = core::code_fingerprint();
  h.data_seed = spec.data_seed;
  h.burst = spec.burst;
  h.chunk = spec.chunk;
  h.weights = spec.weights;
  h.code_bits = plan.code_bits;
  h.total_chunks = plan.total_chunks;
  h.total_placements = plan.total_placements;
  h.shard_index = shard_index;
  h.shard_count = shard_count;
  return h;
}

bool exhaust_shard_owns(std::uint64_t chunk_index, int shard_index,
                        int shard_count) {
  FLIM_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                   shard_index < shard_count,
               "shard index must be in [0, shard_count)");
  return chunk_index % static_cast<std::uint64_t>(shard_count) ==
         static_cast<std::uint64_t>(shard_index);
}

ExhaustFile ExhaustFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLIM_REQUIRE(in.good(), "cannot open exhaust store: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  ExhaustFile file;
  std::set<std::uint64_t> seen;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: a torn final write; the fragment is
      // dropped and the valid prefix stands.
      file.truncated_tail = true;
      break;
    }
    const std::string line = data.substr(pos, nl - pos);
    const std::size_t line_end = nl + 1;
    if (!have_header) {
      try {
        file.header = parse_header(line);
      } catch (const JsonError& e) {
        FLIM_REQUIRE(false,
                     "bad exhaust-store header in " + path + ": " + e.what);
      }
      FLIM_REQUIRE(file.header.format == kExhaustFormatVersion,
                   "unsupported exhaust-store format version " +
                       std::to_string(file.header.format) + " in " + path);
      have_header = true;
    } else {
      ChunkCounts c;
      try {
        c = parse_chunk(line);
      } catch (const JsonError&) {
        // Corrupt tail: accept the valid prefix, ignore the rest.
        file.truncated_tail = true;
        break;
      }
      FLIM_REQUIRE(c.chunk_index < file.header.total_chunks,
                   "exhaust store " + path + " has an out-of-range chunk");
      if (seen.insert(c.chunk_index).second) {
        file.chunks.push_back(std::move(c));
      }
    }
    file.valid_prefix_bytes = line_end;
    pos = line_end;
  }
  FLIM_REQUIRE(have_header, "exhaust store has no header line: " + path);
  return file;
}

bool ExhaustFile::has(std::uint64_t chunk_index) const {
  for (const ChunkCounts& c : chunks) {
    if (c.chunk_index == chunk_index) return true;
  }
  return false;
}

std::uint64_t ExhaustFile::owned_chunks() const {
  std::uint64_t owned = 0;
  for (std::uint64_t c = 0; c < header.total_chunks; ++c) {
    if (exhaust_shard_owns(c, header.shard_index, header.shard_count)) {
      ++owned;
    }
  }
  return owned;
}

bool ExhaustFile::complete() const {
  return static_cast<std::uint64_t>(chunks.size()) == owned_chunks();
}

void ExhaustStoreWriter::FileCloser::operator()(std::FILE* f) const {
  if (f != nullptr) std::fclose(f);
}

ExhaustStoreWriter::ExhaustStoreWriter()
    : mutex_(std::make_unique<core::Mutex>()) {}

ExhaustStoreWriter::ExhaustStoreWriter(const std::string& path,
                                       const ExhaustHeader& header)
    : path_(path), mutex_(std::make_unique<core::Mutex>()) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  file_.reset(std::fopen(path.c_str(), "wb"));
  FLIM_REQUIRE(file_ != nullptr, "cannot create exhaust store: " + path);
  const core::MutexLock lock(*mutex_);
  const std::string line = header_line(header) + "\n";
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_.get());
  FLIM_REQUIRE(written == line.size(), "short write to exhaust store: " + path);
  sync_now(file_.get());
}

ExhaustStoreWriter ExhaustStoreWriter::resume(const std::string& path,
                                              std::size_t valid_prefix_bytes) {
  FLIM_REQUIRE(std::filesystem::exists(path),
               "cannot resume missing exhaust store: " + path);
  // Drop any torn tail before appending, exactly like the run store: once
  // truncated the file is a clean prefix and future lines land on line
  // boundaries.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_prefix_bytes, ec);
  FLIM_REQUIRE(!ec, "cannot truncate exhaust-store tail: " + path);
  ExhaustStoreWriter w;
  w.path_ = path;
  w.file_.reset(std::fopen(path.c_str(), "ab"));
  FLIM_REQUIRE(w.file_ != nullptr,
               "cannot open exhaust store for append: " + path);
  return w;
}

void ExhaustStoreWriter::append(const ChunkCounts& chunk) {
  const std::string line = chunk_line(chunk) + "\n";
  FLIM_REQUIRE(mutex_ != nullptr, "exhaust-store writer was moved from");
  const core::MutexLock lock(*mutex_);
  FLIM_REQUIRE(file_ != nullptr, "exhaust-store writer is closed");
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_.get());
  FLIM_REQUIRE(written == line.size(),
               "short write to exhaust store: " + path_);
  sync_now(file_.get());
}

ExhaustResult merge_exhaust_files(const std::vector<std::string>& paths) {
  FLIM_REQUIRE(!paths.empty(), "merge needs at least one exhaust store");
  std::vector<ExhaustFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    files.push_back(ExhaustFile::load(path));
  }

  const ExhaustHeader& first = files.front().header;
  for (std::size_t i = 1; i < files.size(); ++i) {
    const ExhaustHeader& h = files[i].header;
    FLIM_REQUIRE(h.fingerprint == first.fingerprint,
                 "exhaust fingerprint mismatch between " + paths[0] + " and " +
                     paths[i]);
  }

  // Rebuild the spec/plan from the (fingerprint-validated) header so the
  // fold checks chunk ranges and weights against the original layout.
  ExhaustSpec spec;
  spec.codec_expr = first.codec;
  spec.weights = first.weights;
  spec.burst = first.burst;
  spec.data_seed = first.data_seed;
  spec.chunk = first.chunk;
  const ExhaustPlan plan = plan_exhaust(spec);

  std::map<std::uint64_t, const ChunkCounts*> merged;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const ChunkCounts& c : files[i].chunks) {
      const auto inserted = merged.emplace(c.chunk_index, &c);
      FLIM_REQUIRE(inserted.second,
                   "overlapping chunk " + std::to_string(c.chunk_index) +
                       " in " + paths[i] +
                       " (shard stores must be disjoint)");
    }
  }
  FLIM_REQUIRE(merged.size() == plan.total_chunks,
               "merged exhaust stores cover " + std::to_string(merged.size()) +
                   " of " + std::to_string(plan.total_chunks) +
                   " chunks (missing shards?)");

  std::vector<ChunkCounts> chunks;
  chunks.reserve(merged.size());
  for (const auto& [index, chunk] : merged) chunks.push_back(*chunk);
  return fold_exhaust_counts(spec, plan, chunks);
}

}  // namespace flim::reliability::ecc

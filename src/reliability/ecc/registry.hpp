// String-keyed ECC codec registry and the codec-expression language.
//
// Every CodecFamily registers under a unique name; campaigns, the scrub,
// and the Pareto report select a configured codec with a declarative
// expression:
//
//   expr  := name | name '(' [param {',' param}] ')'
//   param := key '=' number
//
// e.g. "secded", "hamming(d=64,k=8)", "hsiao(d=64,k=0)", "bch(d=64,t=2)".
// Unlike fault expressions there is no '+' composition: a codeword is
// protected by exactly one code. canonical_codec_expr() renders the parsed
// form with sorted parameters and round-trip number formatting -- the form
// store fingerprints hash, so two spellings of one codec resume each
// other's run files.
//
// configure() caches one immutable Codec instance per canonical expression
// (BCH table construction is not free); returned pointers stay valid for
// the process lifetime, mirroring the FaultRegistry contract.
#pragma once

/// \file
/// String-keyed ECC codec registry and the "name(key=value,...)"
/// codec-expression language with canonical spellings. See docs/ecc.md.

#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "reliability/ecc/codec.hpp"

namespace flim::reliability::ecc {

/// Process-wide codec registry. add() is meant for startup wiring (tests,
/// embedders), but both tables are mutex-guarded so a late registration
/// cannot race the lookups of campaign workers; returned CodecFamily and
/// Codec pointers stay valid for the process lifetime (never removed).
class CodecRegistry {
 public:
  /// The singleton, with the built-in families pre-registered
  /// (hamming, hsiao, bch, secded).
  static CodecRegistry& instance();

  /// Registers a family; rejects duplicate names.
  void add(std::unique_ptr<CodecFamily> family);

  /// Family by name; nullptr when unknown.
  const CodecFamily* find(const std::string& name) const;

  /// Family by name; throws std::invalid_argument naming the known
  /// families when unknown.
  const CodecFamily& get(const std::string& name) const;

  /// All registered families, sorted by name.
  std::vector<const CodecFamily*> families() const;

  /// Parses `expr`, validates it against the named family's schema, and
  /// returns the configured instance -- cached per canonical expression,
  /// so repeated configuration (every campaign point) is a lookup, not a
  /// table build. The reference stays valid for the process lifetime.
  const Codec& configure(const std::string& expr) const;

 private:
  CodecRegistry();
  struct Slot {
    std::string name;
    std::unique_ptr<CodecFamily> family;
  };
  struct Configured {
    std::string canonical;
    std::unique_ptr<Codec> codec;
  };
  /// Unlocked lookup shared by find() and get().
  const CodecFamily* find_locked(const std::string& name) const
      FLIM_REQUIRES(mutex_);

  mutable core::Mutex mutex_;
  std::vector<Slot> slots_ FLIM_GUARDED_BY(mutex_);  // name-sorted
  /// Canonical-expression-keyed instance cache, key-sorted.
  mutable std::vector<Configured> configured_ FLIM_GUARDED_BY(mutex_);
};

/// A parsed (not yet instantiated) codec expression.
struct ParsedCodec {
  /// Registry-owned family (never null).
  const CodecFamily* family = nullptr;
  /// Resolved (validated) parameters.
  ModelParams params;

  /// Canonical expression of this configuration.
  std::string canonical() const;
};

/// Parses a codec expression against the registry; throws
/// std::invalid_argument with the offending token on malformed input,
/// unknown families, or invalid parameters.
ParsedCodec parse_codec_expr(const std::string& expr);

/// parse + canonical in one step (validates `expr` as a side effect).
std::string canonical_codec_expr(const std::string& expr);

}  // namespace flim::reliability::ecc

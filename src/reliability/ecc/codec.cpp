#include "reliability/ecc/codec.hpp"

#include <cmath>

#include "core/check.hpp"
#include "core/report.hpp"

namespace flim::reliability::ecc {

BitVec Codec::correct(const BitVec& code) const {
  const DecodeOutcome outcome = decode(code);
  if (outcome.status == DecodeStatus::kDetected) return code;
  return encode(outcome.data);
}

void CodecFamily::validate(const ModelParams& params) const {
  const CodecInfo& meta = info();
  for (const auto& [key, value] : params.values()) {
    const ParamInfo* declared = nullptr;
    for (const ParamInfo& p : meta.params) {
      if (p.name == key) declared = &p;
    }
    if (declared == nullptr) {
      std::string known;
      for (const ParamInfo& p : meta.params) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      FLIM_REQUIRE(false, "ecc codec '" + meta.name + "' has no parameter '" +
                              key + "' (known: " + known + ")");
    }
    FLIM_REQUIRE(std::isfinite(value) && value >= declared->min_value &&
                     value <= declared->max_value,
                 "ecc codec '" + meta.name + "': parameter '" + key +
                     "' out of range (" + std::to_string(value) + ")");
    FLIM_REQUIRE(!declared->integer || std::floor(value) == value,
                 "ecc codec '" + meta.name + "': parameter '" + key +
                     "' must be a whole number (" + std::to_string(value) +
                     ")");
  }
}

int hamming_parity_bits(int data_bits) {
  FLIM_REQUIRE(data_bits >= 1, "a code needs at least one data bit");
  int m = 2;
  while ((1 << m) < data_bits + m + 1) ++m;
  return m;
}

std::string canonical_codec_text(const std::string& name,
                                 const ModelParams& params) {
  std::string out = name;
  const auto& values = params.values();
  if (!values.empty()) {
    out += "(";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ",";
      out += values[i].first + "=" +
             core::format_double_shortest(values[i].second);
    }
    out += ")";
  }
  return out;
}

}  // namespace flim::reliability::ecc

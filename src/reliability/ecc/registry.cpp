#include "reliability/ecc/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/check.hpp"

namespace flim::reliability::ecc {

// Family constructors live in codecs.cpp / bch.cpp.
std::unique_ptr<CodecFamily> make_hamming_family();
std::unique_ptr<CodecFamily> make_hsiao_family();
std::unique_ptr<CodecFamily> make_secded_family();
std::unique_ptr<CodecFamily> make_bch_family();

CodecRegistry::CodecRegistry() {
  add(make_hamming_family());
  add(make_hsiao_family());
  add(make_secded_family());
  add(make_bch_family());
}

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(std::unique_ptr<CodecFamily> family) {
  FLIM_REQUIRE(family != nullptr, "cannot register a null codec family");
  const std::string& name = family->info().name;
  FLIM_REQUIRE(!name.empty(), "codec family name must be non-empty");
  const core::MutexLock lock(mutex_);
  const auto at = std::lower_bound(
      slots_.begin(), slots_.end(), name,
      [](const Slot& s, const std::string& n) { return s.name < n; });
  FLIM_REQUIRE(at == slots_.end() || at->name != name,
               "ecc codec '" + name + "' is already registered");
  slots_.insert(at, Slot{name, std::move(family)});
}

const CodecFamily* CodecRegistry::find_locked(const std::string& name) const {
  const auto at = std::lower_bound(
      slots_.begin(), slots_.end(), name,
      [](const Slot& s, const std::string& n) { return s.name < n; });
  if (at == slots_.end() || at->name != name) return nullptr;
  return at->family.get();
}

const CodecFamily* CodecRegistry::find(const std::string& name) const {
  const core::MutexLock lock(mutex_);
  return find_locked(name);
}

const CodecFamily& CodecRegistry::get(const std::string& name) const {
  const core::MutexLock lock(mutex_);
  const CodecFamily* family = find_locked(name);
  if (family == nullptr) {
    std::string known;
    for (const Slot& s : slots_) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    FLIM_REQUIRE(false, "unknown ecc codec: '" + name +
                            "' (registered codecs: " + known + ")");
  }
  return *family;
}

std::vector<const CodecFamily*> CodecRegistry::families() const {
  const core::MutexLock lock(mutex_);
  std::vector<const CodecFamily*> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.push_back(s.family.get());
  return out;
}

const Codec& CodecRegistry::configure(const std::string& expr) const {
  // Parse outside the lock (parsing takes the lock for family lookup).
  const ParsedCodec parsed = parse_codec_expr(expr);
  const std::string key = parsed.canonical();

  const core::MutexLock lock(mutex_);
  const auto at = std::lower_bound(
      configured_.begin(), configured_.end(), key,
      [](const Configured& c, const std::string& k) {
        return c.canonical < k;
      });
  if (at != configured_.end() && at->canonical == key) return *at->codec;
  std::unique_ptr<Codec> codec = parsed.family->make(parsed.params);
  FLIM_REQUIRE(codec != nullptr, "codec family '" +
                                     parsed.family->info().name +
                                     "' produced no instance");
  const Codec& ref = *codec;
  configured_.insert(at, Configured{key, std::move(codec)});
  return ref;
}

std::string ParsedCodec::canonical() const {
  return canonical_codec_text(family->info().name, params);
}

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

[[noreturn]] void parse_fail(const std::string& expr, std::size_t pos,
                             const std::string& what) {
  FLIM_REQUIRE(false, "bad codec expression '" + expr + "' at position " +
                          std::to_string(pos) + ": " + what);
  std::abort();  // unreachable; FLIM_REQUIRE(false, ...) always throws
}

}  // namespace

ParsedCodec parse_codec_expr(const std::string& expr) {
  const CodecRegistry& registry = CodecRegistry::instance();
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < expr.size() && (expr[pos] == ' ' || expr[pos] == '\t')) {
      ++pos;
    }
  };
  const auto parse_name = [&]() -> std::string {
    skip_ws();
    const std::size_t begin = pos;
    while (pos < expr.size() && is_name_char(expr[pos])) ++pos;
    if (pos == begin) parse_fail(expr, begin, "expected a codec name");
    return expr.substr(begin, pos - begin);
  };

  skip_ws();
  if (pos >= expr.size()) {
    FLIM_REQUIRE(false, "empty codec expression (expected e.g. "
                        "\"hamming(d=64,k=8)\")");
  }
  const std::size_t name_pos = pos;
  const std::string name = parse_name();
  const CodecFamily* family = registry.find(name);
  if (family == nullptr) {
    std::string known;
    for (const CodecFamily* f : registry.families()) {
      if (!known.empty()) known += ", ";
      known += f->info().name;
    }
    parse_fail(expr, name_pos, "unknown ecc codec '" + name +
                                   "' (registered codecs: " + known + ")");
  }

  std::vector<std::pair<std::string, double>> params;
  skip_ws();
  if (pos < expr.size() && expr[pos] == '(') {
    ++pos;
    skip_ws();
    if (pos < expr.size() && expr[pos] == ')') {
      ++pos;  // empty parameter list
    } else {
      while (true) {
        const std::string key = parse_name();
        skip_ws();
        if (pos >= expr.size() || expr[pos] != '=') {
          parse_fail(expr, pos, "expected '=' after parameter '" + key + "'");
        }
        ++pos;
        skip_ws();
        const char* begin = expr.c_str() + pos;
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        if (end == begin) {
          parse_fail(expr, pos,
                     "expected a number for parameter '" + key + "'");
        }
        pos += static_cast<std::size_t>(end - begin);
        params.emplace_back(key, value);
        skip_ws();
        if (pos < expr.size() && expr[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < expr.size() && expr[pos] == ')') {
          ++pos;
          break;
        }
        parse_fail(expr, pos, "expected ',' or ')' in parameter list");
      }
    }
  }
  skip_ws();
  if (pos < expr.size()) {
    parse_fail(expr, pos, "trailing text after the codec term (a codeword "
                          "is protected by exactly one code; there is no "
                          "'+' composition)");
  }

  ParsedCodec parsed;
  parsed.family = family;
  parsed.params = fault::make_params(std::move(params));
  family->validate(parsed.params);
  return parsed;
}

std::string canonical_codec_expr(const std::string& expr) {
  return parse_codec_expr(expr).canonical();
}

}  // namespace flim::reliability::ecc

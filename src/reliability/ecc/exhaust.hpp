// Exhaustive-enumeration ECC campaigns.
//
// Sampling fault placements answers "how often does the scrub save this
// workload"; it cannot answer "does this codec EVER alias a double error
// into silently wrong data". This module walks EVERY error placement of
// each requested weight through a configured codec -- all C(n, w)
// combinations per codeword (or every contiguous burst window) -- and
// classifies each as corrected, detected, or aliased. The placement space
// is flat-indexed through combinatorial unranking, so it shards over
// processes exactly like campaign grids (chunk % shard_count == shard) and
// chunks checkpoint to a durable JSONL store (exhaust_store.hpp) that
// resumes after a kill and merges shard files into results byte-identical
// to a single-process run.
#pragma once

/// \file
/// Exhaustive-enumeration ECC campaigns: every C(n, w) error placement
/// (or contiguous burst window) classified as corrected/detected/aliased,
/// flat-indexed by combinatorial unranking so the space chunks, shards,
/// checkpoints, and merges like campaign grids. See docs/ecc.md.

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace flim::reliability::ecc {

/// One exhaustive-enumeration request. `weights` are error multiplicities
/// (combination mode) or burst window lengths (burst mode, every window of
/// that many CONSECUTIVE codeword bits flipped). normalize_exhaust_spec()
/// sorts/dedupes weights and canonicalizes the codec expression.
struct ExhaustSpec {
  /// Codec expression (registry.hpp grammar), e.g. "bch(d=64,t=2)".
  std::string codec_expr = "secded";
  /// Error weights (combination mode) or burst lengths (burst mode).
  std::vector<int> weights = {1, 2};
  /// Enumerate contiguous burst windows instead of all combinations.
  bool burst = false;
  /// Seed for the per-placement random data words (each flat placement
  /// index derives an independent word, so results are order-free).
  std::uint64_t data_seed = 2023;
  /// Placements per durable chunk (the checkpoint/shard granule).
  std::uint64_t chunk = 4096;
};

/// Binomial coefficient C(n, r) in exact 64-bit arithmetic; throws
/// std::invalid_argument when the count overflows std::uint64_t (the
/// enumeration would be infeasible anyway).
std::uint64_t ncr(int n, int r);

/// The `rank`-th (0-based, lexicographic) r-subset of {0..n-1} in the
/// combinatorial number system: the inverse of ranking, O(n) per call.
/// Requires rank < ncr(n, r).
std::vector<int> unrank_combination(int n, int r, std::uint64_t rank);

/// Returns `spec` with the codec expression canonicalized (validating it)
/// and weights sorted ascending, deduplicated, and range-checked against
/// the codec's codeword length.
ExhaustSpec normalize_exhaust_spec(const ExhaustSpec& spec);

/// Deterministic text form of a normalized spec -- the string the store
/// fingerprint hashes, so two spellings of one request resume each other's
/// files.
std::string canonical_exhaust_spec(const ExhaustSpec& spec);

/// 16-hex-digit fingerprint of canonical_exhaust_spec() mixed with the
/// code fingerprint; store headers carry it and resume/merge refuse
/// mismatches.
std::string exhaust_fingerprint(const ExhaustSpec& spec);

/// One weight's contiguous block within the flat placement space.
struct WeightBlock {
  /// Error weight (combination mode) or burst length (burst mode).
  int weight = 0;
  /// Flat index of the block's first placement.
  std::uint64_t first = 0;
  /// Number of placements: C(code_bits, weight), or code_bits - weight + 1
  /// in burst mode.
  std::uint64_t placements = 0;
};

/// The flat placement space of a normalized spec: weight blocks
/// concatenated in ascending-weight order, partitioned into fixed-size
/// chunks (the last chunk may be short).
struct ExhaustPlan {
  /// Codeword length of the configured codec.
  int code_bits = 0;
  /// Per-weight blocks in ascending-weight order.
  std::vector<WeightBlock> blocks;
  /// Sum of every block's placements.
  std::uint64_t total_placements = 0;
  /// ceil(total_placements / chunk).
  std::uint64_t total_chunks = 0;
};

/// Lays out the placement space of a NORMALIZED spec.
ExhaustPlan plan_exhaust(const ExhaustSpec& spec);

/// Outcome tallies for one weight (decode verdicts are judged on DATA
/// integrity: a decode that returns the original data bits counts as
/// corrected even if parity cells stay disturbed; an undetected decode to
/// DIFFERENT data is aliased -- the silent-corruption case ECC exists to
/// prevent).
struct WeightCounts {
  /// Error weight (combination mode) or burst length (burst mode).
  int weight = 0;
  /// Placements tallied at this weight.
  std::uint64_t placements = 0;
  /// Placements decoded back to the original data.
  std::uint64_t corrected = 0;
  /// Placements flagged uncorrectable (data not repaired).
  std::uint64_t detected = 0;
  /// Placements silently decoded to DIFFERENT data.
  std::uint64_t aliased = 0;
};

/// Tallies for one chunk of the flat placement space.
struct ChunkCounts {
  /// Position of this chunk in the plan's flat placement space.
  std::uint64_t chunk_index = 0;
  /// Ascending-weight entries for the weights this chunk touches (a chunk
  /// can straddle a block boundary).
  std::vector<WeightCounts> counts;
};

/// Classifies every placement in chunk `chunk_index` of the plan.
/// Deterministic and side-effect free: safe to call from any thread, in
/// any order, on any process.
ChunkCounts run_exhaust_chunk(const ExhaustSpec& spec, const ExhaustPlan& plan,
                              std::uint64_t chunk_index);

/// Aggregated outcome of a complete enumeration.
struct ExhaustResult {
  /// Canonical codec expression.
  std::string codec_expr;
  /// True when burst windows were enumerated instead of combinations.
  bool burst = false;
  /// Codeword length of the configured codec.
  int code_bits = 0;
  /// Ascending-weight totals; placements match the closed-form counts.
  std::vector<WeightCounts> per_weight;

  /// weight/placements/corrected/detected/aliased plus percentage columns.
  /// Built from integer totals only, so merged shards render byte-identical
  /// CSV to a single-process run.
  core::Table to_table() const;
};

/// Folds chunk tallies (every chunk exactly once) into per-weight totals.
ExhaustResult fold_exhaust_counts(const ExhaustSpec& spec,
                                  const ExhaustPlan& plan,
                                  const std::vector<ChunkCounts>& chunks);

/// Runs this shard's chunks of the enumeration, in parallel over `jobs`
/// threads (0 = hardware concurrency). With a non-empty `store_path` the
/// run is durable: an existing store with a matching fingerprint is
/// resumed (finished chunks are skipped), chunks checkpoint as they
/// complete, and the function returns only this shard's totals -- merge
/// the shard files with merge_exhaust_files() for the full result. With an
/// empty path the run is in-memory and must be unsharded.
ExhaustResult run_exhaust(const ExhaustSpec& spec, const std::string& store_path,
                          int shard_index = 0, int shard_count = 1,
                          int jobs = 0);

}  // namespace flim::reliability::ecc

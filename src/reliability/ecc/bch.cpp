// Binary BCH codes over GF(2^m): shortened systematic encoding, and
// syndrome / Berlekamp-Massey / Chien-search decoding. Correction radius t
// is a parameter -- this is the only family in the registry that corrects
// multi-bit errors within one codeword, which is what makes the
// ECC-vs-fault-model Pareto interesting for burst faults.
#include <array>
#include <utility>

#include "core/check.hpp"
#include "reliability/ecc/codec.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::reliability::ecc {

namespace {

/// One primitive polynomial per field degree (bit i = coefficient of x^i,
/// x^m term included), m = 3..14.
constexpr int kMinFieldDegree = 3;
constexpr int kMaxFieldDegree = 14;
constexpr std::array<std::uint32_t, 12> kPrimitivePoly = {
    0b1011,            // m=3:  x^3 + x + 1
    0b10011,           // m=4:  x^4 + x + 1
    0b100101,          // m=5:  x^5 + x^2 + 1
    0b1000011,         // m=6:  x^6 + x + 1
    0b10001001,        // m=7:  x^7 + x^3 + 1
    0b100011101,       // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,      // m=9:  x^9 + x^4 + 1
    0b10000001001,     // m=10: x^10 + x^3 + 1
    0b100000000101,    // m=11: x^11 + x^2 + 1
    0b1000001010011,   // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011,  // m=13: x^13 + x^4 + x^3 + x + 1
    0b100010001000011, // m=14: x^14 + x^10 + x^6 + x + 1
};

/// GF(2^m) with log/antilog tables.
class Field {
 public:
  explicit Field(int m) : m_(m), q_minus_1_((1 << m) - 1) {
    FLIM_REQUIRE(m >= kMinFieldDegree && m <= kMaxFieldDegree,
                 "bch: field degree m must be in [" +
                     std::to_string(kMinFieldDegree) + ", " +
                     std::to_string(kMaxFieldDegree) + "]; got " +
                     std::to_string(m));
    const std::uint32_t poly =
        kPrimitivePoly[static_cast<std::size_t>(m - kMinFieldDegree)];
    alpha_to_.assign(static_cast<std::size_t>(q_minus_1_), 0);
    index_of_.assign(static_cast<std::size_t>(q_minus_1_) + 1, -1);
    std::uint32_t x = 1;
    for (int i = 0; i < q_minus_1_; ++i) {
      alpha_to_[static_cast<std::size_t>(i)] = x;
      index_of_[x] = i;
      x <<= 1;
      if ((x >> m) & 1u) x ^= poly;
    }
    FLIM_ASSERT(x == 1);  // alpha has full order: the polynomial is primitive
  }

  int order() const { return q_minus_1_; }

  /// alpha^e for any integer exponent (reduced mod 2^m - 1).
  std::uint32_t pow_alpha(std::int64_t e) const {
    e %= q_minus_1_;
    if (e < 0) e += q_minus_1_;
    return alpha_to_[static_cast<std::size_t>(e)];
  }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    return pow_alpha(static_cast<std::int64_t>(index_of_[a]) + index_of_[b]);
  }

  std::uint32_t inv(std::uint32_t a) const {
    FLIM_ASSERT(a != 0);
    return pow_alpha(-static_cast<std::int64_t>(index_of_[a]));
  }

 private:
  int m_;
  int q_minus_1_;
  std::vector<std::uint32_t> alpha_to_;
  std::vector<int> index_of_;
};

/// Generator polynomial of the t-error-correcting BCH code over `field`:
/// the product of the distinct minimal polynomials of alpha^i for odd i in
/// 1..2t-1 (even powers share cosets with odd ones). Bit j of the returned
/// coefficient vector entry is unused -- coefficients are GF(2), entries
/// are 0/1.
std::vector<std::uint8_t> bch_generator(const Field& field, int t) {
  // Collect the union of the cyclotomic cosets {i * 2^j mod (2^m - 1)}.
  std::vector<char> root(static_cast<std::size_t>(field.order()), 0);
  for (int i = 1; i <= 2 * t - 1; i += 2) {
    std::int64_t e = i % field.order();
    while (root[static_cast<std::size_t>(e)] == 0) {
      root[static_cast<std::size_t>(e)] = 1;
      e = (e * 2) % field.order();
    }
  }
  // g(x) = product over marked exponents e of (x + alpha^e), computed with
  // GF(2^m) coefficients; the result must collapse to GF(2).
  std::vector<std::uint32_t> g = {1};
  for (int e = 0; e < field.order(); ++e) {
    if (root[static_cast<std::size_t>(e)] == 0) continue;
    const std::uint32_t a = field.pow_alpha(e);
    g.push_back(0);
    for (std::size_t j = g.size() - 1; j > 0; --j) {
      g[j] = g[j - 1] ^ field.mul(g[j], a);
    }
    g[0] = field.mul(g[0], a);
  }
  std::vector<std::uint8_t> out(g.size());
  for (std::size_t j = 0; j < g.size(); ++j) {
    FLIM_ASSERT(g[j] <= 1);  // conjugate-closed root set => binary coefficients
    out[j] = static_cast<std::uint8_t>(g[j]);
  }
  FLIM_ASSERT(out.back() == 1);
  return out;
}

/// Smallest field degree that fits d data bits plus (at most m*t) parity
/// bits into the 2^m - 1 code length.
int bch_auto_field_degree(int data_bits, int t) {
  for (int m = kMinFieldDegree; m <= kMaxFieldDegree; ++m) {
    if ((1 << m) - 1 >= data_bits + m * t) return m;
  }
  FLIM_REQUIRE(false, "bch: no field degree up to " +
                          std::to_string(kMaxFieldDegree) + " fits d=" +
                          std::to_string(data_bits) + ", t=" +
                          std::to_string(t));
  return 0;
}

/// Shortened systematic BCH codeword layout: vector indices 0..d-1 are the
/// data bits, d..d+r-1 the parity bits (r = deg g). In polynomial terms
/// data bit i is the coefficient of x^(r+i) and parity bit j of x^j, so
/// the codeword polynomial is divisible by g(x).
class BchCodec : public Codec {
 public:
  BchCodec(std::string canonical, int data_bits, int t, int m)
      : family_("bch"),
        canonical_(std::move(canonical)),
        t_(t),
        field_(m),
        generator_(bch_generator(field_, t)) {
    const int r = static_cast<int>(generator_.size()) - 1;
    FLIM_REQUIRE(data_bits + r <= field_.order(),
                 "bch: d=" + std::to_string(data_bits) + ", t=" +
                     std::to_string(t) + " needs " + std::to_string(r) +
                     " parity bits and does not fit GF(2^" +
                     std::to_string(m) + ")'s code length " +
                     std::to_string(field_.order()) +
                     "; raise m or shrink d");
    capability_.data_bits = data_bits;
    capability_.parity_bits = r;
    capability_.code_bits = data_bits + r;
    capability_.correct_guarantee = t;
    // Weight t+1..2t errors land outside every radius-t ball around the
    // true codeword but may fall inside another's: bounded-distance
    // decoding can miscorrect them, so only weight <= t is guaranteed
    // flagged-or-fixed. exhaust.hpp measures the aliasing rate beyond t.
    capability_.detect_guarantee = t;
  }

  const std::string& family() const override { return family_; }
  const std::string& canonical() const override { return canonical_; }
  const Capability& capability() const override { return capability_; }
  CostModel cost() const override {
    // Each of the 2t syndromes is one multiply-accumulate per code bit.
    return CostModel{capability_.data_bits, capability_.parity_bits,
                     static_cast<std::int64_t>(2 * t_) *
                         capability_.code_bits};
  }

  BitVec encode(const BitVec& data) const override {
    FLIM_REQUIRE(data.size() ==
                     static_cast<std::size_t>(capability_.data_bits),
                 canonical_ + ": expected " +
                     std::to_string(capability_.data_bits) +
                     " data bits, got " + std::to_string(data.size()));
    const int r = capability_.parity_bits;
    // remainder of x^r * data(x) mod g(x), synthetic long division.
    std::vector<std::uint8_t> rem(static_cast<std::size_t>(r), 0);
    for (std::size_t i = data.size(); i-- > 0;) {
      const std::uint8_t feedback =
          static_cast<std::uint8_t>(data[i] ^ rem[static_cast<std::size_t>(r) - 1]);
      for (std::size_t j = static_cast<std::size_t>(r) - 1; j > 0; --j) {
        rem[j] = static_cast<std::uint8_t>(rem[j - 1] ^
                                           (feedback & generator_[j]));
      }
      rem[0] = static_cast<std::uint8_t>(feedback & generator_[0]);
    }
    BitVec code(static_cast<std::size_t>(capability_.code_bits), 0);
    for (std::size_t i = 0; i < data.size(); ++i) code[i] = data[i];
    for (int j = 0; j < r; ++j) {
      code[data.size() + static_cast<std::size_t>(j)] =
          rem[static_cast<std::size_t>(j)];
    }
    return code;
  }

  DecodeOutcome decode(const BitVec& code) const override {
    FLIM_REQUIRE(code.size() ==
                     static_cast<std::size_t>(capability_.code_bits),
                 canonical_ + ": expected " +
                     std::to_string(capability_.code_bits) +
                     " code bits, got " + std::to_string(code.size()));
    DecodeOutcome out;
    out.data.assign(code.begin(),
                    code.begin() + capability_.data_bits);

    // Syndromes S_j = sum over set bits (at polynomial degree e) of
    // alpha^(j*e), j = 1..2t.
    std::vector<std::uint32_t> syn(static_cast<std::size_t>(2 * t_), 0);
    bool any = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] == 0) continue;
      const std::int64_t e = degree_of(i);
      for (int j = 1; j <= 2 * t_; ++j) {
        syn[static_cast<std::size_t>(j - 1)] ^= field_.pow_alpha(j * e);
      }
    }
    for (const std::uint32_t s : syn) any = any || (s != 0);
    if (!any) {
      out.status = DecodeStatus::kClean;
      return out;
    }

    // Berlekamp-Massey: the shortest LFSR sigma(x) generating the
    // syndrome sequence is the error-locator polynomial.
    std::vector<std::uint32_t> sigma = {1};
    std::vector<std::uint32_t> prev = {1};
    int len = 0;
    int shift = 1;
    std::uint32_t prev_disc = 1;
    for (int n = 0; n < 2 * t_; ++n) {
      std::uint32_t disc = syn[static_cast<std::size_t>(n)];
      for (int i = 1; i <= len; ++i) {
        if (static_cast<std::size_t>(i) < sigma.size()) {
          disc ^= field_.mul(sigma[static_cast<std::size_t>(i)],
                             syn[static_cast<std::size_t>(n - i)]);
        }
      }
      if (disc == 0) {
        ++shift;
        continue;
      }
      const std::uint32_t scale = field_.mul(disc, field_.inv(prev_disc));
      std::vector<std::uint32_t> next = sigma;
      if (next.size() < prev.size() + static_cast<std::size_t>(shift)) {
        next.resize(prev.size() + static_cast<std::size_t>(shift), 0);
      }
      for (std::size_t i = 0; i < prev.size(); ++i) {
        next[i + static_cast<std::size_t>(shift)] ^=
            field_.mul(scale, prev[i]);
      }
      if (2 * len <= n) {
        prev = std::move(sigma);
        prev_disc = disc;
        len = n + 1 - len;
        shift = 1;
      } else {
        ++shift;
      }
      sigma = std::move(next);
    }
    while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
    const int degree = static_cast<int>(sigma.size()) - 1;
    if (len > t_ || degree != len) {
      out.status = DecodeStatus::kDetected;
      return out;
    }

    // Chien search over the shortened positions only: sigma's roots are
    // alpha^(-e) for each error degree e.
    std::vector<std::size_t> flips;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::int64_t e = degree_of(i);
      std::uint32_t value = 0;
      for (std::size_t j = 0; j < sigma.size(); ++j) {
        value ^= field_.mul(
            sigma[j], field_.pow_alpha(-e * static_cast<std::int64_t>(j)));
      }
      if (value == 0) flips.push_back(i);
    }
    if (static_cast<int>(flips.size()) != degree) {
      // Locator roots outside the shortened code (or repeated): the error
      // pattern exceeds the correction radius.
      out.status = DecodeStatus::kDetected;
      return out;
    }
    for (const std::size_t i : flips) {
      if (i < static_cast<std::size_t>(capability_.data_bits)) {
        out.data[i] ^= 1;
      }
    }
    out.status = DecodeStatus::kCorrected;
    return out;
  }

 private:
  /// Polynomial degree of codeword vector index i (see class comment).
  std::int64_t degree_of(std::size_t i) const {
    const auto d = static_cast<std::size_t>(capability_.data_bits);
    const auto r = static_cast<std::int64_t>(capability_.parity_bits);
    if (i < d) return r + static_cast<std::int64_t>(i);
    return static_cast<std::int64_t>(i - d);
  }

  std::string family_;
  std::string canonical_;
  int t_;
  Field field_;
  std::vector<std::uint8_t> generator_;  // g(x) coefficients, GF(2)
  Capability capability_;
};

class BchFamily : public CodecFamily {
 public:
  BchFamily() {
    info_.name = "bch";
    info_.summary =
        "shortened binary BCH: corrects any t errors per codeword "
        "(Berlekamp-Massey + Chien decoding)";
    info_.params = {
        {"d", 64.0, 1.0, 1024.0, true, "data bits per codeword"},
        {"t", 2.0, 1.0, 8.0, true, "correctable errors per codeword"},
        {"m", 0.0, 0.0, 14.0, true,
         "GF(2^m) field degree (0 auto-sizes to the smallest fit)"},
    };
  }

  const CodecInfo& info() const override { return info_; }

  void validate(const ModelParams& params) const override {
    CodecFamily::validate(params);
    const int d = static_cast<int>(params.get("d", 64.0));
    const int t = static_cast<int>(params.get("t", 2.0));
    const int m = static_cast<int>(params.get("m", 0.0));
    if (m != 0) {
      FLIM_REQUIRE(m >= kMinFieldDegree,
                   "bch: field degree m must be 0 (auto) or >= " +
                       std::to_string(kMinFieldDegree) + "; got " +
                       std::to_string(m));
      FLIM_REQUIRE((1 << m) - 1 >= d + m * t,
                   "bch: GF(2^" + std::to_string(m) + ") code length " +
                       std::to_string((1 << m) - 1) + " cannot fit d=" +
                       std::to_string(d) + " plus up to " +
                       std::to_string(m * t) + " parity bits");
    } else {
      bch_auto_field_degree(d, t);  // throws when nothing up to m=14 fits
    }
  }

  std::unique_ptr<Codec> make(const ModelParams& params) const override {
    const int d = static_cast<int>(params.get("d", 64.0));
    const int t = static_cast<int>(params.get("t", 2.0));
    int m = static_cast<int>(params.get("m", 0.0));
    if (m == 0) m = bch_auto_field_degree(d, t);
    return std::make_unique<BchCodec>(canonical_codec_text(info_.name, params),
                                      d, t, m);
  }

 private:
  CodecInfo info_;
};

}  // namespace

std::unique_ptr<CodecFamily> make_bch_family() {
  return std::make_unique<BchFamily>();
}

}  // namespace flim::reliability::ecc

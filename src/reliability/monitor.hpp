// Online concurrent fault monitoring via canary XNOR self-tests.
//
// The paper's conclusion asks for "strategies able to monitor [...]
// applications' degradation during their lifetime". Offline March tests
// (march.hpp) require taking the array out of service; an online monitor
// instead steals short idle windows between inferences and executes a few
// *canary* XNOR operations with known operands on a rotating subset of the
// virtual op-slot grid, comparing against the golden truth table. Each
// canary slot is exercised with a matching and a mismatching operand pair,
// so a bit-flip, stuck-at-0 or stuck-at-1 slot is always observable when
// visited. The model therefore reduces to *when* a faulty slot is first
// visited -- which is exactly the detection-latency/overhead trade-off the
// bench sweeps.
#pragma once

#include <cstdint>

#include "fault/fault_mask.hpp"
#include "lim/mapper.hpp"

namespace flim::reliability {

/// How canary slots are chosen each test round.
enum class CanaryPolicy : std::uint8_t {
  kRoundRobin = 0,  // deterministic sweep; bounded worst-case latency
  kRandom,          // uniform random slots; memoryless, geometric latency
};

/// Configuration of one online monitor instance.
struct MonitorConfig {
  /// Virtual op-slot grid being monitored (matches the fault masks).
  lim::CrossbarGeometry grid;
  /// A canary round runs after every `test_period` inferences.
  int test_period = 8;
  /// Slots probed per round. Each probe costs two canary XNOR ops (match +
  /// mismatch pattern).
  int slots_per_round = 16;
  CanaryPolicy policy = CanaryPolicy::kRoundRobin;
  /// Randomness for kRandom slot draws and the round-robin start offset.
  std::uint64_t seed = 1;
};

/// Result of running the monitor against one fault mask.
struct DetectionOutcome {
  bool detected = false;
  /// Inferences executed up to and including the detecting round; equals
  /// the simulation horizon when undetected.
  std::int64_t inferences_elapsed = 0;
  /// Total canary XNOR ops spent (2 per probed slot).
  std::int64_t canary_ops_spent = 0;
  /// Flat slot index of the first faulty slot probed (-1 if none).
  std::int64_t detecting_slot = -1;
};

/// Simulates the canary monitor against a static fault mask.
///
/// The monitor is oblivious to the mask; the simulation advances inference
/// count, fires a canary round every `test_period` inferences, and stops at
/// the first round that probes a slot marked faulty in any plane of `mask`
/// (or at `max_inferences`).
class OnlineMonitor {
 public:
  explicit OnlineMonitor(MonitorConfig config);

  const MonitorConfig& config() const { return config_; }

  /// Canary ops spent per inference on average (steady-state overhead).
  double overhead_ops_per_inference() const;

  /// Runs until detection or until `max_inferences` have elapsed.
  DetectionOutcome run_until_detection(const fault::FaultMask& mask,
                                       std::int64_t max_inferences) const;

 private:
  MonitorConfig config_;
};

}  // namespace flim::reliability

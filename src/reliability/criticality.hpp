// Fine-grained criticality analysis of virtual-crossbar columns.
//
// The paper's headline is a "fine-grained fault injection methodology";
// this module turns that granularity into an actionable reliability tool:
// it measures, column by column, how much accuracy a fully faulty virtual
// column costs a given layer (Fig 4d showed columns are the damaging axis),
// ranks the columns, and quantifies how much of the damage *selective
// hardening* of the top-k columns (spare columns, per-column ECC) recovers
// compared to hardening k random columns -- the design decision this
// analysis exists to inform.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bnn/model.hpp"
#include "data/dataset.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"

namespace flim::reliability {

/// Accuracy cost of one fully faulty virtual column.
struct ColumnCriticality {
  std::int64_t column = 0;
  /// Mean accuracy over the repetitions with only this column faulty.
  double accuracy = 0.0;
  /// clean_accuracy - accuracy.
  double drop = 0.0;
};

/// Per-layer criticality ranking.
struct CriticalityReport {
  std::string layer_name;
  double clean_accuracy = 0.0;
  /// One entry per virtual column, sorted by descending drop.
  std::vector<ColumnCriticality> columns;
};

/// Analysis configuration.
struct CriticalityConfig {
  /// Virtual grid of the faulted layer (Fig 4d uses 40x10).
  lim::CrossbarGeometry grid{40, 10};
  /// Fault kind a column fails with (stuck-at in the Fig 4d scenario; the
  /// stuck polarity is drawn per repetition).
  fault::FaultKind kind = fault::FaultKind::kStuckAt;
  /// Repetitions per column (stuck polarities / flip interactions differ
  /// per seed).
  int repetitions = 8;
  std::uint64_t master_seed = 2023;
};

/// Measures the accuracy cost of each virtual column of `layer_name`.
CriticalityReport rank_columns(const bnn::Model& model,
                               const data::Batch& batch,
                               const std::string& layer_name,
                               const CriticalityConfig& config);

/// Outcome of a selective-hardening experiment.
struct HardeningOutcome {
  double faulty_accuracy = 0.0;      // k random columns faulty, no hardening
  double random_hardening = 0.0;     // k of 2k faulty columns repaired,
                                     // chosen at random
  double guided_hardening = 0.0;     // the k most critical repaired instead
};

/// Fault scenario: `2k` columns of `layer_name` fail; a hardening budget
/// repairs `k` of them. Compares choosing the repaired columns by the
/// criticality ranking against choosing them at random, averaged over
/// config.repetitions fault draws.
HardeningOutcome evaluate_selective_hardening(
    const bnn::Model& model, const data::Batch& batch,
    const std::string& layer_name, const CriticalityReport& report,
    int hardening_budget, const CriticalityConfig& config);

}  // namespace flim::reliability

// SEC-DED error-correcting codes over crossbar-stored weight planes.
//
// The paper's conclusion argues that reliable LIM deployments need
// mitigation on top of fault tolerance. The classical memory-side answer is
// an extended Hamming (SEC-DED) code: weight cells are grouped into code
// words, spare cells hold parity, and a scrubbing pass corrects any word
// with a single faulty cell. In LIM the *computation* happens in place, so
// ECC protects the stored weights between operations (via scrubbing), not
// the XNOR evaluation itself -- which is exactly how we model it: an ECC
// scrub transforms a fault mask into the residual mask of uncorrectable
// words.
//
// This header keeps the original hardwired (72,64) codec and scrub entry
// points. The generalized codec subsystem -- registry-resolved Hamming /
// Hsiao / BCH families, exhaustive error enumeration, cost models -- lives
// in reliability/ecc/ (see docs/ecc.md); the word walk itself moved to
// fault/residual.hpp and apply_secded_scrub delegates to it with a
// correction radius of 1, bit-identically.
#pragma once

#include <cstdint>

#include "fault/fault_mask.hpp"

namespace flim::reliability {

/// Extended Hamming (72,64) codec: 64 data bits, 7 Hamming parity bits and
/// one overall parity bit -- single-error correction, double-error
/// detection. Bit positions follow the classical 1-based layout with parity
/// at power-of-two positions.
class SecDedCodec {
 public:
  static constexpr int kDataBits = 64;
  static constexpr int kParityBits = 8;  // 7 Hamming + 1 overall
  static constexpr int kCodeBits = kDataBits + kParityBits;

  /// A 72-bit codeword: data plus the packed parity byte (bit 0 = overall
  /// parity, bits 1..7 = Hamming parity p1..p64).
  struct Codeword {
    std::uint64_t data = 0;
    std::uint8_t parity = 0;
  };

  /// Decode verdicts.
  enum class Status : std::uint8_t {
    kClean = 0,           // no error
    kCorrectedSingle,     // one bit flipped; corrected
    kDetectedDouble,      // two bits flipped; detected, NOT corrected
  };

  struct DecodeResult {
    std::uint64_t data = 0;
    Status status = Status::kClean;
  };

  Codeword encode(std::uint64_t data) const;

  /// Decodes a (possibly corrupted) codeword. Single-bit errors anywhere in
  /// the 72 bits (data or parity) are corrected; double-bit errors are
  /// flagged. Three or more errors may alias (inherent to SEC-DED).
  DecodeResult decode(const Codeword& word) const;
};

/// Word-organization options for the mask-level scrub model.
struct EccOptions {
  /// Data cells per code word.
  int word_bits = 64;
  /// Bit interleaving degree: adjacent cells of a row belong to `interleave`
  /// different code words, so a physical burst (e.g. a damaged row segment)
  /// spreads across words and stays correctable. 1 = no interleaving.
  int interleave = 1;
};

/// Outcome counters of one ECC scrub pass.
struct EccScrubStats {
  std::int64_t words = 0;
  std::int64_t clean_words = 0;
  std::int64_t corrected_words = 0;       // exactly one faulty cell
  std::int64_t uncorrectable_words = 0;   // two or more faulty cells
  std::int64_t faulty_bits_before = 0;
  std::int64_t faulty_bits_after = 0;

  /// Parity storage overhead of the configured code: the SEC-DED parity
  /// cells a word of `options.word_bits` data cells needs (the Hamming
  /// parity count for that width plus the overall bit -- 8 for 64-bit
  /// words, 7 for 32-bit words), NOT a constant: narrower words pay
  /// proportionally more.
  double overhead(const EccOptions& options) const;
};

/// Models a SEC-DED scrubbing pass over a fault mask: cells of each grid
/// row are grouped into code words (honoring `interleave`); every word with
/// exactly one faulty cell (any plane) is repaired -- its faults are cleared
/// from the returned mask -- and words with two or more keep their faults.
/// Parity cells are modeled as fault-free spare columns (the optimistic
/// textbook assumption; DESIGN.md documents it).
fault::FaultMask apply_secded_scrub(const fault::FaultMask& mask,
                                    const EccOptions& options = {},
                                    EccScrubStats* stats = nullptr);

}  // namespace flim::reliability

#include "reliability/ecc.hpp"

#include <array>
#include <bit>

#include "core/check.hpp"
#include "fault/residual.hpp"
#include "reliability/ecc/codec.hpp"

namespace flim::reliability {

namespace {

// Code-bit layout: 1-based positions 1..71; parity bits sit at the seven
// power-of-two positions {1,2,4,8,16,32,64}; the 64 data bits fill the
// remaining positions in ascending order. Position 0 (the 72nd bit) holds
// the overall parity of all other bits.
constexpr int kCodePositions = 71;

bool is_power_of_two(int x) { return (x & (x - 1)) == 0; }

/// data bit index -> 1-based code position (built once).
const std::array<int, SecDedCodec::kDataBits>& data_positions() {
  static const std::array<int, SecDedCodec::kDataBits> table = [] {
    std::array<int, SecDedCodec::kDataBits> t{};
    int next = 0;
    for (int pos = 1; pos <= kCodePositions; ++pos) {
      if (!is_power_of_two(pos)) t[static_cast<std::size_t>(next++)] = pos;
    }
    FLIM_ASSERT(next == SecDedCodec::kDataBits);
    return t;
  }();
  return table;
}

/// 1-based code position -> data bit index, or -1 for parity positions.
const std::array<int, kCodePositions + 1>& position_to_data() {
  static const std::array<int, kCodePositions + 1> table = [] {
    std::array<int, kCodePositions + 1> t{};
    t.fill(-1);
    const auto& dp = data_positions();
    for (int i = 0; i < SecDedCodec::kDataBits; ++i) {
      t[static_cast<std::size_t>(dp[static_cast<std::size_t>(i)])] = i;
    }
    return t;
  }();
  return table;
}

/// XOR of the 1-based positions of all set data bits, plus the stored
/// Hamming parity bits: zero for an intact word.
int syndrome_of(std::uint64_t data, std::uint8_t parity) {
  int syn = 0;
  const auto& dp = data_positions();
  for (int i = 0; i < SecDedCodec::kDataBits; ++i) {
    if ((data >> i) & 1ull) syn ^= dp[static_cast<std::size_t>(i)];
  }
  for (int p = 0; p < 7; ++p) {
    if ((parity >> (p + 1)) & 1) syn ^= 1 << p;
  }
  return syn;
}

bool overall_parity_of(std::uint64_t data, std::uint8_t parity) {
  const int ones = std::popcount(data) + std::popcount(
                       static_cast<unsigned>(parity));
  return (ones & 1) != 0;
}

}  // namespace

SecDedCodec::Codeword SecDedCodec::encode(std::uint64_t data) const {
  Codeword w;
  w.data = data;
  // Hamming parity bit p_k (k = 0..6) covers positions with bit k set.
  int syn = 0;
  const auto& dp = data_positions();
  for (int i = 0; i < kDataBits; ++i) {
    if ((data >> i) & 1ull) syn ^= dp[static_cast<std::size_t>(i)];
  }
  for (int p = 0; p < 7; ++p) {
    if ((syn >> p) & 1) w.parity |= static_cast<std::uint8_t>(1 << (p + 1));
  }
  // Overall parity makes the popcount of the whole codeword even.
  if (overall_parity_of(w.data, w.parity)) w.parity |= 1;
  return w;
}

SecDedCodec::DecodeResult SecDedCodec::decode(const Codeword& word) const {
  DecodeResult result;
  result.data = word.data;
  const int syn = syndrome_of(word.data, word.parity);
  const bool parity_mismatch = overall_parity_of(word.data, word.parity);

  if (syn == 0 && !parity_mismatch) {
    result.status = Status::kClean;
    return result;
  }
  if (parity_mismatch) {
    if (syn == 0) {
      // The overall parity bit itself flipped; data is intact.
      result.status = Status::kCorrectedSingle;
      return result;
    }
    if (syn > kCodePositions) {
      // No single-bit error produces a syndrome beyond the code length;
      // this is >= 3 errors. Report detection rather than miscorrect.
      result.status = Status::kDetectedDouble;
      return result;
    }
    // Odd error count with a valid position; SEC assumes one and corrects.
    result.status = Status::kCorrectedSingle;
    const int data_index =
        position_to_data()[static_cast<std::size_t>(syn)];
    if (data_index >= 0) {
      result.data ^= 1ull << data_index;
    }
    // else: a Hamming parity bit flipped; data is intact.
    return result;
  }
  // Non-zero syndrome with intact overall parity: even error count.
  result.status = Status::kDetectedDouble;
  return result;
}

double EccScrubStats::overhead(const EccOptions& options) const {
  FLIM_REQUIRE(options.word_bits > 0, "word_bits must be positive");
  // Hamming parity for the configured width plus the overall bit -- NOT
  // the (72,64) constant: a 32-bit organization needs 6+1 parity cells.
  const int parity = ecc::hamming_parity_bits(options.word_bits) + 1;
  return static_cast<double>(parity) / static_cast<double>(options.word_bits);
}

fault::FaultMask apply_secded_scrub(const fault::FaultMask& mask,
                                    const EccOptions& options,
                                    EccScrubStats* stats) {
  // The word walk is codec-agnostic and lives in fault/residual.hpp;
  // SEC-DED is the radius-1 configuration of it (bit-identical to the
  // historical inline loop).
  fault::ResidualOptions residual_options;
  residual_options.word_bits = options.word_bits;
  residual_options.interleave = options.interleave;
  residual_options.correct_per_word = 1;
  fault::ResidualStats residual_stats;
  fault::FaultMask residual =
      fault::apply_word_residual(mask, residual_options, &residual_stats);
  if (stats != nullptr) {
    stats->words = residual_stats.words;
    stats->clean_words = residual_stats.clean_words;
    stats->corrected_words = residual_stats.corrected_words;
    stats->uncorrectable_words = residual_stats.uncorrectable_words;
    stats->faulty_bits_before = residual_stats.faulty_bits_before;
    stats->faulty_bits_after = residual_stats.faulty_bits_after;
  }
  return residual;
}

}  // namespace flim::reliability

#include "reliability/march.hpp"

#include <sstream>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace flim::reliability {

namespace {

MarchElement element(AddressOrder order, std::vector<MarchOp> ops) {
  MarchElement e;
  e.order = order;
  e.ops = std::move(ops);
  return e;
}

}  // namespace

int MarchTest::ops_per_cell() const {
  int n = 0;
  for (const auto& e : elements) n += static_cast<int>(e.ops.size());
  return n;
}

std::string MarchTest::notation() const {
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) os << "; ";
    switch (elements[i].order) {
      case AddressOrder::kAscending: os << "U("; break;
      case AddressOrder::kDescending: os << "D("; break;
      case AddressOrder::kAny: os << "#("; break;
    }
    for (std::size_t j = 0; j < elements[i].ops.size(); ++j) {
      if (j > 0) os << ",";
      os << to_string(elements[i].ops[j]);
    }
    os << ")";
  }
  os << " }";
  return os.str();
}

MarchTest mats_plus() {
  MarchTest t;
  t.name = "MATS+";
  t.elements = {
      element(AddressOrder::kAny, {MarchOp::kW0}),
      element(AddressOrder::kAscending, {MarchOp::kR0, MarchOp::kW1}),
      element(AddressOrder::kDescending, {MarchOp::kR1, MarchOp::kW0}),
  };
  return t;
}

MarchTest march_x() {
  MarchTest t;
  t.name = "March X";
  t.elements = {
      element(AddressOrder::kAny, {MarchOp::kW0}),
      element(AddressOrder::kAscending, {MarchOp::kR0, MarchOp::kW1}),
      element(AddressOrder::kDescending, {MarchOp::kR1, MarchOp::kW0}),
      element(AddressOrder::kAny, {MarchOp::kR0}),
  };
  return t;
}

MarchTest march_cminus() {
  MarchTest t;
  t.name = "March C-";
  t.elements = {
      element(AddressOrder::kAny, {MarchOp::kW0}),
      element(AddressOrder::kAscending, {MarchOp::kR0, MarchOp::kW1}),
      element(AddressOrder::kAscending, {MarchOp::kR1, MarchOp::kW0}),
      element(AddressOrder::kDescending, {MarchOp::kR0, MarchOp::kW1}),
      element(AddressOrder::kDescending, {MarchOp::kR1, MarchOp::kW0}),
      element(AddressOrder::kAny, {MarchOp::kR0}),
  };
  return t;
}

MarchTest march_raw1() {
  MarchTest t;
  t.name = "March RAW1";
  t.elements = {
      element(AddressOrder::kAny, {MarchOp::kW0}),
      element(AddressOrder::kAscending,
              {MarchOp::kR0, MarchOp::kR0, MarchOp::kR0, MarchOp::kR0,
               MarchOp::kW1}),
      element(AddressOrder::kDescending,
              {MarchOp::kR1, MarchOp::kR1, MarchOp::kR1, MarchOp::kR1,
               MarchOp::kW0}),
      element(AddressOrder::kAny, {MarchOp::kR0}),
  };
  return t;
}

const std::vector<MarchTest>& standard_march_tests() {
  static const std::vector<MarchTest> tests{mats_plus(), march_x(),
                                            march_cminus(), march_raw1()};
  return tests;
}

MarchResult run_march(const MarchTest& test, lim::CrossbarArray& array) {
  FLIM_REQUIRE(!test.elements.empty(), "March test has no elements");
  const std::int64_t n = array.rows() * array.cols();
  MarchResult result;

  for (std::size_t ei = 0; ei < test.elements.size(); ++ei) {
    const MarchElement& e = test.elements[ei];
    FLIM_REQUIRE(!e.ops.empty(), "March element has no operations");
    const bool descending = e.order == AddressOrder::kDescending;
    for (std::int64_t a = 0; a < n; ++a) {
      const std::int64_t addr = descending ? n - 1 - a : a;
      const std::int64_t r = addr / array.cols();
      const std::int64_t c = addr % array.cols();
      for (std::size_t oi = 0; oi < e.ops.size(); ++oi) {
        ++result.ops_executed;
        switch (e.ops[oi]) {
          case MarchOp::kW0:
            array.write_bit(r, c, false);
            break;
          case MarchOp::kW1:
            array.write_bit(r, c, true);
            break;
          case MarchOp::kR0:
          case MarchOp::kR1: {
            const bool expected = e.ops[oi] == MarchOp::kR1;
            const bool got = array.read_bit(r, c);
            if (got != expected &&
                result.failures.size() < kMaxRecordedFailures) {
              result.failures.push_back(MarchFailure{
                  r, c, static_cast<int>(ei), static_cast<int>(oi), expected,
                  got});
            }
            break;
          }
        }
      }
    }
  }
  return result;
}

std::vector<CoverageRow> evaluate_coverage(const MarchTest& test,
                                           const CoverageConfig& config) {
  FLIM_REQUIRE(config.samples_per_kind > 0,
               "coverage needs at least one sample per kind");
  core::Rng rng(config.seed);
  std::vector<CoverageRow> rows;
  for (const lim::DeviceFaultKind kind : lim::all_device_fault_kinds()) {
    CoverageRow row;
    row.kind = kind;
    for (int s = 0; s < config.samples_per_kind; ++s) {
      lim::CrossbarArray array(config.crossbar);
      const std::int64_t r =
          static_cast<std::int64_t>(rng.uniform(
              static_cast<std::uint64_t>(array.rows())));
      const std::int64_t c =
          static_cast<std::int64_t>(rng.uniform(
              static_cast<std::uint64_t>(array.cols())));
      array.inject_device_fault(r, c, kind, config.severity);
      const MarchResult result = run_march(test, array);
      ++row.injected;
      if (result.detected()) ++row.detected;
    }
    rows.push_back(row);
  }
  return rows;
}

std::string to_string(MarchOp op) {
  switch (op) {
    case MarchOp::kW0: return "w0";
    case MarchOp::kW1: return "w1";
    case MarchOp::kR0: return "r0";
    case MarchOp::kR1: return "r1";
  }
  return "?";
}

std::string to_string(AddressOrder order) {
  switch (order) {
    case AddressOrder::kAscending: return "ascending";
    case AddressOrder::kDescending: return "descending";
    case AddressOrder::kAny: return "any";
  }
  return "?";
}

}  // namespace flim::reliability

// March tests for memristive memories.
//
// The paper's conclusion calls for "strategies able to monitor and/or
// mitigate applications' degradation during their lifetime"; March tests
// are the workhorse of that monitoring in the memory-test literature the
// paper builds on (Kannan et al. TCAD'15, Chen et al. VTS'15, the DRAM
// March survey it cites for dynamic faults). A March test is a sequence of
// March elements, each applying a fixed operation string to every cell in a
// prescribed address order; classical algorithms (MATS+, March X, March C-)
// and a ReRAM-oriented repeated-read variant (March RAW1) are provided, and
// an evaluator measures their coverage of the device-fault taxonomy of
// lim::DeviceFaultKind.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lim/crossbar.hpp"
#include "lim/memristor.hpp"

namespace flim::reliability {

/// One primitive March operation applied to the current cell.
enum class MarchOp : std::uint8_t {
  kW0 = 0,  // write logic 0
  kW1,      // write logic 1
  kR0,      // read, expect logic 0
  kR1,      // read, expect logic 1
};

/// Address traversal order of one March element. kAny means the algorithm
/// is order-insensitive for this element (executed ascending).
enum class AddressOrder : std::uint8_t { kAscending = 0, kDescending, kAny };

/// One March element: an operation string applied to every cell in order.
struct MarchElement {
  AddressOrder order = AddressOrder::kAny;
  std::vector<MarchOp> ops;
};

/// A complete March test.
struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  /// Operations applied to each cell over the whole test: the xN complexity
  /// figure of the test literature (March C- = 10, MATS+ = 5, ...).
  int ops_per_cell() const;

  /// Standard curly-brace notation, e.g. "{ #(w0); U(r0,w1); D(r1,w0) }".
  std::string notation() const;
};

/// MATS+ -- {#(w0); U(r0,w1); D(r1,w0)}, 5N. Detects all address decoder
/// and stuck-at faults; misses some transition faults.
MarchTest mats_plus();

/// March X -- {#(w0); U(r0,w1); D(r1,w0); #(r0)}, 6N. Adds the final read
/// that catches 1->0 transition faults MATS+ misses.
MarchTest march_x();

/// March C- -- {#(w0); U(r0,w1); U(r1,w0); D(r0,w1); D(r1,w0); #(r0)}, 10N.
/// Detects stuck-at, transition, and (between-word) coupling faults.
MarchTest march_cminus();

/// March RAW1 -- {#(w0); U(r0,r0,r0,r0,w1); D(r1,r1,r1,r1,w0); #(r0)}, 12N.
/// Repeated reads in place sensitize ReRAM read-disturb faults that need
/// several read pulses to flip a cell; classical tests read each cell once
/// per pass and miss them.
MarchTest march_raw1();

/// The four algorithms above, in ascending complexity order.
const std::vector<MarchTest>& standard_march_tests();

/// One observed expectation mismatch during a March run.
struct MarchFailure {
  std::int64_t row = 0;
  std::int64_t col = 0;
  int element_index = 0;  // which March element observed the mismatch
  int op_index = 0;       // which op inside the element
  bool expected = false;
  bool got = false;
};

/// Outcome of running one March test over one array.
struct MarchResult {
  std::vector<MarchFailure> failures;
  std::uint64_t ops_executed = 0;

  bool detected() const { return !failures.empty(); }
};

/// Limits failure-log growth on heavily faulty arrays; detection needs one.
inline constexpr std::size_t kMaxRecordedFailures = 1024;

/// Runs `test` over every cell of `array` (cell-per-word organization, the
/// paper's LIM arrays store one logic value per memristor). The array's
/// contents are destroyed.
MarchResult run_march(const MarchTest& test, lim::CrossbarArray& array);

/// Configuration of a fault-coverage evaluation.
struct CoverageConfig {
  /// Geometry and device parameters of the arrays under test. Keep small:
  /// each injected fault gets a fresh array and a full March run.
  lim::CrossbarConfig crossbar;
  /// Random single-fault locations injected per fault kind.
  int samples_per_kind = 16;
  /// Severity passed to inject_device_fault (see DeviceFaultKind for the
  /// per-kind meaning; 1.0 = hard fault).
  double severity = 1.0;
  std::uint64_t seed = 1;
};

/// Coverage of one fault kind by one March test.
struct CoverageRow {
  lim::DeviceFaultKind kind = lim::DeviceFaultKind::kNone;
  int detected = 0;
  int injected = 0;

  double coverage() const {
    return injected > 0 ? static_cast<double>(detected) / injected : 0.0;
  }
};

/// Injects `samples_per_kind` single device faults per kind (uniformly
/// random cells, fresh array each) and reports the fraction `test` detects.
std::vector<CoverageRow> evaluate_coverage(const MarchTest& test,
                                           const CoverageConfig& config);

/// Human-readable names.
std::string to_string(MarchOp op);
std::string to_string(AddressOrder order);

}  // namespace flim::reliability

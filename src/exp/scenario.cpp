#include "exp/scenario.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string_view>

#include "bnn/flim_engine.hpp"
#include "bnn/plan.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "exp/eval_point.hpp"
#include "exp/store.hpp"
#include "tensor/workspace.hpp"
#include "data/synthetic_imagenet.hpp"
#include "data/synthetic_mnist.hpp"
#include "fault/fault_registry.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::exp {

namespace {

bool is_zoo_model(const std::string& name) {
  for (const auto& m : models::zoo_model_names()) {
    if (m == name) return true;
  }
  return false;
}

void apply_axis_value(PointFaultConfig& pc, const ScenarioAxis& axis,
                      const AxisValue& value) {
  switch (axis.kind) {
    case AxisKind::kInjectionRate:
      pc.spec.injection_rate = value.number;
      break;
    case AxisKind::kDynamicPeriod:
      pc.spec.dynamic_period = static_cast<int>(value.number);
      break;
    case AxisKind::kFaultyRows:
      pc.spec.faulty_rows = static_cast<std::int64_t>(value.number);
      break;
    case AxisKind::kFaultyCols:
      pc.spec.faulty_cols = static_cast<std::int64_t>(value.number);
      break;
    case AxisKind::kStuckAtOneFraction:
      pc.spec.stuck_at_one_fraction = value.number;
      break;
    case AxisKind::kFaultKind:
      pc.spec.kind =
          static_cast<fault::FaultKind>(static_cast<std::uint8_t>(value.number));
      break;
    case AxisKind::kLayers:
      if (value.text.empty() || value.text == "combined" ||
          value.text == "all") {
        pc.filter.clear();
      } else {
        pc.filter = {value.text};
      }
      break;
    case AxisKind::kFaultExpr:
      pc.expr = value.text;
      break;
    case AxisKind::kEccCodec:
      pc.ecc_expr = value.text;
      break;
  }
}

PointFaultConfig resolve_point(const ScenarioSpec& spec,
                               const std::vector<std::size_t>& indices) {
  PointFaultConfig pc;
  pc.spec = spec.fault;
  pc.expr = spec.fault_expr;
  pc.filter = spec.layer_filter;
  pc.ecc_expr = spec.ecc_expr;
  pc.ecc_word_bits = spec.ecc_word_bits;
  pc.ecc_interleave = spec.ecc_interleave;
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    apply_axis_value(pc, spec.axes[a], spec.axes[a].values[indices[a]]);
  }
  return pc;
}

/// Calls `fn(indices)` for every cell of the axis grid in row-major order
/// (last axis fastest). With no axes, fn sees one empty index vector.
void for_each_cell(const std::vector<ScenarioAxis>& axes,
                   const std::function<void(const std::vector<std::size_t>&)>&
                       fn) {
  std::vector<std::size_t> sizes;
  sizes.reserve(axes.size());
  for (const ScenarioAxis& axis : axes) sizes.push_back(axis.values.size());
  core::for_each_grid_index(sizes, fn);
}

/// Every layer name a spec's filters can select. A name that matches no
/// binarized layer of the workload would silently realize zero faults and
/// report clean accuracy, so the runner rejects it up front. The
/// all-layers sentinels ("", "combined", "all") are exempt.
void check_layer_filters(const ScenarioSpec& spec, const Workload& workload) {
  auto check = [&](const std::string& name) {
    if (name.empty() || name == "combined" || name == "all") return;
    for (const bnn::LayerWorkload& layer : workload.layers) {
      if (layer.layer_name == name) return;
    }
    FLIM_REQUIRE(false, "layer filter names no binarized layer of " +
                            workload.model.name() + ": " + name);
  };
  for (const std::string& name : spec.layer_filter) check(name);
  for (const ScenarioAxis& axis : spec.axes) {
    if (axis.kind != AxisKind::kLayers) continue;
    for (const AxisValue& value : axis.values) check(value.text);
  }
}

}  // namespace

Workload load_workload(const WorkloadSpec& spec) {
  models::PretrainOptions opts;
  opts.epochs = spec.epochs;
  opts.train_samples = spec.train_samples;
  opts.verbose = spec.verbose;
  if (!spec.weights_dir.empty()) opts.cache_dir = spec.weights_dir;
  opts.force_retrain = spec.force_retrain;

  Workload w;
  if (spec.model == "lenet") {
    data::SyntheticMnistOptions d;
    d.size = spec.train_samples + spec.eval_images;
    data::SyntheticMnist ds(d);
    w.model = models::pretrained_lenet(ds, opts);
    w.eval_batch = data::load_batch(ds, spec.train_samples, spec.eval_images);
    w.layers =
        w.model.analyze(tensor::FloatTensor(tensor::Shape{1, 1, 28, 28}, 0.5f))
            .binarized_layers;
    w.dataset_name = ds.name();
  } else if (is_zoo_model(spec.model)) {
    data::SyntheticImagenetOptions d;
    d.size = spec.train_samples + spec.eval_images;
    data::SyntheticImagenet ds(d);
    w.model = models::pretrained_zoo_model(spec.model, ds, opts);
    w.eval_batch = data::load_batch(ds, spec.train_samples, spec.eval_images);
    w.layers =
        w.model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f))
            .binarized_layers;
    w.dataset_name = ds.name();
  } else {
    FLIM_REQUIRE(false, "unknown model: " + spec.model +
                            " (expected 'lenet' or a Table-II zoo name)");
  }
  if (spec.measure_clean_accuracy) {
    bnn::ReferenceEngine ref;
    w.clean_accuracy = w.model.evaluate(w.eval_batch, ref);
  }
  return w;
}

ScenarioAxis rate_axis(const std::vector<double>& rates) {
  ScenarioAxis axis{AxisKind::kInjectionRate, "rate", {}};
  for (const double r : rates) {
    axis.values.push_back({r, "", core::format_double(r, 3)});
  }
  return axis;
}

ScenarioAxis period_axis(const std::vector<int>& periods) {
  ScenarioAxis axis{AxisKind::kDynamicPeriod, "period", {}};
  for (const int p : periods) {
    axis.values.push_back({static_cast<double>(p), "", std::to_string(p)});
  }
  return axis;
}

ScenarioAxis faulty_rows_axis(const std::vector<int>& rows) {
  ScenarioAxis axis{AxisKind::kFaultyRows, "faulty_rows", {}};
  for (const int r : rows) {
    axis.values.push_back({static_cast<double>(r), "", std::to_string(r)});
  }
  return axis;
}

ScenarioAxis faulty_cols_axis(const std::vector<int>& cols) {
  ScenarioAxis axis{AxisKind::kFaultyCols, "faulty_cols", {}};
  for (const int c : cols) {
    axis.values.push_back({static_cast<double>(c), "", std::to_string(c)});
  }
  return axis;
}

ScenarioAxis stuck_at_one_fraction_axis(const std::vector<double>& fractions) {
  ScenarioAxis axis{AxisKind::kStuckAtOneFraction, "sa1_fraction", {}};
  for (const double f : fractions) {
    axis.values.push_back({f, "", core::format_double(f, 2)});
  }
  return axis;
}

ScenarioAxis kind_axis(const std::vector<fault::FaultKind>& kinds) {
  ScenarioAxis axis{AxisKind::kFaultKind, "kind", {}};
  for (const fault::FaultKind k : kinds) {
    axis.values.push_back({static_cast<double>(static_cast<std::uint8_t>(k)),
                           "", fault::to_string(k)});
  }
  return axis;
}

ScenarioAxis fault_expr_axis(const std::vector<std::string>& exprs) {
  ScenarioAxis axis{AxisKind::kFaultExpr, "fault", {}};
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    // Canonical text and label: two spellings of the same stack share
    // report labels and store fingerprints.
    const std::string canonical = fault::canonical_fault_expr(exprs[i]);
    axis.values.push_back({static_cast<double>(i), canonical, canonical});
  }
  return axis;
}

ScenarioAxis fault_expr_axis(const std::string& pattern,
                             const std::vector<double>& rates) {
  FLIM_REQUIRE(pattern.find('@') != std::string::npos,
               "rate-placeholder expansion needs a '@' in the fault "
               "expression (e.g. \"bitflip(rate=@)\"); got: " + pattern);
  std::vector<std::string> exprs;
  exprs.reserve(rates.size());
  for (const double rate : rates) {
    std::string expanded;
    for (const char c : pattern) {
      if (c == '@') {
        expanded += core::format_double_shortest(rate);
      } else {
        expanded += c;
      }
    }
    exprs.push_back(std::move(expanded));
  }
  return fault_expr_axis(exprs);
}

ScenarioAxis ecc_codec_axis(const std::vector<std::string>& exprs) {
  ScenarioAxis axis{AxisKind::kEccCodec, "ecc", {}};
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    // The no-scrub sentinel keeps its "none" label but stores empty text,
    // so resolve_point sees the same empty-means-off convention as
    // ScenarioSpec::ecc_expr. Real expressions canonicalize so spellings
    // share labels and store fingerprints, like fault_expr_axis.
    if (exprs[i].empty() || exprs[i] == "none") {
      axis.values.push_back({static_cast<double>(i), "", "none"});
      continue;
    }
    const std::string canonical = reliability::ecc::canonical_codec_expr(exprs[i]);
    axis.values.push_back({static_cast<double>(i), canonical, canonical});
  }
  return axis;
}

ScenarioAxis layers_axis(const std::vector<std::string>& series) {
  ScenarioAxis axis{AxisKind::kLayers, "layer", {}};
  for (std::size_t i = 0; i < series.size(); ++i) {
    axis.values.push_back({static_cast<double>(i), series[i], series[i]});
  }
  return axis;
}

void validate(const ScenarioSpec& spec) {
  FLIM_REQUIRE(!spec.workload.model.empty(), "workload model name is required");
  FLIM_REQUIRE(spec.workload.model == "lenet" ||
                   is_zoo_model(spec.workload.model),
               "unknown model: " + spec.workload.model +
                   " (expected 'lenet' or a Table-II zoo name)");
  FLIM_REQUIRE(spec.workload.eval_images > 0,
               "workload needs >= 1 evaluation image");
  FLIM_REQUIRE(spec.workload.epochs >= 1, "workload needs >= 1 epoch");
  FLIM_REQUIRE(spec.workload.train_samples > 0,
               "workload needs >= 1 training sample");
  FLIM_REQUIRE(spec.repetitions > 0, "scenario needs >= 1 repetition");
  FLIM_REQUIRE(spec.jobs >= 1, "jobs must be >= 1");
  FLIM_REQUIRE(spec.grid.rows > 0 && spec.grid.cols > 0,
               "fault grid must be positive");
  validate(spec.engine);
  FLIM_REQUIRE(spec.ecc_word_bits > 0, "ecc_word_bits must be positive");
  FLIM_REQUIRE(spec.ecc_interleave > 0, "ecc_interleave must be positive");
  for (const ScenarioAxis& axis : spec.axes) {
    FLIM_REQUIRE(!axis.values.empty(),
                 "sweep axis '" + axis.name + "' has no values");
  }
  // Resolve every grid point so a bad axis value fails now, not mid-run.
  // Expressions repeat across points, so parse each distinct one once.
  std::map<std::string, fault::FaultStack> parsed;
  for_each_cell(spec.axes, [&](const std::vector<std::size_t>& indices) {
    const PointFaultConfig pc = resolve_point(spec, indices);
    if (!pc.ecc_expr.empty()) {
      // configure() caches per canonical expression, so re-validating each
      // grid point is a map lookup, and a bad codec fails now, not mid-run.
      reliability::ecc::CodecRegistry::instance().configure(pc.ecc_expr);
    }
    if (pc.expr.empty()) {
      fault::validate(pc.spec);
      return;
    }
    // Expression points take only placement/granularity from the legacy
    // spec; its single-kind fields (injection_rate et al.) are unused, so
    // the clustered-needs-a-rate rule must not fire on them -- the rates
    // live in the model parameters. Every other field check still applies.
    fault::FaultSpec placement = pc.spec;
    placement.distribution = fault::FaultDistribution::kUniform;
    fault::validate(placement);
    auto it = parsed.find(pc.expr);
    if (it == parsed.end()) {
      it = parsed.emplace(pc.expr, fault::parse_fault_expr(pc.expr)).first;
    }
    it->second.validate_granularity(pc.spec.granularity);
    if (spec.engine.backend == Backend::kDevice) {
      it->second.validate_device_backend();
    }
  });
}

const core::Summary& ScenarioResult::at(
    const std::vector<std::size_t>& indices) const {
  FLIM_REQUIRE(complete(),
               "at() needs a complete result (a sharded run holds only its "
               "own grid slice; merge the shard run files first)");
  FLIM_REQUIRE(indices.size() == axis_sizes.size(),
               "index rank must match axis count");
  std::size_t flat = 0;
  for (std::size_t a = 0; a < indices.size(); ++a) {
    FLIM_REQUIRE(indices[a] < axis_sizes[a], "axis index out of range");
    flat = flat * axis_sizes[a] + indices[a];
  }
  return points[flat].metric;
}

core::Table ScenarioResult::to_table() const {
  std::vector<std::string> columns = axis_names;
  columns.insert(columns.end(),
                 {"accuracy_%", "stddev_%", "min_%", "max_%"});
  core::Table table(columns);
  for (const ScenarioPoint& p : points) {
    std::vector<std::string> row = p.labels;
    row.push_back(core::format_double(p.metric.mean * 100.0, 2));
    row.push_back(core::format_double(p.metric.stddev * 100.0, 2));
    row.push_back(core::format_double(p.metric.min * 100.0, 2));
    row.push_back(core::format_double(p.metric.max * 100.0, 2));
    table.add_row(std::move(row));
  }
  return table;
}

void ScenarioResult::write_csv(const std::string& path) const {
  to_table().write_csv(path);
}

void ScenarioResult::write_json(const std::string& path) const {
  to_table().write_json(path);
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {
  validate(spec_);
}

ScenarioResult ScenarioRunner::run(
    const std::function<void(const ScenarioPoint&)>& on_point) {
  const Workload workload = load_workload(spec_.workload);
  return run(workload, StoreOptions{}, on_point);
}

ScenarioResult ScenarioRunner::run(
    const Workload& workload,
    const std::function<void(const ScenarioPoint&)>& on_point) {
  return run(workload, StoreOptions{}, on_point);
}

ScenarioResult ScenarioRunner::run(
    const StoreOptions& store,
    const std::function<void(const ScenarioPoint&)>& on_point) {
  const Workload workload = load_workload(spec_.workload);
  return run(workload, store, on_point);
}

ScenarioResult ScenarioRunner::run(
    const Workload& workload, const StoreOptions& store,
    const std::function<void(const ScenarioPoint&)>& on_point) {
  check_layer_filters(spec_, workload);
  FLIM_REQUIRE(store.shard_count >= 1 && store.shard_index >= 0 &&
                   store.shard_index < store.shard_count,
               "shard index must be in [0, shard_count)");

  std::size_t total_points = 1;
  for (const ScenarioAxis& axis : spec_.axes) {
    total_points *= axis.values.size();
  }

  // Restore completed points from the resume file, if one exists. A missing
  // file -- or the residue of a crash between creating the file and durably
  // writing its header (empty, or an unambiguous torn prefix of a run-file
  // header with no newline yet) -- is a fresh start. Anything else must
  // parse as a matching header: a mistyped path naming some other file
  // should fail loudly, never be silently truncated.
  const auto has_complete_first_line = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    return static_cast<bool>(std::getline(in, line)) && !in.eof();
  };
  const auto is_torn_header_residue = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    const std::string content((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    static constexpr std::string_view prefix = "{\"flim_run_format\"";
    const std::size_t n = std::min(content.size(), prefix.size());
    return content.compare(0, n, prefix, 0, n) == 0;  // empty counts
  };
  std::map<std::size_t, ScenarioPoint> restored;
  bool resume_in_place = false;
  std::size_t resume_prefix_bytes = 0;
  const bool resume_file_exists =
      !store.resume_from.empty() && std::filesystem::exists(store.resume_from);
  if (resume_file_exists && !has_complete_first_line(store.resume_from)) {
    FLIM_REQUIRE(is_torn_header_residue(store.resume_from),
                 "refusing to overwrite " + store.resume_from +
                     ": it is not a run file (nor the torn header of one)");
  }
  if (resume_file_exists && has_complete_first_line(store.resume_from)) {
    const RunFile prior = RunFile::load(store.resume_from);
    const std::string fingerprint = spec_fingerprint(spec_);
    FLIM_REQUIRE(prior.header.fingerprint == fingerprint,
                 "resume file " + store.resume_from +
                     " was produced by a different spec (fingerprint " +
                     prior.header.fingerprint + ", this spec is " +
                     fingerprint + ")");
    FLIM_REQUIRE(prior.header.total_points == total_points,
                 "resume file grid size mismatch: " + store.resume_from);
    FLIM_REQUIRE(prior.header.shard_index == store.shard_index &&
                     prior.header.shard_count == store.shard_count,
                 "resume file " + store.resume_from + " belongs to shard " +
                     std::to_string(prior.header.shard_index) + "/" +
                     std::to_string(prior.header.shard_count) +
                     ", not this run's shard");
    for (const StoredPoint& sp : prior.points) {
      FLIM_REQUIRE(
          shard_owns(sp.flat_index, store.shard_index, store.shard_count),
          "resume file holds a point outside this shard's slice");
      restored.emplace(sp.flat_index, sp.point);
    }
    resume_in_place = store.store_path == store.resume_from;
    resume_prefix_bytes = prior.valid_prefix_bytes;
  }

  // Open the store. Resuming in place truncates any torn tail and appends;
  // a fresh store re-logs restored points so the file is self-contained.
  std::optional<RunStoreWriter> writer;
  if (!store.store_path.empty()) {
    if (resume_in_place) {
      writer.emplace(RunStoreWriter::resume(
          store.store_path, resume_prefix_bytes, store.fsync_each_point));
    } else {
      writer.emplace(store.store_path,
                     make_run_header(spec_, workload.clean_accuracy,
                                     store.shard_index, store.shard_count),
                     store.fsync_each_point);
      for (const auto& [flat, point] : restored) {
        writer->append(flat, point);
      }
    }
  }

  core::CampaignConfig campaign;
  campaign.repetitions = spec_.repetitions;
  campaign.master_seed = spec_.master_seed;
  std::optional<core::ThreadPool> pool;
  if (spec_.jobs > 1) {
    pool.emplace(static_cast<std::size_t>(spec_.jobs));
    campaign.pool = &*pool;
  }

  // Compile the forward pass once per (workload, engine) pair; every grid
  // point and repetition reuses it -- only the injector masks change. Each
  // campaign worker owns one Workspace for the whole sweep, so steady-state
  // inference allocates nothing.
  const bnn::ForwardPlan plan(workload.model,
                              workload.eval_batch.images.shape());
  const std::size_t workers = pool ? pool->size() : 1;
  std::vector<tensor::Workspace> workspaces(workers);

  ScenarioResult result;
  result.name = spec_.name;
  result.backend = to_string(spec_.engine.backend);
  result.clean_accuracy = workload.clean_accuracy;
  result.total_points = total_points;
  for (const ScenarioAxis& axis : spec_.axes) {
    result.axis_names.push_back(axis.name);
    result.axis_sizes.push_back(axis.values.size());
  }

  // Axes are swept over value indices so categorical axes (layer series)
  // ride the same numeric grid machinery. Zero axes evaluate one cell.
  std::vector<core::SweepAxis> core_axes;
  core_axes.reserve(spec_.axes.size());
  for (const ScenarioAxis& axis : spec_.axes) {
    core::SweepAxis ca{axis.name, {}};
    ca.points.reserve(axis.values.size());
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      ca.points.push_back({static_cast<double>(i), axis.values[i].label});
    }
    core_axes.push_back(std::move(ca));
  }

  auto to_indices = [&](const std::vector<double>& coords) {
    std::vector<std::size_t> indices(coords.size());
    for (std::size_t a = 0; a < coords.size(); ++a) {
      indices[a] = static_cast<std::size_t>(coords[a]);
    }
    return indices;
  };
  auto to_scenario_point = [&](const core::GridPoint& cell) {
    ScenarioPoint p;
    p.labels = cell.labels;
    p.values.reserve(cell.coords.size());
    for (std::size_t a = 0; a < cell.coords.size(); ++a) {
      const std::size_t i = static_cast<std::size_t>(cell.coords[a]);
      p.values.push_back(spec_.axes[a].values[i].number);
    }
    p.metric = cell.metric;
    return p;
  };

  // Only cells this shard owns and the resume file does not already hold
  // are evaluated; per-cell repetition seeds depend solely on the master
  // seed, so the skipped cells would have produced exactly the restored
  // summaries (run_grid_sweep_selected's contract).
  const auto selector = [&](std::size_t flat) {
    return shard_owns(flat, store.shard_index, store.shard_count) &&
           restored.find(flat) == restored.end();
  };
  const std::vector<core::SelectedGridPoint> cells =
      core::run_grid_sweep_selected(
          campaign, core_axes, selector,
          [&](const std::vector<double>& coords, std::uint64_t seed,
              std::size_t worker) {
            const PointFaultConfig pc = resolve_point(spec_, to_indices(coords));
            return evaluate_fault_point(spec_.engine, spec_.grid, workload,
                                        plan, workspaces[worker], pc, seed);
          },
          [&](const core::SelectedGridPoint& cell) {
            const ScenarioPoint p = to_scenario_point(cell.point);
            if (writer) writer->append(cell.flat_index, p);
            if (on_point) on_point(p);
          });

  // Fold restored and freshly evaluated points into ascending flat order.
  auto cell_it = cells.begin();
  for (std::size_t flat = 0; flat < total_points; ++flat) {
    if (!shard_owns(flat, store.shard_index, store.shard_count)) continue;
    const auto done = restored.find(flat);
    if (done != restored.end()) {
      result.points.push_back(done->second);
    } else {
      FLIM_REQUIRE(cell_it != cells.end() && cell_it->flat_index == flat,
                   "internal: grid cell was neither restored nor evaluated");
      result.points.push_back(to_scenario_point(cell_it->point));
      ++cell_it;
    }
    result.flat_indices.push_back(flat);
  }
  return result;
}

}  // namespace flim::exp

// Declarative fault-campaign scenarios.
//
// The paper's core experiment shape is always the same: load a model and an
// evaluation batch, sweep one or more fault axes (rate, period, faulty
// rows/columns, layer selection), and for every grid point run a re-seeded
// repetition campaign on some execution substrate. Before this module, every
// bench binary, CLI subcommand, and example re-implemented that wiring by
// hand. A ScenarioSpec is the whole experiment as data; ScenarioRunner
// validates it once and executes it through the unified engine factory
// (engine_factory.hpp), preserving the determinism contract: the same spec
// and seeds produce identical numbers on every backend, serial or pooled.
#pragma once

/// \file
/// Declarative fault-campaign scenarios: ScenarioSpec (the experiment as
/// data), workload loading, sweep axes, ScenarioRunner, and StoreOptions
/// (durability/resume/sharding). See docs/campaigns.md.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bnn/model.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "exp/engine_factory.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"

/// Experiment layer: declarative scenarios, the engine factory, workload
/// loading, and the durable campaign store.
namespace flim::exp {

/// Which model/dataset to evaluate and how to train (or load) it.
/// "lenet" runs on synthetic MNIST; every Table-II zoo name runs on
/// synthetic ImageNet (models::zoo_model_names()).
struct WorkloadSpec {
  /// Model name: "lenet" or a Table-II zoo family.
  std::string model = "lenet";
  /// Held-out evaluation images per repetition.
  std::int64_t eval_images = 300;
  /// Training epochs when the weight cache is cold.
  int epochs = 3;
  /// Training samples when the weight cache is cold.
  std::int64_t train_samples = 3000;
  /// Log training progress to stderr.
  bool verbose = false;
  /// Weight-cache directory; empty uses the pretrained default
  /// ($FLIM_WEIGHTS_DIR or "weights").
  std::string weights_dir;
  bool force_retrain = false;
  /// Also evaluate the clean (reference-engine) accuracy once at load time.
  bool measure_clean_accuracy = false;
};

/// A loaded workload: the trained model, its binarized-layer workloads (the
/// fault-mapping targets), and the held-out evaluation batch.
struct Workload {
  /// The trained (or cache-loaded) model.
  bnn::Model model;
  /// Its binarized layers -- the fault-mapping targets.
  std::vector<bnn::LayerWorkload> layers;
  /// Held-out evaluation batch.
  data::Batch eval_batch;
  /// Reference-engine accuracy; only when measure_clean_accuracy was set.
  double clean_accuracy = 0.0;
  /// Report name of the dataset the workload was drawn from.
  std::string dataset_name;
};

/// Trains or cache-loads the workload described by `spec`.
Workload load_workload(const WorkloadSpec& spec);

/// What a sweep axis varies.
enum class AxisKind : std::uint8_t {
  kInjectionRate = 0,      ///< FaultSpec::injection_rate
  kDynamicPeriod = 1,      ///< FaultSpec::dynamic_period
  kFaultyRows = 2,         ///< FaultSpec::faulty_rows
  kFaultyCols = 3,         ///< FaultSpec::faulty_cols
  kLayers = 4,             ///< layer filter ("combined" selects all layers)
  kFaultKind = 5,          ///< FaultSpec::kind
  kStuckAtOneFraction = 6, ///< FaultSpec::stuck_at_one_fraction
  kFaultExpr = 7,          ///< ScenarioSpec::fault_expr (composable stacks)
  kEccCodec = 8,           ///< ScenarioSpec::ecc_expr (ECC scrub codec)
};

/// One value of a sweep axis. Numeric axes use `number`; kLayers uses
/// `text` (and `number` holds the series index). `label` names the value in
/// reports.
struct AxisValue {
  /// Numeric value (or value-series index for kLayers).
  double number = 0.0;
  /// Textual value (layer name for kLayers axes).
  std::string text;
  /// Name of this value in reports.
  std::string label;
};

/// One swept dimension of a scenario.
struct ScenarioAxis {
  /// Which fault field this axis varies.
  AxisKind kind = AxisKind::kInjectionRate;
  /// Axis/column name in reports.
  std::string name;
  /// The swept values, in sweep order.
  std::vector<AxisValue> values;
};

/// Builds a kInjectionRate axis (specs read declaratively).
ScenarioAxis rate_axis(const std::vector<double>& rates);
/// Builds a kDynamicPeriod axis.
ScenarioAxis period_axis(const std::vector<int>& periods);
/// Builds a kFaultyRows axis.
ScenarioAxis faulty_rows_axis(const std::vector<int>& rows);
/// Builds a kFaultyCols axis.
ScenarioAxis faulty_cols_axis(const std::vector<int>& cols);
/// Builds a kStuckAtOneFraction axis.
ScenarioAxis stuck_at_one_fraction_axis(const std::vector<double>& fractions);
/// Builds a kFaultKind axis.
ScenarioAxis kind_axis(const std::vector<fault::FaultKind>& kinds);
/// Builds a kFaultExpr axis from fault expressions such as
/// "bitflip(rate=1e-3)" or "stuckat(rate=5e-4)+drift(tau=2000)". Every
/// expression is parsed against the fault-model registry (throws on unknown
/// models or bad parameters) and stored in canonical form (sorted params,
/// round-trip numbers), so two spellings of one stack share labels and
/// store fingerprints.
ScenarioAxis fault_expr_axis(const std::vector<std::string>& exprs);
/// Builds a kFaultExpr axis by expanding every '@' in `pattern` with each
/// rate (shortest round-trip formatting): fault_expr_axis("drift(rate=@)",
/// {0, 0.05}) sweeps drift(rate=0) and drift(rate=0.05). The CLI's
/// `campaign --fault` and the figure benches' $FLIM_BENCH_FAULT_EXPR both
/// route through this. Throws when `pattern` has no '@'.
ScenarioAxis fault_expr_axis(const std::string& pattern,
                             const std::vector<double>& rates);
/// `series` entries are layer names; "combined" (or "" / "all") selects
/// every binarized layer at once, reproducing the figures' combined curve.
ScenarioAxis layers_axis(const std::vector<std::string>& series);
/// Builds a kEccCodec axis from codec expressions such as "secded" or
/// "bch(d=64,t=2)" (reliability/ecc/registry.hpp grammar). The sentinel
/// "none" (or "") means no scrub at that grid point. Expressions are
/// validated against the codec registry and stored canonically, so two
/// spellings of one codec share labels and store fingerprints.
ScenarioAxis ecc_codec_axis(const std::vector<std::string>& exprs);

/// The whole fault campaign as data: workload, substrate, base fault spec,
/// sweep axes, and the repetition protocol.
struct ScenarioSpec {
  /// Report title / CSV stem; free-form.
  std::string name = "scenario";
  /// Which model/dataset to evaluate.
  WorkloadSpec workload;
  /// Which execution substrate runs the binarized layers.
  EngineSpec engine;
  /// Base fault configuration; sweep axes override individual fields per
  /// grid point. An all-defaults spec with no axes evaluates one clean point.
  fault::FaultSpec fault;
  /// Composable fault-model expression (fault_registry.hpp grammar, e.g.
  /// "stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)"). When non-empty it
  /// replaces the single-kind fields of `fault` (kind, injection_rate,
  /// faulty rows/cols, dynamic_period, stuck_at_one_fraction); granularity
  /// and the distribution/cluster placement settings still come from
  /// `fault`. A kFaultExpr axis overrides it per grid point.
  std::string fault_expr;
  /// ECC scrub codec expression (reliability/ecc/registry.hpp grammar,
  /// e.g. "secded" or "bch(d=64,t=2)"). When non-empty, every realized
  /// fault mask is scrubbed before evaluation: words within the codec's
  /// correction radius are repaired and only the residual faults reach the
  /// engine. Empty = no scrub (the historical behavior; fingerprints of
  /// such specs are unchanged). A kEccCodec axis overrides it per point.
  std::string ecc_expr;
  /// Data cells per ECC word of the scrub organization.
  int ecc_word_bits = 64;
  /// Bit-interleaving degree of the scrub organization.
  int ecc_interleave = 1;
  /// Virtual crossbar grid the masks are drawn on.
  lim::CrossbarGeometry grid{64, 64};
  /// Base layer filter (empty = all binarized layers); a kLayers axis
  /// overrides it per point.
  std::vector<std::string> layer_filter;
  /// Sweep axes, outermost first; the cartesian product is evaluated in
  /// row-major order (last axis fastest). Empty = a single point.
  std::vector<ScenarioAxis> axes;
  /// Repetition protocol (the paper uses 100 repetitions).
  int repetitions = 10;
  /// Master seed; each repetition derives an independent seed from it.
  std::uint64_t master_seed = 2023;
  /// Repetitions per point run on a thread pool of this size when > 1.
  /// Results are bit-identical to the serial run.
  int jobs = 1;
};

/// Validates a scenario, throwing std::invalid_argument on nonsense values.
/// Resolves every grid point and validates its effective fault spec, so a
/// bad axis value fails here instead of mid-campaign.
void validate(const ScenarioSpec& spec);

/// One evaluated grid point: per-axis values/labels plus the aggregated
/// repetition summary (accuracy fraction).
struct ScenarioPoint {
  /// Numeric axis value per axis (value-series index for kLayers).
  std::vector<double> values;
  /// Report label per axis.
  std::vector<std::string> labels;
  /// Aggregated repetition summary (accuracy as a fraction).
  core::Summary metric;
};

/// Durability / resumption / sharding controls for ScenarioRunner::run.
///
/// The default-constructed value reproduces the classic in-memory run: the
/// whole grid, nothing persisted. With `store_path` set, every completed
/// grid point is appended (and fsync'd) to an append-only JSONL run file
/// (exp/store.hpp) as soon as it is evaluated, so an interrupted campaign
/// loses at most the in-flight point. `resume_from` loads such a file,
/// verifies its spec fingerprint, and skips the points it already contains;
/// per-point repetition seeds depend only on the master seed, so a resumed
/// run is bit-identical to an uninterrupted one. `shard_index`/`shard_count`
/// deterministically partition the grid (flat row-major index modulo count)
/// so independent processes each evaluate and store a disjoint slice;
/// merge_run_files folds the shard files back into one complete result.
struct StoreOptions {
  /// Run file to stream completed points into; empty disables the store.
  std::string store_path;
  /// Existing run file whose completed points are skipped; empty starts
  /// fresh. May equal `store_path` (the common resume-in-place case); a
  /// nonexistent path -- or a file without one complete line, the residue
  /// of a crash before the header was durably written -- is treated as a
  /// fresh start, so resume is safe at any kill point.
  std::string resume_from;
  /// 0-based shard id; this process evaluates flat indices with
  /// `flat % shard_count == shard_index`.
  int shard_index = 0;
  /// Total number of shards (>= 1; 1 means the whole grid).
  int shard_count = 1;
  /// fsync the run file after every appended point (durable progress
  /// markers). Disable only for tests/benchmarks on throwaway files.
  bool fsync_each_point = true;
};

/// Structured result of a scenario run.
///
/// A full run covers the whole axis grid; a sharded run covers the owned
/// subset (complete() tells them apart, flat_indices maps entries to grid
/// cells). Tables/CSV list whichever points are present in row-major order.
struct ScenarioResult {
  /// Spec name the result was produced from.
  std::string name;
  /// Report name of the execution backend.
  std::string backend;
  /// Axis names, outermost first.
  std::vector<std::string> axis_names;
  /// Axis sizes, outermost first.
  std::vector<std::size_t> axis_sizes;
  /// Evaluated points, ascending row-major order (last axis fastest).
  std::vector<ScenarioPoint> points;
  /// Clean (reference-engine) accuracy when the workload measured it.
  double clean_accuracy = 0.0;
  /// Total number of cells in the full axis grid.
  std::size_t total_points = 0;
  /// Row-major flat grid index of each entry of `points`.
  std::vector<std::size_t> flat_indices;

  /// True when every grid cell is present (always true for unsharded runs).
  bool complete() const { return points.size() == total_points; }

  /// Summary at the given per-axis indices (size must match axis count).
  /// Requires a complete() result.
  const core::Summary& at(const std::vector<std::size_t>& indices) const;

  /// Long-format table: one row per point (axis labels, then accuracy mean/
  /// stddev/min/max in percent).
  core::Table to_table() const;

  /// Writes to_table() as CSV to `path` (via core::report).
  void write_csv(const std::string& path) const;
  /// Writes to_table() as JSON to `path` (via core::report).
  void write_json(const std::string& path) const;
};

/// Executes validated scenarios.
class ScenarioRunner {
 public:
  /// Validates `spec` (throws std::invalid_argument on bad specs).
  explicit ScenarioRunner(ScenarioSpec spec);

  /// The validated spec this runner executes.
  const ScenarioSpec& spec() const { return spec_; }

  /// Loads the workload described by the spec, then runs. `on_point` fires
  /// after each grid point completes, in row-major order.
  ScenarioResult run(
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

  /// Runs against a caller-provided workload (shared bench fixtures).
  ScenarioResult run(
      const Workload& workload,
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

  /// Loads the workload, then runs with durability/shard options.
  ScenarioResult run(
      const StoreOptions& store,
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

  /// Durable/sharded run against a caller-provided workload. Points
  /// restored from `store.resume_from` are folded into the result without
  /// re-evaluation; `on_point` fires only for freshly evaluated points.
  /// Throws std::invalid_argument when the resume file's spec fingerprint
  /// or shard assignment does not match this runner's spec.
  ScenarioResult run(
      const Workload& workload, const StoreOptions& store,
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

 private:
  ScenarioSpec spec_;
};

}  // namespace flim::exp

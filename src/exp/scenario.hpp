// Declarative fault-campaign scenarios.
//
// The paper's core experiment shape is always the same: load a model and an
// evaluation batch, sweep one or more fault axes (rate, period, faulty
// rows/columns, layer selection), and for every grid point run a re-seeded
// repetition campaign on some execution substrate. Before this module, every
// bench binary, CLI subcommand, and example re-implemented that wiring by
// hand. A ScenarioSpec is the whole experiment as data; ScenarioRunner
// validates it once and executes it through the unified engine factory
// (engine_factory.hpp), preserving the determinism contract: the same spec
// and seeds produce identical numbers on every backend, serial or pooled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bnn/model.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "exp/engine_factory.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"

namespace flim::exp {

/// Which model/dataset to evaluate and how to train (or load) it.
/// "lenet" runs on synthetic MNIST; every Table-II zoo name runs on
/// synthetic ImageNet (models::zoo_model_names()).
struct WorkloadSpec {
  std::string model = "lenet";
  std::int64_t eval_images = 300;
  int epochs = 3;
  std::int64_t train_samples = 3000;
  bool verbose = false;
  /// Weight-cache directory; empty uses the pretrained default
  /// ($FLIM_WEIGHTS_DIR or "weights").
  std::string weights_dir;
  bool force_retrain = false;
  /// Also evaluate the clean (reference-engine) accuracy once at load time.
  bool measure_clean_accuracy = false;
};

/// A loaded workload: the trained model, its binarized-layer workloads (the
/// fault-mapping targets), and the held-out evaluation batch.
struct Workload {
  bnn::Model model;
  std::vector<bnn::LayerWorkload> layers;
  data::Batch eval_batch;
  double clean_accuracy = 0.0;  // only when measure_clean_accuracy was set
  std::string dataset_name;
};

/// Trains or cache-loads the workload described by `spec`.
Workload load_workload(const WorkloadSpec& spec);

/// What a sweep axis varies.
enum class AxisKind : std::uint8_t {
  kInjectionRate = 0,      // FaultSpec::injection_rate
  kDynamicPeriod = 1,      // FaultSpec::dynamic_period
  kFaultyRows = 2,         // FaultSpec::faulty_rows
  kFaultyCols = 3,         // FaultSpec::faulty_cols
  kLayers = 4,             // layer filter ("combined" selects all layers)
  kFaultKind = 5,          // FaultSpec::kind
  kStuckAtOneFraction = 6, // FaultSpec::stuck_at_one_fraction
};

/// One value of a sweep axis. Numeric axes use `number`; kLayers uses
/// `text` (and `number` holds the series index). `label` names the value in
/// reports.
struct AxisValue {
  double number = 0.0;
  std::string text;
  std::string label;
};

/// One swept dimension of a scenario.
struct ScenarioAxis {
  AxisKind kind = AxisKind::kInjectionRate;
  std::string name;  // axis/column name in reports
  std::vector<AxisValue> values;
};

/// Axis constructors, so specs read declaratively.
ScenarioAxis rate_axis(const std::vector<double>& rates);
ScenarioAxis period_axis(const std::vector<int>& periods);
ScenarioAxis faulty_rows_axis(const std::vector<int>& rows);
ScenarioAxis faulty_cols_axis(const std::vector<int>& cols);
ScenarioAxis stuck_at_one_fraction_axis(const std::vector<double>& fractions);
ScenarioAxis kind_axis(const std::vector<fault::FaultKind>& kinds);
/// `series` entries are layer names; "combined" (or "" / "all") selects
/// every binarized layer at once, reproducing the figures' combined curve.
ScenarioAxis layers_axis(const std::vector<std::string>& series);

/// The whole fault campaign as data: workload, substrate, base fault spec,
/// sweep axes, and the repetition protocol.
struct ScenarioSpec {
  /// Report title / CSV stem; free-form.
  std::string name = "scenario";
  WorkloadSpec workload;
  EngineSpec engine;
  /// Base fault configuration; sweep axes override individual fields per
  /// grid point. An all-defaults spec with no axes evaluates one clean point.
  fault::FaultSpec fault;
  /// Virtual crossbar grid the masks are drawn on.
  lim::CrossbarGeometry grid{64, 64};
  /// Base layer filter (empty = all binarized layers); a kLayers axis
  /// overrides it per point.
  std::vector<std::string> layer_filter;
  /// Sweep axes, outermost first; the cartesian product is evaluated in
  /// row-major order (last axis fastest). Empty = a single point.
  std::vector<ScenarioAxis> axes;
  /// Repetition protocol (the paper uses 100 repetitions).
  int repetitions = 10;
  std::uint64_t master_seed = 2023;
  /// Repetitions per point run on a thread pool of this size when > 1.
  /// Results are bit-identical to the serial run.
  int jobs = 1;
};

/// Validates a scenario, throwing std::invalid_argument on nonsense values.
/// Resolves every grid point and validates its effective fault spec, so a
/// bad axis value fails here instead of mid-campaign.
void validate(const ScenarioSpec& spec);

/// One evaluated grid point: per-axis values/labels plus the aggregated
/// repetition summary (accuracy fraction).
struct ScenarioPoint {
  std::vector<double> values;
  std::vector<std::string> labels;
  core::Summary metric;
};

/// Structured result of a scenario run.
struct ScenarioResult {
  std::string name;
  std::string backend;
  std::vector<std::string> axis_names;
  std::vector<std::size_t> axis_sizes;
  /// Row-major over the axes (last axis fastest).
  std::vector<ScenarioPoint> points;
  double clean_accuracy = 0.0;

  /// Summary at the given per-axis indices (size must match axis count).
  const core::Summary& at(const std::vector<std::size_t>& indices) const;

  /// Long-format table: one row per point (axis labels, then accuracy mean/
  /// stddev/min/max in percent).
  core::Table to_table() const;

  /// Emit helpers (via core::report).
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
};

/// Executes validated scenarios.
class ScenarioRunner {
 public:
  /// Validates `spec` (throws std::invalid_argument on bad specs).
  explicit ScenarioRunner(ScenarioSpec spec);

  const ScenarioSpec& spec() const { return spec_; }

  /// Loads the workload described by the spec, then runs. `on_point` fires
  /// after each grid point completes, in row-major order.
  ScenarioResult run(
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

  /// Runs against a caller-provided workload (shared bench fixtures).
  ScenarioResult run(
      const Workload& workload,
      const std::function<void(const ScenarioPoint&)>& on_point = nullptr);

 private:
  ScenarioSpec spec_;
};

}  // namespace flim::exp

#include "exp/engine_factory.hpp"

#include "bnn/flim_engine.hpp"
#include "bnn/redundancy.hpp"
#include "core/check.hpp"

namespace flim::exp {

Backend parse_backend(const std::string& name) {
  if (name == "reference" || name == "vanilla") return Backend::kReference;
  if (name == "flim") return Backend::kFlim;
  if (name == "device" || name == "xfault") return Backend::kDevice;
  if (name == "tmr") return Backend::kTmr;
  FLIM_REQUIRE(false, "unknown backend: " + name +
                          " (expected reference|flim|device|tmr)");
  return Backend::kFlim;
}

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kReference: return "reference";
    case Backend::kFlim: return "flim";
    case Backend::kDevice: return "device";
    case Backend::kTmr: return "tmr";
  }
  return "?";
}

void validate(const EngineSpec& spec) {
  if (spec.backend == Backend::kDevice) {
    FLIM_REQUIRE(spec.device.crossbar.rows > 0 && spec.device.crossbar.cols > 0,
                 "device backend needs a positive crossbar geometry");
  }
  if (spec.backend == Backend::kTmr) {
    FLIM_REQUIRE(spec.tmr_replicas >= 1 && spec.tmr_replicas % 2 == 1,
                 "TMR needs an odd replica count >= 1");
  }
}

std::unique_ptr<bnn::XnorExecutionEngine> make_engine(const EngineSpec& spec) {
  return make_engine(spec, fault::FaultVectorFile{});
}

std::unique_ptr<bnn::XnorExecutionEngine> make_engine(
    const EngineSpec& spec, const fault::FaultVectorFile& vectors) {
  if (spec.backend == Backend::kTmr) {
    // One shared file: every replica realizes the same masks.
    validate(spec);
    return make_engine(
        spec, std::vector<fault::FaultVectorFile>(
                  static_cast<std::size_t>(spec.tmr_replicas), vectors));
  }
  return make_engine(spec, std::vector<fault::FaultVectorFile>{vectors});
}

std::unique_ptr<bnn::XnorExecutionEngine> make_engine(
    const EngineSpec& spec,
    const std::vector<fault::FaultVectorFile>& replica_vectors) {
  validate(spec);
  switch (spec.backend) {
    case Backend::kReference:
      FLIM_REQUIRE(replica_vectors.size() == 1,
                   "reference backend takes exactly one fault-vector file");
      FLIM_REQUIRE(replica_vectors.front().size() == 0,
                   "reference backend has no fault hooks; use flim or device "
                   "to inject the given vectors");
      return std::make_unique<bnn::ReferenceEngine>();
    case Backend::kFlim:
      FLIM_REQUIRE(replica_vectors.size() == 1,
                   "flim backend takes exactly one fault-vector file");
      return std::make_unique<bnn::FlimEngine>(replica_vectors.front());
    case Backend::kDevice:
      FLIM_REQUIRE(replica_vectors.size() == 1,
                   "device backend takes exactly one fault-vector file");
      return std::make_unique<xfault::DeviceEngine>(spec.device,
                                                    replica_vectors.front());
    case Backend::kTmr: {
      FLIM_REQUIRE(
          replica_vectors.size() == static_cast<std::size_t>(spec.tmr_replicas),
          "tmr backend needs one fault-vector file per replica");
      std::vector<std::unique_ptr<bnn::XnorExecutionEngine>> replicas;
      replicas.reserve(replica_vectors.size());
      for (const fault::FaultVectorFile& vectors : replica_vectors) {
        replicas.push_back(std::make_unique<bnn::FlimEngine>(vectors));
      }
      return std::make_unique<bnn::MedianVoteEngine>(std::move(replicas));
    }
  }
  FLIM_REQUIRE(false, "unhandled backend");
  return nullptr;
}

}  // namespace flim::exp

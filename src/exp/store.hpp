// Durable campaign result store: append-only run files.
//
// The paper's figures come from fault-injection sweeps with thousands of
// (rate x layer x repetition) grid points; at paper scale a campaign runs
// for hours, and ScenarioRunner used to hold every summary in memory until
// the final CSV, so an interrupted run lost everything. A *run file* fixes
// that: one JSONL file per campaign (or per shard) whose first line is a
// header recording the full spec fingerprint, seed, and code version, and
// whose every subsequent line is one completed grid-point summary, appended
// and fsync'd the moment the point finishes. A complete, newline-terminated
// line is the durable progress marker -- the loader accepts exactly the
// prefix of lines that parse and ignores a torn tail, so a campaign killed
// mid-write resumes from the last marker and (because per-point repetition
// seeds depend only on the master seed) finishes bit-identically to an
// uninterrupted run. Shard files produced by `--shard i/N` partitions of
// the same spec carry identical headers and disjoint point sets;
// merge_run_files folds them back into one complete ScenarioResult whose
// CSV matches a single-process run byte for byte.
//
// Summaries are persisted with 17-significant-digit doubles
// (core::format_double_roundtrip), which decimal round-trips IEEE-754
// binary64 exactly -- the whole byte-identity story rests on that.
#pragma once

/// \file
/// Durable campaign result store: append-only JSONL run files with
/// fingerprinted headers, fsync'd per-point progress markers, corrupt-tail
/// tolerant loading, and shard-file merging. See docs/campaigns.md.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "exp/scenario.hpp"

namespace flim::exp {

/// Revision of the run-file layout; bumped on incompatible changes.
inline constexpr int kRunFormatVersion = 1;

/// First line of a run file: everything needed to validate that a resume or
/// merge is looking at results of the same experiment.
struct RunHeader {
  /// Run-file layout revision (kRunFormatVersion at write time).
  int format = kRunFormatVersion;
  /// ScenarioSpec::name of the producing spec.
  std::string name;
  /// Report name of the execution backend.
  std::string backend;
  /// spec_fingerprint() of the producing spec.
  std::string fingerprint;
  /// core::code_fingerprint() of the producing build.
  std::string library_version;
  /// Campaign master seed (informational; covered by the fingerprint).
  std::uint64_t master_seed = 0;
  /// Repetitions per grid point (informational; covered by the fingerprint).
  int repetitions = 0;
  /// Number of cells in the *full* axis grid (a shard file still records
  /// the full grid size, so merge can detect gaps).
  std::size_t total_points = 0;
  /// 0-based shard id of the producing process.
  int shard_index = 0;
  /// Total shard count of the producing campaign (1 = unsharded).
  int shard_count = 1;
  /// Clean accuracy of the workload when it was measured, else 0.
  double clean_accuracy = 0.0;
  /// Axis names, outermost first.
  std::vector<std::string> axis_names;
  /// Axis sizes, outermost first.
  std::vector<std::size_t> axis_sizes;
};

/// Canonical, deterministic serialization of everything in a ScenarioSpec
/// that can change campaign *numbers*: workload scale, engine/backend
/// configuration, base fault spec, the fault expression (in canonical form
/// -- sorted params, round-trip numbers -- and only when set, so legacy
/// single-kind specs keep their pre-expression fingerprints), grid, layer
/// filters, axes, repetitions, and master seed. Execution-only knobs that are guaranteed not to change
/// results -- `jobs` (pooled runs are bit-identical to serial), `verbose`,
/// `weights_dir`, `force_retrain` (training is seed-deterministic) -- and
/// the cosmetic `name` are deliberately excluded, so a resumed campaign may
/// change them freely.
std::string canonical_spec(const ScenarioSpec& spec);

/// 16-hex-digit fingerprint of canonical_spec() mixed with the code
/// fingerprint (library version). Two specs with equal fingerprints produce
/// bit-identical grids; resume and merge refuse mismatched fingerprints.
std::string spec_fingerprint(const ScenarioSpec& spec);

/// Builds the header a run of `spec` writes.
RunHeader make_run_header(const ScenarioSpec& spec, double clean_accuracy,
                          int shard_index = 0, int shard_count = 1);

/// True when `flat_index` belongs to shard `shard_index` of `shard_count`
/// under the deterministic interleaved partition (flat % count == index).
bool shard_owns(std::size_t flat_index, int shard_index, int shard_count);

/// One persisted grid point.
struct StoredPoint {
  /// Row-major flat index of the cell within the full grid.
  std::size_t flat_index = 0;
  /// The restored per-point values/labels/summary.
  ScenarioPoint point;
};

/// A loaded run file: header plus every cleanly parsed point line.
struct RunFile {
  /// The validated header line.
  RunHeader header;
  /// Points in file order (ascending flat index for files the runner
  /// wrote). Duplicate flat indices keep the first occurrence.
  std::vector<StoredPoint> points;
  /// Byte length of the valid prefix (header + parsed point lines). A
  /// resumed writer truncates the file here before appending.
  std::size_t valid_prefix_bytes = 0;
  /// True when a torn/corrupt tail was ignored after the valid prefix.
  bool truncated_tail = false;

  /// Loads `path`. Throws std::invalid_argument on a missing file or a bad
  /// header; a malformed *point* line (torn write, corrupt tail) ends the
  /// scan gracefully instead.
  static RunFile load(const std::string& path);

  /// True when the file holds a point for flat grid index `flat_index`.
  bool has(std::size_t flat_index) const;

  /// Number of grid cells this file's shard owns under the deterministic
  /// interleaved partition (the denominator of its progress fraction).
  std::size_t owned_points() const;

  /// True when every owned cell has a stored point: the shard is finished
  /// and the file is ready to merge.
  bool complete() const;
};

/// Append-only run-file writer. Every append() writes one complete JSONL
/// line and (by default) fsyncs, making the line a durable progress marker.
/// append() is thread-safe: the stream is mutex-guarded, so concurrent
/// producers (e.g. a future campaign coordinator folding worker results)
/// serialize on whole lines and can never interleave partial writes.
class RunStoreWriter {
 public:
  /// Creates (or truncates) `path`, writes the header line, and syncs it.
  /// Parent directories are created as needed.
  RunStoreWriter(const std::string& path, const RunHeader& header,
                 bool fsync_each_point = true);

  /// Reopens an existing run file for appending, first truncating it to
  /// `valid_prefix_bytes` (from RunFile::load) so a torn tail from a
  /// previous crash can never corrupt lines appended after it.
  static RunStoreWriter resume(const std::string& path,
                               std::size_t valid_prefix_bytes,
                               bool fsync_each_point = true);

  /// Appends one completed grid point and syncs it. Thread-safe.
  void append(std::size_t flat_index, const ScenarioPoint& point);

  /// The run file being written.
  const std::string& path() const { return path_; }

 private:
  RunStoreWriter();

  struct FileCloser {
    void operator()(std::FILE* f) const;
  };

  void write_line(const std::string& line) FLIM_REQUIRES(*mutex_);

  std::string path_;
  /// Heap-allocated (never null) so the writer stays movable; a moved-from
  /// writer is only good for destruction.
  std::unique_ptr<core::Mutex> mutex_;
  std::unique_ptr<std::FILE, FileCloser> file_ FLIM_PT_GUARDED_BY(*mutex_);
  bool fsync_each_point_ = true;
};

/// Loads `paths` (shard files of one campaign, or a single complete run
/// file), validates that every header carries the same spec fingerprint and
/// grid, rejects overlapping points and gaps, and folds everything into one
/// complete ScenarioResult -- with CSV/JSON output byte-identical to the
/// single-process run of the same spec. Throws std::invalid_argument on any
/// incompatibility.
ScenarioResult merge_run_files(const std::vector<std::string>& paths);

}  // namespace flim::exp

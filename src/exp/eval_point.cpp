#include "exp/eval_point.hpp"

#include <sstream>

#include "bnn/flim_engine.hpp"
#include "core/check.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "fault/fault_generator.hpp"
#include "fault/residual.hpp"
#include "models/zoo.hpp"
#include "reliability/ecc/registry.hpp"

namespace flim::exp {

namespace {

bool is_known_model(const std::string& name) {
  if (name == "lenet") return true;
  for (const auto& m : models::zoo_model_names()) {
    if (m == name) return true;
  }
  return false;
}

}  // namespace

fault::FaultVectorFile realize_point_vectors(const lim::CrossbarGeometry& grid,
                                             const Workload& workload,
                                             const PointFaultConfig& pc,
                                             core::Rng& rng,
                                             const fault::FaultStack* parsed) {
  fault::FaultGenerator gen(grid);
  fault::RealizeContext ctx;
  ctx.grid = grid;
  ctx.distribution = pc.spec.distribution;
  ctx.cluster_count = pc.spec.cluster_count;
  ctx.cluster_radius = pc.spec.cluster_radius;
  fault::FaultStack local;
  const fault::FaultStack* stack = parsed;
  if (!pc.expr.empty() && stack == nullptr) {
    local = fault::parse_fault_expr(pc.expr);
    stack = &local;
  }

  fault::FaultVectorFile file;
  for (const bnn::LayerWorkload& layer : workload.layers) {
    if (!pc.filter.empty()) {
      bool selected = false;
      for (const auto& f : pc.filter) {
        if (f == layer.layer_name) selected = true;
      }
      if (!selected) continue;
    }
    if (!pc.expr.empty()) {
      file.add(
          stack->realize_entry(layer.layer_name, pc.spec.granularity, ctx, rng));
      continue;
    }
    fault::FaultVectorEntry entry;
    entry.layer_name = layer.layer_name;
    entry.kind = pc.spec.kind;
    entry.granularity = pc.spec.granularity;
    entry.dynamic_period = pc.spec.dynamic_period;
    entry.mask = gen.generate(pc.spec, rng);
    file.add(std::move(entry));
  }
  // The ECC scrub runs AFTER realization: every mask above was drawn from
  // exactly the RNG stream a no-codec run draws, so adding a codec never
  // perturbs the faults it is judged against (and the empty-codec path is
  // bit-identical to pre-ECC builds).
  if (!pc.ecc_expr.empty()) {
    const reliability::ecc::Codec& codec =
        reliability::ecc::CodecRegistry::instance().configure(pc.ecc_expr);
    fault::ResidualOptions residual;
    residual.word_bits = pc.ecc_word_bits;
    residual.interleave = pc.ecc_interleave;
    residual.correct_per_word = codec.capability().correct_guarantee;
    for (fault::FaultVectorEntry& entry : file.mutable_entries()) {
      fault::apply_entry_residual(entry, residual);
    }
  }
  return file;
}

double evaluate_fault_point(const EngineSpec& engine_spec,
                            const lim::CrossbarGeometry& grid,
                            const Workload& workload,
                            const bnn::ForwardPlan& plan, tensor::Workspace& ws,
                            const PointFaultConfig& pc, std::uint64_t seed,
                            const fault::FaultStack* parsed) {
  switch (engine_spec.backend) {
    case Backend::kReference: {
      bnn::ReferenceEngine engine;
      return plan.evaluate(workload.eval_batch, ws, engine);
    }
    case Backend::kFlim:
    case Backend::kDevice: {
      core::Rng rng(seed);
      const fault::FaultVectorFile vectors =
          realize_point_vectors(grid, workload, pc, rng, parsed);
      const auto engine = make_engine(engine_spec, vectors);
      return plan.evaluate(workload.eval_batch, ws, *engine);
    }
    case Backend::kTmr: {
      // Replica r draws its masks from an independent child stream, so the
      // redundant crossbars carry independent fault distributions.
      const core::Rng master(seed);
      std::vector<fault::FaultVectorFile> files;
      files.reserve(static_cast<std::size_t>(engine_spec.tmr_replicas));
      for (int r = 0; r < engine_spec.tmr_replicas; ++r) {
        core::Rng rng = master.derive(static_cast<std::uint64_t>(r));
        files.push_back(realize_point_vectors(grid, workload, pc, rng, parsed));
      }
      const auto engine = make_engine(engine_spec, files);
      return plan.evaluate(workload.eval_batch, ws, *engine);
    }
  }
  FLIM_REQUIRE(false, "unhandled backend");
  return 0.0;
}

void validate(const EvalPointSpec& spec) {
  FLIM_REQUIRE(!spec.workload.model.empty(), "workload model name is required");
  FLIM_REQUIRE(is_known_model(spec.workload.model),
               "unknown model: " + spec.workload.model +
                   " (expected 'lenet' or a Table-II zoo name)");
  FLIM_REQUIRE(spec.workload.eval_images > 0,
               "workload needs >= 1 evaluation image");
  FLIM_REQUIRE(spec.workload.epochs >= 1, "workload needs >= 1 epoch");
  FLIM_REQUIRE(spec.workload.train_samples > 0,
               "workload needs >= 1 training sample");
  FLIM_REQUIRE(spec.repetitions > 0, "eval point needs >= 1 repetition");
  FLIM_REQUIRE(spec.grid.rows > 0 && spec.grid.cols > 0,
               "fault grid must be positive");
  validate(spec.engine);
  if (!spec.fault_expr.empty()) {
    const fault::FaultStack stack = fault::parse_fault_expr(spec.fault_expr);
    stack.validate_granularity(spec.granularity);
    if (spec.engine.backend == Backend::kDevice) {
      stack.validate_device_backend();
    }
  }
}

std::string eval_point_key(const EvalPointSpec& spec) {
  std::ostringstream os;
  os << spec.workload.model << '|' << to_string(spec.engine.backend);
  if (spec.engine.backend == Backend::kTmr) {
    os << ':' << spec.engine.tmr_replicas;
  }
  os << '|' << fault::to_string(spec.granularity) << '|' << spec.grid.rows
     << 'x' << spec.grid.cols << '|';
  if (!spec.fault_expr.empty()) {
    os << fault::canonical_fault_expr(spec.fault_expr);
  }
  return os.str();
}

core::Summary evaluate_eval_point(const EvalPointSpec& spec,
                                  const Workload& workload,
                                  const bnn::ForwardPlan& plan,
                                  std::vector<tensor::Workspace>& workspaces,
                                  core::ThreadPool* pool,
                                  const fault::FaultStack* parsed) {
  const std::size_t workers = pool ? pool->size() : 1;
  FLIM_REQUIRE(workspaces.size() >= workers,
               "evaluate_eval_point needs one workspace per pool worker");
  PointFaultConfig pc;
  pc.spec.granularity = spec.granularity;
  pc.expr = spec.fault_expr;

  core::CampaignConfig campaign;
  campaign.repetitions = spec.repetitions;
  campaign.master_seed = spec.master_seed;
  campaign.pool = pool;
  return core::run_repeated(
      campaign, [&](std::uint64_t seed, std::size_t worker) {
        return evaluate_fault_point(spec.engine, spec.grid, workload, plan,
                                    workspaces[worker], pc, seed, parsed);
      });
}

std::string format_eval_payload(const EvalPointSpec& spec,
                                const core::Summary& summary) {
  const std::string fault = spec.fault_expr.empty()
                                ? std::string()
                                : fault::canonical_fault_expr(spec.fault_expr);
  std::ostringstream os;
  os << "{\"model\": \"" << core::json_escape(spec.workload.model)
     << "\", \"backend\": \"" << to_string(spec.engine.backend)
     << "\", \"tmr_replicas\": " << spec.engine.tmr_replicas
     << ", \"fault\": \"" << core::json_escape(fault)
     << "\", \"granularity\": \"" << fault::to_string(spec.granularity)
     << "\", \"grid\": \"" << spec.grid.rows << 'x' << spec.grid.cols
     << "\", \"images\": " << spec.workload.eval_images
     << ", \"reps\": " << spec.repetitions << ", \"seed\": " << spec.master_seed
     << ", \"mean\": " << core::format_double_roundtrip(summary.mean)
     << ", \"stddev\": " << core::format_double_roundtrip(summary.stddev)
     << ", \"min\": " << core::format_double_roundtrip(summary.min)
     << ", \"max\": " << core::format_double_roundtrip(summary.max) << "}";
  return os.str();
}

}  // namespace flim::exp

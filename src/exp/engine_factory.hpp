// Unified execution-engine factory.
//
// Every experiment front-end (CLI, benches, examples) used to hand-construct
// its substrate: ReferenceEngine by value, FlimEngine from a fault-vector
// file, DeviceEngine from a DeviceEngineConfig, MedianVoteEngine from an
// owned replica vector. EngineSpec + make_engine() erase those constructor
// differences: a backend is named declaratively and faults arrive as
// fault-vector files, so swapping the substrate of a campaign is a one-field
// change instead of new wiring.
#pragma once

/// \file
/// Unified execution-engine factory: EngineSpec names a backend
/// declaratively and make_engine() erases the constructor differences
/// between the four engine classes.

#include <memory>
#include <string>
#include <vector>

#include "bnn/engine.hpp"
#include "fault/fault_vector_file.hpp"
#include "xfault/device_engine.hpp"

namespace flim::exp {

/// Interchangeable execution substrates (docs/campaigns.md).
enum class Backend : std::uint8_t {
  kReference = 0,  ///< vanilla packed XNOR+popcount, no fault hooks
  kFlim = 1,       ///< mask-based fault injection on the fast path
  kDevice = 2,     ///< X-Fault-style gate-by-gate crossbar simulation
  kTmr = 3,        ///< N-modular redundancy over FLIM replicas, median vote
};

/// Parses "reference|flim|device|tmr"; throws std::invalid_argument on
/// unknown names.
Backend parse_backend(const std::string& name);

/// Report name of a backend.
std::string to_string(Backend backend);

/// Declarative description of one execution engine.
struct EngineSpec {
  /// Which substrate executes the binarized layers.
  Backend backend = Backend::kFlim;

  /// kDevice: electrical configuration + logic family of the simulated
  /// crossbars. Ignored by the other backends.
  xfault::DeviceEngineConfig device;

  /// kTmr: number of replica engines voting (odd, >= 1).
  int tmr_replicas = 3;
};

/// Validates an engine spec, throwing std::invalid_argument on nonsense
/// values (even TMR replica counts, non-positive device geometry).
void validate(const EngineSpec& spec);

/// Builds a fault-free engine of the requested backend (kTmr replicas are
/// clean FLIM engines, which degenerates to the reference behaviour).
std::unique_ptr<bnn::XnorExecutionEngine> make_engine(const EngineSpec& spec);

/// Builds an engine with `vectors` applied. kReference rejects non-empty
/// vectors (it has no fault hooks); kTmr gives every replica the same
/// vectors -- use the replica overload for independent per-replica masks.
std::unique_ptr<bnn::XnorExecutionEngine> make_engine(
    const EngineSpec& spec, const fault::FaultVectorFile& vectors);

/// Builds an engine from per-replica fault vectors: kTmr requires exactly
/// `tmr_replicas` files (replica i gets file i); every other backend
/// requires exactly one.
std::unique_ptr<bnn::XnorExecutionEngine> make_engine(
    const EngineSpec& spec,
    const std::vector<fault::FaultVectorFile>& replica_vectors);

}  // namespace flim::exp

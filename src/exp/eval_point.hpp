// Single-point fault evaluation: the serving-path unit of work.
//
// ScenarioRunner sweeps an axis grid; the evaluation server (src/serve) and
// `flim_cli eval` answer one point at a time. Both shapes bottom out in the
// same primitive -- realize fault vectors for a seed, build an engine, run
// the compiled forward plan -- so that primitive lives here as public API
// instead of scenario.cpp's former file-local helpers. The payoff is the
// serving contract: a served eval_result is byte-identical to a direct
// in-process evaluation because both funnel through evaluate_eval_point()
// and format_eval_payload().
#pragma once

/// \file
/// Single-point fault evaluation: PointFaultConfig (one resolved grid
/// point), per-repetition realization/evaluation, EvalPointSpec (the
/// serving request as data), cache keying, and the canonical one-line
/// result payload. See docs/serving.md.

#include <cstdint>
#include <string>
#include <vector>

#include "bnn/plan.hpp"
#include "core/campaign.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_registry.hpp"
#include "fault/fault_vector_file.hpp"
#include "lim/mapper.hpp"
#include "tensor/workspace.hpp"

namespace flim::exp {

/// The fault configuration of one resolved point: either a composable
/// fault expression (when `expr` is non-empty) or the legacy single-kind
/// fields of `spec`. Granularity and the distribution/cluster placement
/// settings always come from `spec`.
struct PointFaultConfig {
  /// Legacy single-kind fields plus granularity/placement settings.
  fault::FaultSpec spec;
  /// Composable fault expression; empty selects the legacy fields.
  std::string expr;
  /// Layer filter (empty = all binarized layers).
  std::vector<std::string> filter;
  /// ECC scrub codec expression (registry grammar); empty = no scrub. When
  /// set, realized masks are scrubbed down to their residual before the
  /// injector sees them -- AFTER mask realization, so the RNG stream (and
  /// therefore every no-codec result) is untouched.
  std::string ecc_expr;
  /// Data cells per ECC word of the scrub organization.
  int ecc_word_bits = 64;
  /// Bit-interleaving degree of the scrub organization.
  int ecc_interleave = 1;
};

/// Draws the fault vectors of one repetition: one entry per selected
/// binarized layer, masks drawn from `rng` in layer order. This is the
/// exact realization order the pre-scenario benches used, which keeps
/// outputs byte-identical across the API boundary. A point with a fault
/// expression realizes the parsed FaultStack instead (component entries);
/// the legacy path keeps the single-kind entry layout and its RNG stream
/// untouched. `parsed` optionally supplies the already-parsed stack for
/// `pc.expr` (the warm serving path parses once per cache entry, not once
/// per repetition); pass nullptr to parse here. Parsing never touches
/// `rng`, so both modes draw identical masks.
fault::FaultVectorFile realize_point_vectors(
    const lim::CrossbarGeometry& grid, const Workload& workload,
    const PointFaultConfig& pc, core::Rng& rng,
    const fault::FaultStack* parsed = nullptr);

/// One repetition: realize the fault vectors for `seed`, build the engine
/// through the factory, evaluate through the compiled plan. The plan is
/// built once per workload and shared read-only; `ws` is the calling
/// worker's private arena, reused across repetitions (only the injector
/// masks change between invocations). Returns the accuracy fraction,
/// bit-identical to the legacy Model::evaluate path.
double evaluate_fault_point(const EngineSpec& engine,
                            const lim::CrossbarGeometry& grid,
                            const Workload& workload,
                            const bnn::ForwardPlan& plan,
                            tensor::Workspace& ws, const PointFaultConfig& pc,
                            std::uint64_t seed,
                            const fault::FaultStack* parsed = nullptr);

/// One single-point evaluation request as data: workload, substrate, fault
/// stack, and the repetition protocol. This is the serving layer's request
/// shape -- `flim_cli eval` builds one directly, the server decodes one
/// from an eval_request wire message -- and the unit the warm-entry cache
/// is keyed on (eval_point_key()).
struct EvalPointSpec {
  /// Which model/dataset to evaluate.
  WorkloadSpec workload;
  /// Which execution substrate runs the binarized layers.
  EngineSpec engine;
  /// Composable fault expression (fault_registry.hpp grammar); empty
  /// evaluates the clean model.
  std::string fault_expr;
  /// Mask granularity of the realized fault vectors.
  fault::FaultGranularity granularity = fault::FaultGranularity::kOutputElement;
  /// Virtual crossbar grid the masks are drawn on.
  lim::CrossbarGeometry grid{64, 64};
  /// Repetition protocol.
  int repetitions = 3;
  /// Master seed; each repetition derives an independent seed from it.
  std::uint64_t master_seed = 2023;
};

/// Validates an eval-point spec, throwing std::invalid_argument on nonsense
/// values (unknown model, bad expression, granularity or backend the fault
/// stack rejects).
void validate(const EvalPointSpec& spec);

/// The warm-entry cache key of a spec: model, backend (with replica count
/// for tmr), granularity, grid, and the *canonical* fault expression --
/// so two spellings of one stack share a pool entry. Repetitions and the
/// master seed are deliberately absent: they are per-request parameters a
/// warm entry accepts at evaluation time. The workload shape (eval images,
/// training budget) is server-wide and therefore absent too; see
/// docs/serving.md#cache-keying.
std::string eval_point_key(const EvalPointSpec& spec);

/// Evaluates one point: `spec.repetitions` derived-seed repetitions folded
/// index-ordered into a Summary (accuracy fraction), bit-identical serial
/// vs pooled (core::run_repeated's contract). `workspaces` must hold at
/// least one arena per pool worker (one when `pool` is null). `parsed`
/// optionally supplies the pre-parsed fault stack, as in
/// realize_point_vectors().
core::Summary evaluate_eval_point(const EvalPointSpec& spec,
                                  const Workload& workload,
                                  const bnn::ForwardPlan& plan,
                                  std::vector<tensor::Workspace>& workspaces,
                                  core::ThreadPool* pool = nullptr,
                                  const fault::FaultStack* parsed = nullptr);

/// Renders the canonical one-line JSON result payload: the resolved spec
/// (canonical fault expression, report-name backend/granularity, "RxC"
/// grid) plus the summary with 17-digit round-trip doubles. Every serving
/// front-end -- direct `flim_cli eval`, the server's eval_result -- emits
/// exactly this string for a given (spec, summary), which is what makes
/// "served equals direct, byte for byte" a testable contract.
std::string format_eval_payload(const EvalPointSpec& spec,
                                const core::Summary& summary);

}  // namespace flim::exp

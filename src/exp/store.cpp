#include "exp/store.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/check.hpp"
#include "core/minijson.hpp"
#include "core/report.hpp"
#include "core/sysinfo.hpp"
#include "fault/fault_registry.hpp"
#include "lim/logic_family.hpp"
#include "reliability/ecc/registry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace flim::exp {

namespace {

// ---------------------------------------------------------------------------
// Canonical spec serialization. Line-based key=value text, one field per
// line in a fixed order, doubles at full round-trip precision -- the exact
// bytes are what the fingerprint hashes, so the order and formatting here
// are part of the run-file format and must stay stable (bump
// kRunFormatVersion and the leading tag when they change).

void put_s(std::ostringstream& os, const char* key, const std::string& v) {
  os << key << '=' << core::json_escape(v) << '\n';
}

void put_i(std::ostringstream& os, const char* key, long long v) {
  os << key << '=' << v << '\n';
}

void put_u(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << key << '=' << v << '\n';
}

void put_d(std::ostringstream& os, const char* key, double v) {
  os << key << '=' << core::format_double_roundtrip(v) << '\n';
}

// ---------------------------------------------------------------------------
// JSON for the flat run-file objects comes from core/minijson (numbers,
// strings, and arrays of either). Parse failures throw core::JsonError,
// which the loader maps to "corrupt tail" for point lines and to
// std::invalid_argument for the header; semantic violations use
// FLIM_REQUIRE directly.

using core::JsonError;
using core::JsonValue;
using core::json_array;
using core::json_number;
using core::json_string;

// ---------------------------------------------------------------------------
// Line formatting.

std::string quote(const std::string& s) {
  return '"' + core::json_escape(s) + '"';
}

std::string header_line(const RunHeader& h) {
  std::ostringstream os;
  os << "{\"flim_run_format\": " << h.format
     << ", \"name\": " << quote(h.name)
     << ", \"backend\": " << quote(h.backend)
     << ", \"fingerprint\": " << quote(h.fingerprint)
     << ", \"library_version\": " << quote(h.library_version)
     // As a string: JSON numbers decay to binary64 on parse, which cannot
     // hold every 64-bit seed exactly.
     << ", \"master_seed\": \"" << h.master_seed << '"'
     << ", \"repetitions\": " << h.repetitions
     << ", \"total_points\": " << h.total_points
     << ", \"shard_index\": " << h.shard_index
     << ", \"shard_count\": " << h.shard_count
     << ", \"clean_accuracy\": "
     << core::format_double_roundtrip(h.clean_accuracy)
     << ", \"axis_names\": [";
  for (std::size_t i = 0; i < h.axis_names.size(); ++i) {
    if (i) os << ", ";
    os << quote(h.axis_names[i]);
  }
  os << "], \"axis_sizes\": [";
  for (std::size_t i = 0; i < h.axis_sizes.size(); ++i) {
    if (i) os << ", ";
    os << h.axis_sizes[i];
  }
  os << "]}";
  return os.str();
}

std::string point_line(std::size_t flat_index, const ScenarioPoint& p) {
  std::ostringstream os;
  os << "{\"point\": " << flat_index << ", \"values\": [";
  for (std::size_t i = 0; i < p.values.size(); ++i) {
    if (i) os << ", ";
    os << core::format_double_roundtrip(p.values[i]);
  }
  os << "], \"labels\": [";
  for (std::size_t i = 0; i < p.labels.size(); ++i) {
    if (i) os << ", ";
    os << quote(p.labels[i]);
  }
  os << "], \"mean\": " << core::format_double_roundtrip(p.metric.mean)
     << ", \"stddev\": " << core::format_double_roundtrip(p.metric.stddev)
     << ", \"min\": " << core::format_double_roundtrip(p.metric.min)
     << ", \"max\": " << core::format_double_roundtrip(p.metric.max)
     << ", \"count\": " << p.metric.count << "}";
  return os.str();
}

RunHeader parse_header(const std::string& line) {
  const auto obj = core::parse_json_object_line(line);
  RunHeader h;
  h.format = static_cast<int>(json_number(obj, "flim_run_format"));
  h.name = json_string(obj, "name");
  h.backend = json_string(obj, "backend");
  h.fingerprint = json_string(obj, "fingerprint");
  h.library_version = json_string(obj, "library_version");
  h.master_seed =
      std::strtoull(json_string(obj, "master_seed").c_str(), nullptr, 10);
  h.repetitions = static_cast<int>(json_number(obj, "repetitions"));
  h.total_points = static_cast<std::size_t>(json_number(obj, "total_points"));
  h.shard_index = static_cast<int>(json_number(obj, "shard_index"));
  h.shard_count = static_cast<int>(json_number(obj, "shard_count"));
  h.clean_accuracy = json_number(obj, "clean_accuracy");
  for (const JsonValue& v : json_array(obj, "axis_names")) {
    if (v.kind != JsonValue::Kind::kString) {
      throw JsonError{"axis_names entry is not a string"};
    }
    h.axis_names.push_back(v.text);
  }
  for (const JsonValue& v : json_array(obj, "axis_sizes")) {
    if (v.kind != JsonValue::Kind::kNumber) {
      throw JsonError{"axis_sizes entry is not a number"};
    }
    h.axis_sizes.push_back(static_cast<std::size_t>(v.number));
  }
  return h;
}

StoredPoint parse_point(const std::string& line) {
  const auto obj = core::parse_json_object_line(line);
  StoredPoint sp;
  sp.flat_index = static_cast<std::size_t>(json_number(obj, "point"));
  for (const JsonValue& v : json_array(obj, "values")) {
    if (v.kind != JsonValue::Kind::kNumber) {
      throw JsonError{"values entry is not a number"};
    }
    sp.point.values.push_back(v.number);
  }
  for (const JsonValue& v : json_array(obj, "labels")) {
    if (v.kind != JsonValue::Kind::kString) {
      throw JsonError{"labels entry is not a string"};
    }
    sp.point.labels.push_back(v.text);
  }
  sp.point.metric.mean = json_number(obj, "mean");
  sp.point.metric.stddev = json_number(obj, "stddev");
  sp.point.metric.min = json_number(obj, "min");
  sp.point.metric.max = json_number(obj, "max");
  sp.point.metric.count = static_cast<std::size_t>(json_number(obj, "count"));
  return sp;
}

void sync_now(std::FILE* f) {
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(fileno(f));
#endif
}

}  // namespace

std::string canonical_spec(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "flim-scenario-v1\n";
  const WorkloadSpec& w = spec.workload;
  put_s(os, "workload.model", w.model);
  put_i(os, "workload.eval_images", w.eval_images);
  put_i(os, "workload.epochs", w.epochs);
  put_i(os, "workload.train_samples", w.train_samples);
  put_i(os, "workload.measure_clean_accuracy", w.measure_clean_accuracy);

  put_s(os, "engine.backend", to_string(spec.engine.backend));
  if (spec.engine.backend == Backend::kTmr) {
    put_i(os, "engine.tmr_replicas", spec.engine.tmr_replicas);
  }
  if (spec.engine.backend == Backend::kDevice) {
    const xfault::DeviceEngineConfig& d = spec.engine.device;
    put_s(os, "device.family", lim::to_string(d.family));
    put_i(os, "device.rows", d.crossbar.rows);
    put_i(os, "device.cols", d.crossbar.cols);
    put_d(os, "device.v_prog", d.crossbar.v_prog);
    put_d(os, "device.v_apply", d.crossbar.v_apply);
    put_d(os, "device.v_cond", d.crossbar.v_cond);
    put_d(os, "device.v_set", d.crossbar.v_set);
    put_d(os, "device.r_load", d.crossbar.r_load);
    put_d(os, "device.v_read", d.crossbar.v_read);
    const lim::MemristorParams& m = d.crossbar.device;
    put_d(os, "device.cell.r_on", m.r_on);
    put_d(os, "device.cell.r_off", m.r_off);
    put_d(os, "device.cell.v_on", m.v_on);
    put_d(os, "device.cell.v_off", m.v_off);
    put_d(os, "device.cell.k_on", m.k_on);
    put_d(os, "device.cell.k_off", m.k_off);
    put_d(os, "device.cell.dt", m.dt);
    put_i(os, "device.cell.steps_per_pulse", m.steps_per_pulse);
    put_d(os, "device.cell.read_threshold", m.read_threshold);
  }

  put_s(os, "fault.kind", fault::to_string(spec.fault.kind));
  put_d(os, "fault.injection_rate", spec.fault.injection_rate);
  put_i(os, "fault.faulty_rows", spec.fault.faulty_rows);
  put_i(os, "fault.faulty_cols", spec.fault.faulty_cols);
  put_i(os, "fault.dynamic_period", spec.fault.dynamic_period);
  put_d(os, "fault.stuck_at_one_fraction", spec.fault.stuck_at_one_fraction);
  put_s(os, "fault.granularity", fault::to_string(spec.fault.granularity));
  put_s(os, "fault.distribution", fault::to_string(spec.fault.distribution));
  put_i(os, "fault.cluster_count", spec.fault.cluster_count);
  put_d(os, "fault.cluster_radius", spec.fault.cluster_radius);
  // Emitted only when set, in canonical form (model names + sorted params,
  // round-trip numbers): legacy single-kind specs keep their pre-expression
  // fingerprints, so their old run files still resume, and two spellings of
  // one stack fingerprint identically.
  if (!spec.fault_expr.empty()) {
    put_s(os, "fault.expr", fault::canonical_fault_expr(spec.fault_expr));
  }
  // Same only-when-set rule as fault.expr: a spec without an ECC codec
  // fingerprints exactly as it did before the codec subsystem existed, so
  // every legacy run file stays resumable. The word organization rides
  // along with the codec because it changes the residual, not on its own.
  if (!spec.ecc_expr.empty()) {
    put_s(os, "ecc.expr", reliability::ecc::canonical_codec_expr(spec.ecc_expr));
    put_i(os, "ecc.word_bits", spec.ecc_word_bits);
    put_i(os, "ecc.interleave", spec.ecc_interleave);
  }

  put_i(os, "grid.rows", spec.grid.rows);
  put_i(os, "grid.cols", spec.grid.cols);
  for (const std::string& name : spec.layer_filter) {
    put_s(os, "layer_filter", name);
  }

  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const ScenarioAxis& axis = spec.axes[a];
    const std::string prefix = "axis." + std::to_string(a);
    put_i(os, (prefix + ".kind").c_str(),
          static_cast<long long>(static_cast<std::uint8_t>(axis.kind)));
    put_s(os, (prefix + ".name").c_str(), axis.name);
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      const AxisValue& v = axis.values[i];
      const std::string vkey = prefix + ".value." + std::to_string(i);
      put_d(os, (vkey + ".number").c_str(), v.number);
      put_s(os, (vkey + ".text").c_str(), v.text);
      put_s(os, (vkey + ".label").c_str(), v.label);
    }
  }

  put_i(os, "repetitions", spec.repetitions);
  put_u(os, "master_seed", spec.master_seed);
  return os.str();
}

std::string spec_fingerprint(const ScenarioSpec& spec) {
  return core::hash_hex(
      core::fnv1a64(core::code_fingerprint() + "\n" + canonical_spec(spec)));
}

RunHeader make_run_header(const ScenarioSpec& spec, double clean_accuracy,
                          int shard_index, int shard_count) {
  FLIM_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                   shard_index < shard_count,
               "shard index must be in [0, shard_count)");
  RunHeader h;
  h.name = spec.name;
  h.backend = to_string(spec.engine.backend);
  h.fingerprint = spec_fingerprint(spec);
  h.library_version = core::code_fingerprint();
  h.master_seed = spec.master_seed;
  h.repetitions = spec.repetitions;
  h.total_points = 1;
  for (const ScenarioAxis& axis : spec.axes) {
    h.total_points *= axis.values.size();
    h.axis_names.push_back(axis.name);
    h.axis_sizes.push_back(axis.values.size());
  }
  h.shard_index = shard_index;
  h.shard_count = shard_count;
  h.clean_accuracy = clean_accuracy;
  return h;
}

bool shard_owns(std::size_t flat_index, int shard_index, int shard_count) {
  FLIM_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                   shard_index < shard_count,
               "shard index must be in [0, shard_count)");
  return flat_index % static_cast<std::size_t>(shard_count) ==
         static_cast<std::size_t>(shard_index);
}

RunFile RunFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FLIM_REQUIRE(in.good(), "cannot open run file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  RunFile run;
  std::set<std::size_t> seen;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: a torn final write. Everything before it is
      // already accounted for; the fragment is dropped.
      run.truncated_tail = true;
      break;
    }
    const std::string line = data.substr(pos, nl - pos);
    const std::size_t line_end = nl + 1;
    if (!have_header) {
      try {
        run.header = parse_header(line);
      } catch (const JsonError& e) {
        FLIM_REQUIRE(false, "bad run-file header in " + path + ": " + e.what);
      }
      FLIM_REQUIRE(run.header.format == kRunFormatVersion,
                   "unsupported run-file format version " +
                       std::to_string(run.header.format) + " in " + path);
      have_header = true;
    } else {
      StoredPoint sp;
      try {
        sp = parse_point(line);
      } catch (const JsonError&) {
        // Corrupt tail: accept the valid prefix, ignore the rest.
        run.truncated_tail = true;
        break;
      }
      FLIM_REQUIRE(sp.flat_index < run.header.total_points,
                   "run file " + path + " has a point outside its grid");
      FLIM_REQUIRE(sp.point.labels.size() == run.header.axis_names.size(),
                   "run file " + path + " has a point of the wrong rank");
      if (seen.insert(sp.flat_index).second) {
        run.points.push_back(std::move(sp));
      }
    }
    run.valid_prefix_bytes = line_end;
    pos = line_end;
  }
  FLIM_REQUIRE(have_header, "run file has no header line: " + path);
  return run;
}

bool RunFile::has(std::size_t flat_index) const {
  for (const StoredPoint& sp : points) {
    if (sp.flat_index == flat_index) return true;
  }
  return false;
}

std::size_t RunFile::owned_points() const {
  std::size_t owned = 0;
  for (std::size_t flat = 0; flat < header.total_points; ++flat) {
    if (shard_owns(flat, header.shard_index, header.shard_count)) ++owned;
  }
  return owned;
}

bool RunFile::complete() const { return points.size() == owned_points(); }

void RunStoreWriter::FileCloser::operator()(std::FILE* f) const {
  if (f != nullptr) std::fclose(f);
}

RunStoreWriter::RunStoreWriter()
    : mutex_(std::make_unique<core::Mutex>()) {}

RunStoreWriter::RunStoreWriter(const std::string& path,
                               const RunHeader& header, bool fsync_each_point)
    : path_(path), mutex_(std::make_unique<core::Mutex>()),
      fsync_each_point_(fsync_each_point) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  file_.reset(std::fopen(path.c_str(), "wb"));
  FLIM_REQUIRE(file_ != nullptr, "cannot create run file: " + path);
  const core::MutexLock lock(*mutex_);
  write_line(header_line(header));
}

RunStoreWriter RunStoreWriter::resume(const std::string& path,
                                      std::size_t valid_prefix_bytes,
                                      bool fsync_each_point) {
  FLIM_REQUIRE(std::filesystem::exists(path),
               "cannot resume missing run file: " + path);
  // Drop any torn tail before appending: once truncated, the file is a
  // clean prefix again and every future line lands on a line boundary.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_prefix_bytes, ec);
  FLIM_REQUIRE(!ec, "cannot truncate run-file tail: " + path);
  RunStoreWriter w;
  w.path_ = path;
  w.fsync_each_point_ = fsync_each_point;
  w.file_.reset(std::fopen(path.c_str(), "ab"));
  FLIM_REQUIRE(w.file_ != nullptr, "cannot open run file for append: " + path);
  return w;
}

void RunStoreWriter::append(std::size_t flat_index,
                            const ScenarioPoint& point) {
  // Serialize the whole line under the lock: concurrent appends land as
  // complete, newline-terminated progress markers in some order, never
  // interleaved byte-wise.
  const std::string line = point_line(flat_index, point);
  FLIM_REQUIRE(mutex_ != nullptr, "run-file writer was moved from");
  const core::MutexLock lock(*mutex_);
  write_line(line);
}

void RunStoreWriter::write_line(const std::string& line) {
  FLIM_REQUIRE(file_ != nullptr, "run-file writer is closed");
  const std::string with_newline = line + "\n";
  const std::size_t written = std::fwrite(with_newline.data(), 1,
                                          with_newline.size(), file_.get());
  FLIM_REQUIRE(written == with_newline.size(),
               "short write to run file: " + path_);
  if (fsync_each_point_) {
    sync_now(file_.get());
  } else {
    std::fflush(file_.get());
  }
}

ScenarioResult merge_run_files(const std::vector<std::string>& paths) {
  FLIM_REQUIRE(!paths.empty(), "merge needs at least one run file");
  std::vector<RunFile> runs;
  runs.reserve(paths.size());
  for (const std::string& path : paths) {
    runs.push_back(RunFile::load(path));
  }

  const RunHeader& first = runs.front().header;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunHeader& h = runs[i].header;
    FLIM_REQUIRE(h.fingerprint == first.fingerprint,
                 "spec fingerprint mismatch between run files " + paths[0] +
                     " and " + paths[i]);
    FLIM_REQUIRE(h.total_points == first.total_points &&
                     h.axis_names == first.axis_names &&
                     h.axis_sizes == first.axis_sizes,
                 "grid mismatch between run files " + paths[0] + " and " +
                     paths[i]);
    FLIM_REQUIRE(h.clean_accuracy == first.clean_accuracy,
                 "clean-accuracy mismatch between run files " + paths[0] +
                     " and " + paths[i]);
  }

  std::map<std::size_t, ScenarioPoint> merged;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (StoredPoint& sp : runs[i].points) {
      const auto inserted = merged.emplace(sp.flat_index,
                                           std::move(sp.point));
      FLIM_REQUIRE(inserted.second,
                   "overlapping grid point " + std::to_string(sp.flat_index) +
                       " in " + paths[i] +
                       " (shard run files must be disjoint)");
    }
  }
  FLIM_REQUIRE(
      merged.size() == first.total_points,
      "merged run files cover " + std::to_string(merged.size()) + " of " +
          std::to_string(first.total_points) +
          " grid points (missing shards?)");

  ScenarioResult result;
  result.name = first.name;
  result.backend = first.backend;
  result.axis_names = first.axis_names;
  result.axis_sizes = first.axis_sizes;
  result.clean_accuracy = first.clean_accuracy;
  result.total_points = first.total_points;
  result.points.reserve(merged.size());
  result.flat_indices.reserve(merged.size());
  for (auto& [flat, point] : merged) {
    result.flat_indices.push_back(flat);
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace flim::exp

#include "bnn/engine.hpp"

#include "core/check.hpp"
#include "tensor/xnor_gemm.hpp"

namespace flim::bnn {

void ReferenceEngine::execute(const std::string& /*layer_name*/,
                              const tensor::BitMatrix& activations,
                              const tensor::BitMatrix& weights,
                              std::int64_t /*positions_per_image*/,
                              tensor::IntTensor& out) {
  tensor::xnor_gemm(activations, weights, out, pool_);
}

void RecordingEngine::execute(const std::string& layer_name,
                              const tensor::BitMatrix& activations,
                              const tensor::BitMatrix& weights,
                              std::int64_t positions_per_image,
                              tensor::IntTensor& out) {
  if (find(layer_name) == nullptr) {
    LayerWorkload w;
    w.layer_name = layer_name;
    w.positions_per_image = positions_per_image;
    w.out_channels = weights.rows();
    w.k = weights.cols();
    workloads_.push_back(std::move(w));
  }
  tensor::xnor_gemm(activations, weights, out);
}

const LayerWorkload* RecordingEngine::find(
    const std::string& layer_name) const {
  for (const auto& w : workloads_) {
    if (w.layer_name == layer_name) return &w;
  }
  return nullptr;
}

}  // namespace flim::bnn

#include "bnn/dense.hpp"

#include "bnn/plan.hpp"
#include "core/check.hpp"
#include "tensor/gemm.hpp"

namespace flim::bnn {

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features, tensor::FloatTensor weights,
             tensor::FloatTensor bias)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weights_(std::move(weights)),
      bias_(std::move(bias)) {
  FLIM_REQUIRE((weights_.shape() == tensor::Shape{out_features_, in_features_}),
               "dense weights must be [out_features, in_features]");
  FLIM_REQUIRE(
(bias_.numel() == 0 || bias_.shape() == tensor::Shape{out_features_}),
      "dense bias must be empty or [out_features]");
}

tensor::FloatTensor Dense::forward(const tensor::FloatTensor& input,
                                   InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 2, "dense expects [batch, features]");
  FLIM_REQUIRE(input.shape()[1] == in_features_,
               "dense input feature mismatch");
  tensor::FloatTensor out;
  tensor::gemm_bt(input, weights_, out);
  if (bias_.numel() > 0) {
    const std::int64_t n = out.shape()[0];
    for (std::int64_t r = 0; r < n; ++r) {
      for (std::int64_t c = 0; c < out_features_; ++c) {
        out.at2(r, c) += bias_[c];
      }
    }
  }
  record_profile(ctx, in_features_ * out_features_, 0);
  return out;
}

void Dense::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 2, "dense expects [batch, features]");
  FLIM_REQUIRE(in[1] == in_features_, "dense input feature mismatch");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape = tensor::Shape{in[0], out_features_};
  pc.set_shape(pc.step(si).out_shape);
}

void Dense::execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
                    ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  tensor::gemm_bt(input, weights_, out);
  if (bias_.numel() > 0) {
    const std::int64_t n = out.shape()[0];
    for (std::int64_t r = 0; r < n; ++r) {
      for (std::int64_t c = 0; c < out_features_; ++c) {
        out.at2(r, c) += bias_[c];
      }
    }
  }
}

}  // namespace flim::bnn

// XNOR execution engines: the seam between BNN layers and the substrate
// that evaluates their binarized arithmetic.
//
// Binarized layers lower themselves to one call:
//     engine->execute(layer, activations, weights, positions, out)
// where activations is [batch*positions, K] and weights is [out_ch, K],
// both ±1-packed, and out receives the integer accumulator feature map.
//
// Swapping the engine swaps the execution model with identical weights and
// data -- the C++ analogue of FLIM overriding Larq's convolution:
//   * ReferenceEngine  -- vanilla packed XNOR+popcount (the paper's
//                         "vanilla Larq" baseline);
//   * FlimEngine       -- same fast path plus mask-based fault injection
//                         (flim_engine.hpp);
//   * DeviceEngine     -- every XNOR routed through the memristive crossbar
//                         device simulation (xfault/device_engine.hpp, the
//                         X-Fault-style baseline);
//   * RecordingEngine  -- reference + workload profiling (used for fault
//                         mapping and Table II).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::core {
class ThreadPool;
}

namespace flim::bnn {

/// Abstract executor of binarized layer arithmetic.
class XnorExecutionEngine {
 public:
  virtual ~XnorExecutionEngine() = default;

  /// Hands the engine a pool for intra-batch row sharding of its XNOR-GEMM
  /// kernels (nullptr restores serial execution). Sharded and serial runs
  /// are bit-identical; engines without a shardable fast path ignore it.
  virtual void set_thread_pool(core::ThreadPool* /*pool*/) {}

  /// Computes out[i, j] = sum_k XNOR(activations[i, k], weights[j, k]) in
  /// the ±1 encoding. `positions_per_image` rows of `activations` belong to
  /// one image (conv: out_h*out_w, dense: 1); engines that model per-image
  /// fault timing use it to delimit images.
  virtual void execute(const std::string& layer_name,
                       const tensor::BitMatrix& activations,
                       const tensor::BitMatrix& weights,
                       std::int64_t positions_per_image,
                       tensor::IntTensor& out) = 0;

  /// Resets any notion of time (dynamic-fault counters); called between
  /// campaign repetitions.
  virtual void reset_time() {}
};

/// Fault-free packed-bit engine.
class ReferenceEngine final : public XnorExecutionEngine {
 public:
  void set_thread_pool(core::ThreadPool* pool) override { pool_ = pool; }

  void execute(const std::string& layer_name,
               const tensor::BitMatrix& activations,
               const tensor::BitMatrix& weights,
               std::int64_t positions_per_image,
               tensor::IntTensor& out) override;

 private:
  core::ThreadPool* pool_ = nullptr;
};

/// Profile of one binarized layer execution.
struct LayerWorkload {
  std::string layer_name;
  std::int64_t positions_per_image = 0;  // output positions per image
  std::int64_t out_channels = 0;
  std::int64_t k = 0;  // product terms per output element

  /// XNOR ops per image at output-element granularity.
  std::int64_t output_elements_per_image() const {
    return positions_per_image * out_channels;
  }
  /// XNOR ops per image at product-term granularity.
  std::int64_t product_terms_per_image() const {
    return positions_per_image * out_channels * k;
  }
};

/// Reference engine that additionally records per-layer workloads (first
/// execution of each layer name wins; repeated executions are counted).
class RecordingEngine final : public XnorExecutionEngine {
 public:
  void execute(const std::string& layer_name,
               const tensor::BitMatrix& activations,
               const tensor::BitMatrix& weights,
               std::int64_t positions_per_image,
               tensor::IntTensor& out) override;

  const std::vector<LayerWorkload>& workloads() const { return workloads_; }

  /// Finds a recorded workload; nullptr when the layer never executed.
  const LayerWorkload* find(const std::string& layer_name) const;

 private:
  std::vector<LayerWorkload> workloads_;
};

}  // namespace flim::bnn

// Elementwise layers: sign binarization, ReLU, per-channel scaling, flatten.
#pragma once

#include "bnn/layer.hpp"

namespace flim::bnn {

/// Sign binarization: y = +1 when x >= 0, else -1.
class Sign final : public Layer {
 public:
  explicit Sign(std::string name);
  std::string type() const override { return "sign"; }
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
};

/// Rectified linear unit (used by the partially binarized models).
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name);
  std::string type() const override { return "relu"; }
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
};

/// Per-channel multiplicative gain (XNOR-Net's alpha scaling: "weights are
/// multiplied by an individual gain based on the magnitude of the channel").
class ChannelScale final : public Layer {
 public:
  /// `gains` shaped [channels].
  ChannelScale(std::string name, tensor::FloatTensor gains);
  std::string type() const override { return "channel_scale"; }
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
  std::int64_t real_param_count() const override { return gains_.numel(); }
  const tensor::FloatTensor& gains() const { return gains_; }

 private:
  tensor::FloatTensor gains_;
};

/// NCHW -> [N, C*H*W].
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name);
  std::string type() const override { return "flatten"; }
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
};

/// Pass-through layer. Used where a training-only construct (e.g. a
/// training-time fault-injection site) has no inference counterpart.
class Identity final : public Layer {
 public:
  explicit Identity(std::string name);
  std::string type() const override { return "identity"; }
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
};

}  // namespace flim::bnn

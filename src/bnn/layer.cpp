#include "bnn/layer.hpp"

namespace flim::bnn {

void Layer::record_profile(InferenceContext& ctx, std::int64_t real_macs,
                           std::int64_t binary_macs) const {
  if (ctx.profile == nullptr) return;
  LayerProfile p;
  p.name = name();
  p.type = type();
  p.real_params = real_param_count();
  p.binary_params = binary_param_count();
  p.real_macs_per_image = real_macs;
  p.binary_macs_per_image = binary_macs;
  ctx.profile->push_back(std::move(p));
}

}  // namespace flim::bnn

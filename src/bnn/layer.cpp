#include "bnn/layer.hpp"

#include "core/check.hpp"

namespace flim::bnn {

void Layer::plan(PlanContext&) const {
  FLIM_REQUIRE(false, "layer '" + name_ + "' (type " + type() +
                          ") does not implement plan(); use the legacy "
                          "Model::forward path");
}

void Layer::execute(const tensor::FloatTensor&, tensor::FloatTensor&,
                    ExecContext&) const {
  FLIM_REQUIRE(false, "layer '" + name_ + "' (type " + type() +
                          ") does not implement execute(); use the legacy "
                          "Model::forward path");
}

void Layer::record_profile(InferenceContext& ctx, std::int64_t real_macs,
                           std::int64_t binary_macs) const {
  if (ctx.profile == nullptr) return;
  LayerProfile p;
  p.name = name();
  p.type = type();
  p.real_params = real_param_count();
  p.binary_params = binary_param_count();
  p.real_macs_per_image = real_macs;
  p.binary_macs_per_image = binary_macs;
  ctx.profile->push_back(std::move(p));
}

}  // namespace flim::bnn

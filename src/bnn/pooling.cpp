#include "bnn/pooling.hpp"

#include <algorithm>

#include "bnn/plan.hpp"
#include "core/check.hpp"

namespace flim::bnn {

namespace {

std::int64_t pooled_extent(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride) {
  return (in - kernel) / stride + 1;
}

}  // namespace

MaxPool2D::MaxPool2D(std::string name, std::int64_t kernel,
                     std::int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  FLIM_REQUIRE(kernel_ >= 1 && stride_ >= 1, "pool kernel/stride must be >= 1");
}

tensor::FloatTensor MaxPool2D::forward(const tensor::FloatTensor& input,
                                       InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "max pool expects NCHW input");
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  FLIM_REQUIRE(h >= kernel_ && w >= kernel_, "pool window exceeds input");
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);

  tensor::FloatTensor out(tensor::Shape{n, c, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = input.at4(b, ch, y * stride_, x * stride_);
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              best = std::max(best,
                              input.at4(b, ch, y * stride_ + ky, x * stride_ + kx));
            }
          }
          out.at4(b, ch, y, x) = best;
        }
      }
    }
  }
  record_profile(ctx, 0, 0);
  return out;
}

void MaxPool2D::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4, "max pool expects NCHW input");
  FLIM_REQUIRE(in[2] >= kernel_ && in[3] >= kernel_,
               "pool window exceeds input");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape =
      tensor::Shape{in[0], in[1], pooled_extent(in[2], kernel_, stride_),
                    pooled_extent(in[3], kernel_, stride_)};
  pc.set_shape(pc.step(si).out_shape);
}

void MaxPool2D::execute(const tensor::FloatTensor& input,
                        tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t oh = st.out_shape[2];
  const std::int64_t ow = st.out_shape[3];
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = input.at4(b, ch, y * stride_, x * stride_);
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              best = std::max(
                  best, input.at4(b, ch, y * stride_ + ky, x * stride_ + kx));
            }
          }
          out.at4(b, ch, y, x) = best;
        }
      }
    }
  }
}

GlobalAvgPool::GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

tensor::FloatTensor GlobalAvgPool::forward(const tensor::FloatTensor& input,
                                           InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "global avg pool expects NCHW");
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  tensor::FloatTensor out(tensor::Shape{n, c});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* in = input.data() + (b * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += in[i];
      out.at2(b, ch) = acc / static_cast<float>(hw);
    }
  }
  record_profile(ctx, input.numel() / ctx.batch, 0);
  return out;
}

void GlobalAvgPool::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4, "global avg pool expects NCHW");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape = tensor::Shape{in[0], in[1]};
  pc.set_shape(pc.step(si).out_shape);
}

void GlobalAvgPool::execute(const tensor::FloatTensor& input,
                            tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* in = input.data() + (b * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += in[i];
      out.at2(b, ch) = acc / static_cast<float>(hw);
    }
  }
}

AvgPool2D::AvgPool2D(std::string name, std::int64_t kernel, std::int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  FLIM_REQUIRE(kernel_ >= 1 && stride_ >= 1, "pool kernel/stride must be >= 1");
}

tensor::FloatTensor AvgPool2D::forward(const tensor::FloatTensor& input,
                                       InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "avg pool expects NCHW input");
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  FLIM_REQUIRE(h >= kernel_ && w >= kernel_, "pool window exceeds input");
  const std::int64_t oh = pooled_extent(h, kernel_, stride_);
  const std::int64_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  tensor::FloatTensor out(tensor::Shape{n, c, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              acc += input.at4(b, ch, y * stride_ + ky, x * stride_ + kx);
            }
          }
          out.at4(b, ch, y, x) = acc * inv;
        }
      }
    }
  }
  record_profile(ctx, 0, 0);
  return out;
}

void AvgPool2D::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4, "avg pool expects NCHW input");
  FLIM_REQUIRE(in[2] >= kernel_ && in[3] >= kernel_,
               "pool window exceeds input");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape =
      tensor::Shape{in[0], in[1], pooled_extent(in[2], kernel_, stride_),
                    pooled_extent(in[3], kernel_, stride_)};
  pc.set_shape(pc.step(si).out_shape);
}

void AvgPool2D::execute(const tensor::FloatTensor& input,
                        tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t oh = st.out_shape[2];
  const std::int64_t ow = st.out_shape[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              acc += input.at4(b, ch, y * stride_ + ky, x * stride_ + kx);
            }
          }
          out.at4(b, ch, y, x) = acc * inv;
        }
      }
    }
  }
}

}  // namespace flim::bnn

// Spatial pooling layers (CMOS-executed).
#pragma once

#include "bnn/layer.hpp"

namespace flim::bnn {

/// Max pooling over square windows.
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::string name, std::int64_t kernel, std::int64_t stride);

  std::string type() const override { return "max_pool2d"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
};

/// Global average pooling: NCHW -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name);

  std::string type() const override { return "global_avg_pool"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;
};

/// Average pooling over square windows (used for DenseNet-style transitions).
class AvgPool2D final : public Layer {
 public:
  AvgPool2D(std::string name, std::int64_t kernel, std::int64_t stride);

  std::string type() const override { return "avg_pool2d"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
};

}  // namespace flim::bnn

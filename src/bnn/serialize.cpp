#include "bnn/serialize.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "bnn/activations.hpp"
#include "bnn/batch_norm.hpp"
#include "bnn/binary_conv2d.hpp"
#include "bnn/binary_dense.hpp"
#include "bnn/blocks.hpp"
#include "bnn/conv2d.hpp"
#include "bnn/dense.hpp"
#include "bnn/pooling.hpp"
#include "core/check.hpp"

namespace flim::bnn {

namespace {

constexpr std::uint64_t kMagic = 0x314c444d4d494c46ull;  // "FLIMMDL1"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { os_.put(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void tensor(const tensor::FloatTensor& t) {
    u32(static_cast<std::uint32_t>(t.shape().rank()));
    for (std::size_t i = 0; i < t.shape().rank(); ++i) i64(t.shape()[i]);
    raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }

 private:
  void raw(const void* p, std::size_t n) {
    os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
  std::ostream& os_;
};

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::uint8_t u8() {
    char c = 0;
    raw(&c, 1);
    return static_cast<std::uint8_t>(c);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  float f32() {
    float v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    FLIM_REQUIRE(len < (1u << 20), "implausible string length in model file");
    std::string s(len, '\0');
    raw(s.data(), len);
    return s;
  }
  tensor::FloatTensor tensor() {
    const std::uint32_t rank = u32();
    FLIM_REQUIRE(rank <= 4, "implausible tensor rank in model file");
    std::vector<std::int64_t> dims;
    for (std::uint32_t i = 0; i < rank; ++i) dims.push_back(i64());
    tensor::FloatTensor t((tensor::Shape(dims)));
    raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
    return t;
  }

 private:
  void raw(void* p, std::size_t n) {
    is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    FLIM_REQUIRE(is_.good() || (is_.eof() && n == 0),
                 "model file truncated");
  }
  std::istream& is_;
};

void write_layer(Writer& w, const Layer& layer);

void write_layer_list(Writer& w, const std::vector<LayerPtr>& layers) {
  w.u32(static_cast<std::uint32_t>(layers.size()));
  for (const auto& l : layers) write_layer(w, *l);
}

void write_layer(Writer& w, const Layer& layer) {
  const std::string type = layer.type();
  w.str(type);
  w.str(layer.name());
  if (type == "conv2d") {
    const auto& l = static_cast<const Conv2D&>(layer);
    w.i64(l.in_channels());
    w.i64(l.out_channels());
    w.i64(l.kernel());
    w.i64(l.stride());
    w.i64(l.pad());
    w.tensor(l.weights());
    w.tensor(l.bias());
  } else if (type == "binary_conv2d") {
    const auto& l = static_cast<const BinaryConv2D&>(layer);
    w.i64(l.in_channels());
    w.i64(l.out_channels());
    w.i64(l.kernel());
    w.i64(l.stride());
    w.i64(l.pad());
    w.tensor(l.weights_float());
  } else if (type == "dense") {
    const auto& l = static_cast<const Dense&>(layer);
    w.i64(l.in_features());
    w.i64(l.out_features());
    w.tensor(l.weights());
    w.tensor(l.bias());
  } else if (type == "binary_dense") {
    const auto& l = static_cast<const BinaryDense&>(layer);
    w.i64(l.in_features());
    w.i64(l.out_features());
    w.tensor(l.weights_float());
  } else if (type == "batch_norm") {
    const auto& l = static_cast<const BatchNorm&>(layer);
    w.i64(l.channels());
    w.f32(l.epsilon());
    w.tensor(l.gamma());
    w.tensor(l.beta());
    w.tensor(l.mean());
    w.tensor(l.variance());
  } else if (type == "max_pool2d") {
    const auto& l = static_cast<const MaxPool2D&>(layer);
    w.i64(l.kernel());
    w.i64(l.stride());
  } else if (type == "avg_pool2d") {
    const auto& l = static_cast<const AvgPool2D&>(layer);
    w.i64(l.kernel());
    w.i64(l.stride());
  } else if (type == "global_avg_pool" || type == "sign" || type == "relu" ||
             type == "flatten" || type == "identity") {
    // no payload
  } else if (type == "channel_scale") {
    const auto& l = static_cast<const ChannelScale&>(layer);
    w.tensor(l.gains());
  } else if (type == "sequential") {
    const auto& l = static_cast<const Sequential&>(layer);
    write_layer_list(w, l.children());
  } else if (type == "residual") {
    const auto& l = static_cast<const ResidualBlock&>(layer);
    write_layer_list(w, l.body());
    w.u8(l.shortcut() != nullptr ? 1 : 0);
    if (l.shortcut() != nullptr) write_layer(w, *l.shortcut());
  } else if (type == "concat") {
    const auto& l = static_cast<const ConcatBlock&>(layer);
    write_layer_list(w, l.body());
  } else {
    FLIM_REQUIRE(false, "unknown layer type in serialization: " + type);
  }
}

LayerPtr read_layer(Reader& r);

std::vector<LayerPtr> read_layer_list(Reader& r) {
  const std::uint32_t count = r.u32();
  FLIM_REQUIRE(count < (1u << 16), "implausible layer count in model file");
  std::vector<LayerPtr> layers;
  layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) layers.push_back(read_layer(r));
  return layers;
}

LayerPtr read_layer(Reader& r) {
  const std::string type = r.str();
  const std::string name = r.str();
  if (type == "conv2d") {
    const auto in = r.i64(), out = r.i64(), k = r.i64(), s = r.i64(),
               p = r.i64();
    auto weights = r.tensor();
    auto bias = r.tensor();
    return std::make_unique<Conv2D>(name, in, out, k, s, p, std::move(weights),
                                    std::move(bias));
  }
  if (type == "binary_conv2d") {
    const auto in = r.i64(), out = r.i64(), k = r.i64(), s = r.i64(),
               p = r.i64();
    auto weights = r.tensor();
    return std::make_unique<BinaryConv2D>(name, in, out, k, s, p,
                                          std::move(weights));
  }
  if (type == "dense") {
    const auto in = r.i64(), out = r.i64();
    auto weights = r.tensor();
    auto bias = r.tensor();
    return std::make_unique<Dense>(name, in, out, std::move(weights),
                                   std::move(bias));
  }
  if (type == "binary_dense") {
    const auto in = r.i64(), out = r.i64();
    auto weights = r.tensor();
    return std::make_unique<BinaryDense>(name, in, out, std::move(weights));
  }
  if (type == "batch_norm") {
    const auto channels = r.i64();
    const float eps = r.f32();
    auto gamma = r.tensor();
    auto beta = r.tensor();
    auto mean = r.tensor();
    auto variance = r.tensor();
    return std::make_unique<BatchNorm>(name, channels, std::move(gamma),
                                       std::move(beta), std::move(mean),
                                       std::move(variance), eps);
  }
  if (type == "max_pool2d") {
    const auto k = r.i64(), s = r.i64();
    return std::make_unique<MaxPool2D>(name, k, s);
  }
  if (type == "avg_pool2d") {
    const auto k = r.i64(), s = r.i64();
    return std::make_unique<AvgPool2D>(name, k, s);
  }
  if (type == "global_avg_pool") return std::make_unique<GlobalAvgPool>(name);
  if (type == "sign") return std::make_unique<Sign>(name);
  if (type == "relu") return std::make_unique<ReLU>(name);
  if (type == "flatten") return std::make_unique<Flatten>(name);
  if (type == "identity") return std::make_unique<Identity>(name);
  if (type == "channel_scale") {
    auto gains = r.tensor();
    return std::make_unique<ChannelScale>(name, std::move(gains));
  }
  if (type == "sequential") {
    auto children = read_layer_list(r);
    return std::make_unique<Sequential>(name, std::move(children));
  }
  if (type == "residual") {
    auto body = read_layer_list(r);
    LayerPtr shortcut;
    if (r.u8() != 0) shortcut = read_layer(r);
    return std::make_unique<ResidualBlock>(name, std::move(body),
                                           std::move(shortcut));
  }
  if (type == "concat") {
    auto body = read_layer_list(r);
    return std::make_unique<ConcatBlock>(name, std::move(body));
  }
  FLIM_REQUIRE(false, "unknown layer type in model file: " + type);
  return nullptr;
}

}  // namespace

void save_model(const Model& model, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FLIM_REQUIRE(os.good(), "cannot open model file for writing: " + path);
  Writer w(os);
  w.u64(kMagic);
  w.u32(kVersion);
  w.str(model.name());
  w.u32(static_cast<std::uint32_t>(model.num_layers()));
  for (const auto& layer : model.layers()) write_layer(w, *layer);
  FLIM_REQUIRE(os.good(), "model file write failed: " + path);
}

Model load_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FLIM_REQUIRE(is.good(), "cannot open model file: " + path);
  Reader r(is);
  FLIM_REQUIRE(r.u64() == kMagic, "not a FLIM model file: " + path);
  FLIM_REQUIRE(r.u32() == kVersion, "unsupported model file version");
  Model model(r.str());
  const std::uint32_t count = r.u32();
  FLIM_REQUIRE(count < (1u << 16), "implausible layer count in model file");
  for (std::uint32_t i = 0; i < count; ++i) model.add(read_layer(r));
  return model;
}

}  // namespace flim::bnn

// Layer base class and inference context.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace flim::bnn {

class XnorExecutionEngine;
class PlanContext;
class ExecContext;

/// Per-layer profile row collected during Model::analyze (Table II inputs).
struct LayerProfile {
  std::string name;
  std::string type;
  std::int64_t real_params = 0;
  std::int64_t binary_params = 0;
  std::int64_t real_macs_per_image = 0;    // multiply-accumulates in CMOS
  std::int64_t binary_macs_per_image = 0;  // XNOR-accumulates on crossbars
};

/// State threaded through a forward pass.
struct InferenceContext {
  /// Engine evaluating binarized arithmetic; never null during forward.
  XnorExecutionEngine* engine = nullptr;

  /// When non-null, layers append their profile (set by Model::analyze).
  std::vector<LayerProfile>* profile = nullptr;

  /// Batch images currently flowing through (for per-image MAC accounting).
  std::int64_t batch = 1;
};

/// Base class of all inference layers.
///
/// Layers are immutable after construction (weights fixed); forward() is
/// const so one model can serve concurrent threads, each with its own
/// engine/context.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  /// Stable type tag used by serialization and reports.
  virtual std::string type() const = 0;

  /// Computes the layer output.
  virtual tensor::FloatTensor forward(const tensor::FloatTensor& input,
                                      InferenceContext& ctx) const = 0;

  /// Compile phase of the plan/execute split (bnn/plan.hpp): resolves the
  /// output shape from the planning context's current shape, precomputes any
  /// static lowering data (im2col gather maps, packed-weight references),
  /// and reserves workspace scratch slots. Called once per ForwardPlan;
  /// every layer type overrides it (the base throws so an unported custom
  /// layer fails loudly at plan time, while its legacy forward keeps
  /// working).
  virtual void plan(PlanContext& pc) const;

  /// Execute phase: computes the layer output into `out`, a workspace-owned
  /// buffer the layer reshapes to its planned output shape. Must be
  /// arithmetic-identical to forward() (same operations in the same order),
  /// and allocation-free once the workspace reached its high-water mark.
  /// Implementations start by consuming their plan record via
  /// ExecContext::next_step().
  virtual void execute(const tensor::FloatTensor& input,
                       tensor::FloatTensor& out, ExecContext& ec) const;

  /// Parameter counts (real-valued vs binarized).
  virtual std::int64_t real_param_count() const { return 0; }
  virtual std::int64_t binary_param_count() const { return 0; }

 protected:
  /// Appends a profile row when profiling is active.
  void record_profile(InferenceContext& ctx, std::int64_t real_macs,
                      std::int64_t binary_macs) const;

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace flim::bnn

// Fault-mitigation engines.
//
// The paper concludes that "it is mandatory to adopt not only fault-tolerant
// approaches but also strategies able to monitor and/or mitigate
// applications' degradation". MedianVoteEngine is the classic such approach:
// N-modular redundancy over crossbar replicas with independent fault
// distributions, combined by an elementwise median (= majority vote for
// monotone accumulator corruption).
#pragma once

#include <memory>
#include <vector>

#include "bnn/engine.hpp"

namespace flim::bnn {

/// Executes every binarized operation on N replica engines and combines the
/// accumulator outputs with an elementwise median.
class MedianVoteEngine final : public XnorExecutionEngine {
 public:
  /// Takes ownership of the replica engines; requires an odd count >= 1.
  explicit MedianVoteEngine(
      std::vector<std::unique_ptr<XnorExecutionEngine>> replicas);

  std::size_t num_replicas() const { return replicas_.size(); }

  /// Forwards the sharding pool to every replica.
  void set_thread_pool(core::ThreadPool* pool) override;

  void execute(const std::string& layer_name,
               const tensor::BitMatrix& activations,
               const tensor::BitMatrix& weights,
               std::int64_t positions_per_image,
               tensor::IntTensor& out) override;

  void reset_time() override;

 private:
  std::vector<std::unique_ptr<XnorExecutionEngine>> replicas_;
};

}  // namespace flim::bnn

#include "bnn/binary_conv2d.hpp"

#include "bnn/engine.hpp"
#include "bnn/plan.hpp"
#include "core/check.hpp"

namespace flim::bnn {

BinaryConv2D::BinaryConv2D(std::string name, std::int64_t in_channels,
                           std::int64_t out_channels, std::int64_t kernel,
                           std::int64_t stride, std::int64_t pad,
                           tensor::FloatTensor weights)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      packed_weights_(tensor::BitMatrix::from_float(weights)) {
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  FLIM_REQUIRE((weights.shape() == tensor::Shape{out_channels_, k}),
               "binary conv2d weights must be [out_channels, in_ch*kh*kw]");
}

tensor::FloatTensor BinaryConv2D::forward(const tensor::FloatTensor& input,
                                          InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "binary conv2d expects NCHW input");
  FLIM_REQUIRE(ctx.engine != nullptr, "inference context needs an engine");
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = input.shape()[2];
  g.in_w = input.shape()[3];
  g.kernel_h = g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;

  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t positions = oh * ow;

  const tensor::BitMatrix activations = tensor::im2col_binary(input, g);
  tensor::IntTensor flat;
  ctx.engine->execute(name(), activations, packed_weights_, positions, flat);

  tensor::FloatTensor out(tensor::Shape{n, out_channels_, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const std::int32_t* src =
            flat.data() + ((b * oh + y) * ow + x) * out_channels_;
        for (std::int64_t c = 0; c < out_channels_; ++c) {
          out.at4(b, c, y, x) = static_cast<float>(src[c]);
        }
      }
    }
  }
  record_profile(ctx, 0, positions * out_channels_ * g.patch_size());
  return out;
}

void BinaryConv2D::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4, "binary conv2d expects NCHW input");
  FLIM_REQUIRE(in[1] == in_channels_, "binary conv2d input channel mismatch");
  const std::size_t si = pc.begin_step(*this);
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = in[2];
  g.in_w = in[3];
  g.kernel_h = g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  PlanStep& st = pc.step(si);
  st.geom = g;
  st.positions = g.out_h() * g.out_w();
  st.bit_slot = pc.alloc_bit_slot();
  st.int_slot = pc.alloc_int_slot();
  if (kernel_ <= 64) {
    // Word-level patch assembly from pre-binarized image rows.
    st.bit_rows_slot = pc.alloc_bit_slot();
  } else {
    st.gather = tensor::make_im2col_gather(g);
  }
  st.out_shape = tensor::Shape{in[0], out_channels_, g.out_h(), g.out_w()};
  st.acc_shape = tensor::Shape{in[0] * st.positions, out_channels_};
  pc.set_shape(st.out_shape);
}

void BinaryConv2D::execute(const tensor::FloatTensor& input,
                           tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = st.out_shape[2];
  const std::int64_t ow = st.out_shape[3];

  tensor::BitMatrix& activations = ec.bit_slot(st.bit_slot);
  ec.ws().reshape(activations, n * st.positions, st.geom.patch_size());
  if (st.bit_rows_slot >= 0) {
    tensor::BitMatrix& rows = ec.bit_slot(st.bit_rows_slot);
    ec.ws().reshape(rows, n * st.geom.in_channels * st.geom.in_h,
                    st.geom.in_w + 2 * st.geom.pad);
    tensor::im2col_binary_packed(input, st.geom, rows, activations);
  } else {
    tensor::im2col_binary_gather(input, st.geom, st.gather, activations);
  }

  tensor::IntTensor& flat = ec.int_slot(st.int_slot);
  ec.ws().reshape(flat, st.acc_shape);
  ec.engine().execute(name(), activations, packed_weights_, st.positions,
                      flat);

  ec.ws().reshape(out, st.out_shape);
  const std::int64_t ohw = oh * ow;
  // [positions, out_ch] -> NCHW with sequential writes (strided reads
  // prefetch better than strided writes).
  for (std::int64_t b = 0; b < n; ++b) {
    float* obase = out.data() + b * out_channels_ * ohw;
    const std::int32_t* fbase = flat.data() + b * ohw * out_channels_;
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      float* orow = obase + c * ohw;
      const std::int32_t* src = fbase + c;
      for (std::int64_t p = 0; p < ohw; ++p) {
        orow[p] = static_cast<float>(src[p * out_channels_]);
      }
    }
  }
}

}  // namespace flim::bnn

#include "bnn/binary_conv2d.hpp"

#include "bnn/engine.hpp"
#include "core/check.hpp"

namespace flim::bnn {

BinaryConv2D::BinaryConv2D(std::string name, std::int64_t in_channels,
                           std::int64_t out_channels, std::int64_t kernel,
                           std::int64_t stride, std::int64_t pad,
                           tensor::FloatTensor weights)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      packed_weights_(tensor::BitMatrix::from_float(weights)) {
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  FLIM_REQUIRE((weights.shape() == tensor::Shape{out_channels_, k}),
               "binary conv2d weights must be [out_channels, in_ch*kh*kw]");
}

tensor::FloatTensor BinaryConv2D::forward(const tensor::FloatTensor& input,
                                          InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "binary conv2d expects NCHW input");
  FLIM_REQUIRE(ctx.engine != nullptr, "inference context needs an engine");
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = input.shape()[2];
  g.in_w = input.shape()[3];
  g.kernel_h = g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;

  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t positions = oh * ow;

  const tensor::BitMatrix activations = tensor::im2col_binary(input, g);
  tensor::IntTensor flat;
  ctx.engine->execute(name(), activations, packed_weights_, positions, flat);

  tensor::FloatTensor out(tensor::Shape{n, out_channels_, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const std::int32_t* src =
            flat.data() + ((b * oh + y) * ow + x) * out_channels_;
        for (std::int64_t c = 0; c < out_channels_; ++c) {
          out.at4(b, c, y, x) = static_cast<float>(src[c]);
        }
      }
    }
  }
  record_profile(ctx, 0, positions * out_channels_ * g.patch_size());
  return out;
}

}  // namespace flim::bnn

// Binarized 2-D convolution executed as logic-in-memory XNOR operations.
//
// Input activations are binarized with sign() during patch extraction and
// the stored ±1 weights are packed once at construction; the inner product
// is delegated to the execution engine, which is where fault injection (or
// device-level simulation) happens.
#pragma once

#include "bnn/layer.hpp"
#include "tensor/bit_matrix.hpp"
#include "tensor/im2col.hpp"

namespace flim::bnn {

class BinaryConv2D final : public Layer {
 public:
  /// Weights shaped [out_channels, in_channels*kh*kw] with ±1 entries
  /// (values are re-binarized via sign() defensively).
  BinaryConv2D(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad,
               tensor::FloatTensor weights);

  std::string type() const override { return "binary_conv2d"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t binary_param_count() const override {
    return packed_weights_.rows() * packed_weights_.cols();
  }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Packed ±1 weights [out_ch, K].
  const tensor::BitMatrix& packed_weights() const { return packed_weights_; }

  /// Weights as a ±1 float matrix (serialization, tests).
  tensor::FloatTensor weights_float() const { return packed_weights_.to_float(); }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  tensor::BitMatrix packed_weights_;
};

}  // namespace flim::bnn

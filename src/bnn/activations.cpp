#include "bnn/activations.hpp"

#include <algorithm>
#include <cstring>

#include "bnn/plan.hpp"
#include "core/check.hpp"

namespace flim::bnn {

namespace {

/// Plans a shape-preserving elementwise layer.
void plan_elementwise(const Layer& layer, PlanContext& pc) {
  const std::size_t si = pc.begin_step(layer);
  pc.step(si).out_shape = pc.shape();
}

}  // namespace

Sign::Sign(std::string name) : Layer(std::move(name)) {}

tensor::FloatTensor Sign::forward(const tensor::FloatTensor& input,
                                  InferenceContext& ctx) const {
  tensor::FloatTensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] >= 0.0f ? 1.0f : -1.0f;
  }
  record_profile(ctx, 0, 0);
  return out;
}

ReLU::ReLU(std::string name) : Layer(std::move(name)) {}

tensor::FloatTensor ReLU::forward(const tensor::FloatTensor& input,
                                  InferenceContext& ctx) const {
  tensor::FloatTensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    out[i] = std::max(0.0f, input[i]);
  }
  record_profile(ctx, 0, 0);
  return out;
}

ChannelScale::ChannelScale(std::string name, tensor::FloatTensor gains)
    : Layer(std::move(name)), gains_(std::move(gains)) {
  FLIM_REQUIRE(gains_.shape().rank() == 1 && gains_.numel() > 0,
               "channel scale gains must be a non-empty vector");
}

tensor::FloatTensor ChannelScale::forward(const tensor::FloatTensor& input,
                                          InferenceContext& ctx) const {
  const std::int64_t channels = gains_.numel();
  tensor::FloatTensor out(input.shape());
  if (input.shape().rank() == 4) {
    FLIM_REQUIRE(input.shape()[1] == channels, "channel scale mismatch");
    const std::int64_t n = input.shape()[0];
    const std::int64_t hw = input.shape()[2] * input.shape()[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t c = 0; c < channels; ++c) {
        const float g = gains_[c];
        const float* in = input.data() + (b * channels + c) * hw;
        float* o = out.data() + (b * channels + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) o[i] = g * in[i];
      }
    }
  } else if (input.shape().rank() == 2) {
    FLIM_REQUIRE(input.shape()[1] == channels, "channel scale mismatch");
    const std::int64_t n = input.shape()[0];
    for (std::int64_t b = 0; b < n; ++b) {
      const float* in = input.data() + b * channels;
      float* o = out.data() + b * channels;
      for (std::int64_t c = 0; c < channels; ++c) o[c] = gains_[c] * in[c];
    }
  } else {
    FLIM_REQUIRE(false, "channel scale supports rank-2 and rank-4 inputs");
  }
  record_profile(ctx, input.numel() / ctx.batch, 0);
  return out;
}

void Sign::plan(PlanContext& pc) const { plan_elementwise(*this, pc); }

void Sign::execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
                   ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = in[i] >= 0.0f ? 1.0f : -1.0f;
  }
}

void ReLU::plan(PlanContext& pc) const { plan_elementwise(*this, pc); }

void ReLU::execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
                   ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = std::max(0.0f, in[i]);
  }
}

void ChannelScale::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4 || in.rank() == 2,
               "channel scale supports rank-2 and rank-4 inputs");
  FLIM_REQUIRE(in[1] == gains_.numel(), "channel scale mismatch");
  plan_elementwise(*this, pc);
}

void ChannelScale::execute(const tensor::FloatTensor& input,
                           tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  const std::int64_t channels = gains_.numel();
  if (input.shape().rank() == 4) {
    const std::int64_t n = input.shape()[0];
    const std::int64_t hw = input.shape()[2] * input.shape()[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t c = 0; c < channels; ++c) {
        const float g = gains_[c];
        const float* in = input.data() + (b * channels + c) * hw;
        float* o = out.data() + (b * channels + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) o[i] = g * in[i];
      }
    }
  } else {
    const std::int64_t n = input.shape()[0];
    for (std::int64_t b = 0; b < n; ++b) {
      const float* in = input.data() + b * channels;
      float* o = out.data() + b * channels;
      for (std::int64_t c = 0; c < channels; ++c) o[c] = gains_[c] * in[c];
    }
  }
}

Identity::Identity(std::string name) : Layer(std::move(name)) {}

tensor::FloatTensor Identity::forward(const tensor::FloatTensor& input,
                                      InferenceContext& ctx) const {
  record_profile(ctx, 0, 0);
  return input;
}

Flatten::Flatten(std::string name) : Layer(std::move(name)) {}

tensor::FloatTensor Flatten::forward(const tensor::FloatTensor& input,
                                     InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() >= 2, "flatten expects rank >= 2");
  const std::int64_t n = input.shape()[0];
  const std::int64_t features = input.numel() / n;
  record_profile(ctx, 0, 0);
  return input.reshaped(tensor::Shape{n, features});
}

void Identity::plan(PlanContext& pc) const { plan_elementwise(*this, pc); }

void Identity::execute(const tensor::FloatTensor& input,
                       tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  std::memcpy(out.data(), input.data(),
              static_cast<std::size_t>(input.numel()) * sizeof(float));
}

void Flatten::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() >= 2, "flatten expects rank >= 2");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape = tensor::Shape{in[0], in.numel() / in[0]};
  pc.set_shape(pc.step(si).out_shape);
}

void Flatten::execute(const tensor::FloatTensor& input,
                      tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  std::memcpy(out.data(), input.data(),
              static_cast<std::size_t>(input.numel()) * sizeof(float));
}

}  // namespace flim::bnn

// Binarized fully connected layer executed as logic-in-memory XNOR ops.
#pragma once

#include "bnn/layer.hpp"
#include "tensor/bit_matrix.hpp"

namespace flim::bnn {

class BinaryDense final : public Layer {
 public:
  /// Weights [out_features, in_features] with ±1 entries.
  BinaryDense(std::string name, std::int64_t in_features,
              std::int64_t out_features, tensor::FloatTensor weights);

  std::string type() const override { return "binary_dense"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t binary_param_count() const override {
    return packed_weights_.rows() * packed_weights_.cols();
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  const tensor::BitMatrix& packed_weights() const { return packed_weights_; }
  tensor::FloatTensor weights_float() const { return packed_weights_.to_float(); }

 private:
  std::int64_t in_features_, out_features_;
  tensor::BitMatrix packed_weights_;
};

}  // namespace flim::bnn

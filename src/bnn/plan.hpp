// Compiled forward plans: the one-time compile / cheap execute split.
//
// Model::forward rebuilds its world on every call -- each layer returns a
// fresh FloatTensor by value and im2col re-derives gather geometry per
// invocation. Fault campaigns run the same forward pass thousands of times
// with only the fault masks changing, so ForwardPlan walks a Model ONCE for
// a fixed input shape and freezes everything that does not depend on the
// activations: per-layer output shapes, im2col gather maps, packed-weight
// references, and workspace scratch-slot assignments. Executing the plan
// through a tensor::Workspace then performs zero heap allocations in steady
// state and is bit-identical to the legacy forward pass (same arithmetic in
// the same order, same engine calls in the same order).
//
// Lifecycle and ownership:
//   * A plan borrows the Model's layers; the Model must outlive the plan
//     (moving the Model is fine -- layer storage is unique_ptr-stable).
//   * A plan is immutable after construction and may be shared read-only by
//     any number of workers.
//   * Each worker executes through its own Workspace (and its own engine --
//     engines are stateful); one Workspace must never be used concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "bnn/engine.hpp"
#include "bnn/model.hpp"
#include "data/dataset.hpp"
#include "tensor/im2col.hpp"
#include "tensor/shape.hpp"
#include "tensor/workspace.hpp"

namespace flim::core {
class ThreadPool;
}

namespace flim::bnn {

/// Frozen per-layer lowering data, produced by Layer::plan in plan-walk
/// order (pre-order: a block's record precedes its children's).
struct PlanStep {
  const Layer* layer = nullptr;
  tensor::Shape out_shape;

  /// Conv lowering (binary_conv2d / conv2d): static geometry plus the
  /// precomputed per-image gather map (tensor::make_im2col_gather).
  tensor::ConvGeometry geom;
  std::int64_t positions = 0;  // output positions per image (dense: 1)
  std::vector<std::int32_t> gather;

  /// Frozen scratch shapes, so steady-state execution never constructs a
  /// Shape temporary (each would heap-allocate a small dims vector).
  tensor::Shape acc_shape;    // engine accumulator / gemm output
  tensor::Shape patch_shape;  // float im2col patches (real conv)

  /// Workspace scratch slots (-1 = unused by this step).
  int bit_slot = -1;       // packed ±1 activations
  int bit_rows_slot = -1;  // padded packed image rows (word-level im2col)
  int int_slot = -1;       // engine accumulator
  int float_slot_a = -1;  // float patches / block chain ping
  int float_slot_b = -1;  // gemm output / block chain pong
  int float_slot_c = -1;  // residual bypass
};

/// Mutable state threaded through the one-time plan walk.
class PlanContext {
 public:
  explicit PlanContext(tensor::Shape input_shape)
      : shape_(std::move(input_shape)) {}

  /// Shape of the activations entering the layer being planned.
  const tensor::Shape& shape() const { return shape_; }
  /// Records the planned layer's output shape (becomes the next input).
  void set_shape(tensor::Shape s) { shape_ = std::move(s); }

  /// Appends this layer's record and returns its index (indices stay valid
  /// while references may not -- children append to the same vector).
  std::size_t begin_step(const Layer& layer);
  PlanStep& step(std::size_t index) { return steps_[index]; }

  /// Reserves workspace slots; ids are stable across executions.
  int alloc_float_slot() { return num_float_slots_++; }
  int alloc_int_slot() { return num_int_slots_++; }
  int alloc_bit_slot() { return num_bit_slots_++; }

 private:
  friend class ForwardPlan;
  tensor::Shape shape_;
  std::vector<PlanStep> steps_;
  int num_float_slots_ = 0;
  int num_int_slots_ = 0;
  int num_bit_slots_ = 0;
};

/// Per-execution state: the engine, the worker's arena, and a cursor over
/// the plan's step records. (Intra-gemm sharding pools are routed through
/// XnorExecutionEngine::set_thread_pool, not the context.)
class ExecContext {
 public:
  ExecContext(const std::vector<PlanStep>& steps, tensor::Workspace& ws,
              XnorExecutionEngine& engine)
      : steps_(steps), ws_(ws), engine_(engine) {}

  XnorExecutionEngine& engine() { return engine_; }
  tensor::Workspace& ws() { return ws_; }

  /// Consumes the next plan record. Layers call this exactly once per
  /// execute(), in the same order plan() registered records.
  const PlanStep& next_step();

  /// Workspace buffer behind a planned slot id.
  tensor::FloatTensor& float_slot(int id);
  tensor::IntTensor& int_slot(int id);
  tensor::BitMatrix& bit_slot(int id);

  std::size_t cursor() const { return cursor_; }

 private:
  const std::vector<PlanStep>& steps_;
  tensor::Workspace& ws_;
  XnorExecutionEngine& engine_;
  std::size_t cursor_ = 0;
};

/// A compiled forward pass over a Model for one fixed input shape.
class ForwardPlan {
 public:
  /// Walks `model` once; throws std::invalid_argument when a layer rejects
  /// the shape (same contracts as the legacy forward pass).
  ForwardPlan(const Model& model, tensor::Shape input_shape);

  const tensor::Shape& input_shape() const { return input_shape_; }
  const tensor::Shape& output_shape() const { return output_shape_; }
  std::size_t num_steps() const { return steps_.size(); }
  const std::vector<PlanStep>& steps() const { return steps_; }

  /// Runs the compiled pass; returns the logits, which live in `ws` until
  /// the next execution through that arena. `input` must match
  /// input_shape() exactly (engine fault timing depends on the batch
  /// extent). When `gemm_pool` is given, engines that support it shard
  /// XNOR-GEMM row blocks across the pool (bit-identical to serial).
  const tensor::FloatTensor& execute(const tensor::FloatTensor& input,
                                     tensor::Workspace& ws,
                                     XnorExecutionEngine& engine,
                                     core::ThreadPool* gemm_pool = nullptr)
      const;

  /// Classification accuracy of the compiled pass over a batch.
  double evaluate(const data::Batch& batch, tensor::Workspace& ws,
                  XnorExecutionEngine& engine,
                  core::ThreadPool* gemm_pool = nullptr) const;

 private:
  std::vector<const Layer*> roots_;  // borrowed from the Model
  std::vector<PlanStep> steps_;
  tensor::Shape input_shape_;
  tensor::Shape output_shape_;
  int slot_a_ = -1;  // top-level ping-pong activation buffers
  int slot_b_ = -1;
};

}  // namespace flim::bnn

#include "bnn/binary_dense.hpp"

#include "bnn/engine.hpp"
#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

BinaryDense::BinaryDense(std::string name, std::int64_t in_features,
                         std::int64_t out_features,
                         tensor::FloatTensor weights)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      packed_weights_(tensor::BitMatrix::from_float(weights)) {
  FLIM_REQUIRE((weights.shape() == tensor::Shape{out_features_, in_features_}),
               "binary dense weights must be [out_features, in_features]");
}

tensor::FloatTensor BinaryDense::forward(const tensor::FloatTensor& input,
                                         InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 2,
               "binary dense expects [batch, features]");
  FLIM_REQUIRE(input.shape()[1] == in_features_,
               "binary dense input feature mismatch");
  FLIM_REQUIRE(ctx.engine != nullptr, "inference context needs an engine");

  // Binarize the incoming activations (sign) and pack.
  const tensor::BitMatrix activations = tensor::BitMatrix::from_float(input);
  tensor::IntTensor flat;
  // Dense layers produce one output position per image.
  ctx.engine->execute(name(), activations, packed_weights_, 1, flat);
  record_profile(ctx, 0, in_features_ * out_features_);
  return tensor::to_float(flat);
}

}  // namespace flim::bnn

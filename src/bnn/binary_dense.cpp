#include "bnn/binary_dense.hpp"

#include "bnn/engine.hpp"
#include "bnn/plan.hpp"
#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

BinaryDense::BinaryDense(std::string name, std::int64_t in_features,
                         std::int64_t out_features,
                         tensor::FloatTensor weights)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      packed_weights_(tensor::BitMatrix::from_float(weights)) {
  FLIM_REQUIRE((weights.shape() == tensor::Shape{out_features_, in_features_}),
               "binary dense weights must be [out_features, in_features]");
}

tensor::FloatTensor BinaryDense::forward(const tensor::FloatTensor& input,
                                         InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 2,
               "binary dense expects [batch, features]");
  FLIM_REQUIRE(input.shape()[1] == in_features_,
               "binary dense input feature mismatch");
  FLIM_REQUIRE(ctx.engine != nullptr, "inference context needs an engine");

  // Binarize the incoming activations (sign) and pack.
  const tensor::BitMatrix activations = tensor::BitMatrix::from_float(input);
  tensor::IntTensor flat;
  // Dense layers produce one output position per image.
  ctx.engine->execute(name(), activations, packed_weights_, 1, flat);
  record_profile(ctx, 0, in_features_ * out_features_);
  return tensor::to_float(flat);
}

void BinaryDense::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 2, "binary dense expects [batch, features]");
  FLIM_REQUIRE(in[1] == in_features_, "binary dense input feature mismatch");
  const std::size_t si = pc.begin_step(*this);
  PlanStep& st = pc.step(si);
  st.positions = 1;  // dense: one output position per image
  st.bit_slot = pc.alloc_bit_slot();
  st.int_slot = pc.alloc_int_slot();
  st.out_shape = tensor::Shape{in[0], out_features_};
  st.acc_shape = st.out_shape;
  pc.set_shape(st.out_shape);
}

void BinaryDense::execute(const tensor::FloatTensor& input,
                          tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  const std::int64_t n = input.shape()[0];

  // Binarize the incoming activations (sign) and pack into reused storage.
  tensor::BitMatrix& activations = ec.bit_slot(st.bit_slot);
  ec.ws().reshape(activations, n, in_features_);
  activations.pack_rows_from_float(input.data());

  tensor::IntTensor& flat = ec.int_slot(st.int_slot);
  ec.ws().reshape(flat, st.acc_shape);
  ec.engine().execute(name(), activations, packed_weights_, st.positions,
                      flat);

  ec.ws().reshape(out, st.out_shape);
  const std::int32_t* src = flat.data();
  float* dst = out.data();
  const std::int64_t total = flat.numel();
  for (std::int64_t i = 0; i < total; ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

}  // namespace flim::bnn

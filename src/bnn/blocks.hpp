// Composite blocks: sequential containers, residual shortcuts, and
// DenseNet-style concatenation.
//
// Blocks let the model zoo express each family's distinguishing structure:
// residual identity shortcuts (ResNet/Bi-Real: real-valued activations flow
// around the binarized body), dense connectivity (BinaryDenseNet/MeliusNet),
// and plain stacks.
#pragma once

#include <vector>

#include "bnn/layer.hpp"

namespace flim::bnn {

/// Runs children in order. Used standalone and as the body of other blocks.
class Sequential final : public Layer {
 public:
  Sequential(std::string name, std::vector<LayerPtr> children);

  std::string type() const override { return "sequential"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override;
  std::int64_t binary_param_count() const override;

  const std::vector<LayerPtr>& children() const { return children_; }

 private:
  std::vector<LayerPtr> children_;
};

/// y = body(x) + shortcut(x); shortcut is identity when empty.
///
/// The identity shortcut is what keeps Bi-Real-style networks "not strictly
/// binarized": the real-valued pre-activation bypasses the binarized body.
class ResidualBlock final : public Layer {
 public:
  /// `shortcut` may be null (identity); then body output shape must equal
  /// the input shape.
  ResidualBlock(std::string name, std::vector<LayerPtr> body,
                LayerPtr shortcut);

  std::string type() const override { return "residual"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override;
  std::int64_t binary_param_count() const override;

  const std::vector<LayerPtr>& body() const { return body_; }
  const Layer* shortcut() const { return shortcut_.get(); }

 private:
  std::vector<LayerPtr> body_;
  LayerPtr shortcut_;  // may be null
};

/// y = concat(x, body(x)) along channels (NCHW dim 1) -- DenseNet growth.
class ConcatBlock final : public Layer {
 public:
  ConcatBlock(std::string name, std::vector<LayerPtr> body);

  std::string type() const override { return "concat"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override;
  std::int64_t binary_param_count() const override;

  const std::vector<LayerPtr>& body() const { return body_; }

 private:
  std::vector<LayerPtr> body_;
};

}  // namespace flim::bnn

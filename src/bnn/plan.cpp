#include "bnn/plan.hpp"

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

std::size_t PlanContext::begin_step(const Layer& layer) {
  PlanStep step;
  step.layer = &layer;
  steps_.push_back(std::move(step));
  return steps_.size() - 1;
}

const PlanStep& ExecContext::next_step() {
  FLIM_REQUIRE(cursor_ < steps_.size(),
               "plan cursor overran the step records; plan() and execute() "
               "traversal orders diverged");
  return steps_[cursor_++];
}

// Slot-id validation stays on in Release: a stale -1 sentinel would wrap to
// SIZE_MAX and grow the arena unboundedly instead of failing loudly, and
// the check is cold relative to the buffer work behind it.
tensor::FloatTensor& ExecContext::float_slot(int id) {
  FLIM_REQUIRE(id >= 0, "plan step references an unassigned float slot");
  return ws_.float_slot(static_cast<std::size_t>(id));
}

tensor::IntTensor& ExecContext::int_slot(int id) {
  FLIM_REQUIRE(id >= 0, "plan step references an unassigned int slot");
  return ws_.int_slot(static_cast<std::size_t>(id));
}

tensor::BitMatrix& ExecContext::bit_slot(int id) {
  FLIM_REQUIRE(id >= 0, "plan step references an unassigned bit slot");
  return ws_.bit_slot(static_cast<std::size_t>(id));
}

ForwardPlan::ForwardPlan(const Model& model, tensor::Shape input_shape)
    : input_shape_(std::move(input_shape)) {
  FLIM_REQUIRE(!model.layers().empty(), "model has no layers");
  PlanContext pc(input_shape_);
  slot_a_ = pc.alloc_float_slot();
  slot_b_ = pc.alloc_float_slot();
  roots_.reserve(model.layers().size());
  for (const LayerPtr& layer : model.layers()) {
    roots_.push_back(layer.get());
    layer->plan(pc);
  }
  steps_ = std::move(pc.steps_);
  output_shape_ = pc.shape();
}

const tensor::FloatTensor& ForwardPlan::execute(
    const tensor::FloatTensor& input, tensor::Workspace& ws,
    XnorExecutionEngine& engine, core::ThreadPool* gemm_pool) const {
  FLIM_REQUIRE(input.shape() == input_shape_,
               "input shape " + input.shape().to_string() +
                   " does not match the planned shape " +
                   input_shape_.to_string());
  ExecContext ec(steps_, ws, engine);
  // The pool is installed for this execution only; restore serial behaviour
  // even on exceptions so a later legacy-path use of the same engine can
  // never touch a stale (possibly destroyed) pool.
  struct PoolGuard {
    XnorExecutionEngine& engine;
    ~PoolGuard() { engine.set_thread_pool(nullptr); }
  } guard{engine};
  engine.set_thread_pool(gemm_pool);
  const tensor::FloatTensor* cur = &input;
  bool pong = false;
  for (const Layer* layer : roots_) {
    tensor::FloatTensor& dst = ws.float_slot(
        static_cast<std::size_t>(pong ? slot_b_ : slot_a_));
    pong = !pong;
    layer->execute(*cur, dst, ec);
    cur = &dst;
  }
  FLIM_REQUIRE(ec.cursor() == steps_.size(),
               "plan execution consumed fewer step records than planned");
  return *cur;
}

double ForwardPlan::evaluate(const data::Batch& batch, tensor::Workspace& ws,
                             XnorExecutionEngine& engine,
                             core::ThreadPool* gemm_pool) const {
  const tensor::FloatTensor& logits =
      execute(batch.images, ws, engine, gemm_pool);
  return tensor::accuracy(logits, batch.labels);
}

}  // namespace flim::bnn

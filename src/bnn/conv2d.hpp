// Real-valued 2-D convolution (CMOS-executed).
//
// BNNs keep the first convolution in full precision (the paper follows
// X-Fault's "conservative approach by assuming that these non-binary
// operations are executed in CMOS"); this layer is that CMOS path and is
// never mapped onto crossbars or faulted.
#pragma once

#include "bnn/layer.hpp"
#include "tensor/im2col.hpp"

namespace flim::bnn {

class Conv2D final : public Layer {
 public:
  /// Weights shaped [out_channels, in_channels*kh*kw]; bias [out_channels]
  /// (pass an empty tensor for no bias).
  Conv2D(std::string name, std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         tensor::FloatTensor weights, tensor::FloatTensor bias);

  std::string type() const override { return "conv2d"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override {
    return weights_.numel() + bias_.numel();
  }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }
  const tensor::FloatTensor& weights() const { return weights_; }
  const tensor::FloatTensor& bias() const { return bias_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  tensor::FloatTensor weights_;  // [out_ch, K]
  tensor::FloatTensor bias_;     // [out_ch] or empty
};

}  // namespace flim::bnn

// Model serialization: compact binary save/load so benches can train the
// zoo once and reload it across runs.
#pragma once

#include <string>

#include "bnn/model.hpp"

namespace flim::bnn {

/// Writes a model to `path` (creating parent directories).
void save_model(const Model& model, const std::string& path);

/// Reads a model saved by save_model. Throws std::invalid_argument on
/// malformed files.
Model load_model(const std::string& path);

}  // namespace flim::bnn

#include "bnn/model.hpp"

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

void Model::add(LayerPtr layer) {
  FLIM_REQUIRE(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
}

tensor::FloatTensor Model::run_layers(const tensor::FloatTensor& input,
                                      InferenceContext& ctx) const {
  FLIM_REQUIRE(!layers_.empty(), "model has no layers");
  tensor::FloatTensor x = input;
  for (const auto& layer : layers_) {
    x = layer->forward(x, ctx);
  }
  return x;
}

tensor::FloatTensor Model::forward(const tensor::FloatTensor& input,
                                   XnorExecutionEngine& engine) const {
  InferenceContext ctx;
  ctx.engine = &engine;
  ctx.batch = input.shape().rank() >= 1 ? input.shape()[0] : 1;
  return run_layers(input, ctx);
}

double Model::evaluate(const data::Batch& batch,
                       XnorExecutionEngine& engine) const {
  const tensor::FloatTensor logits = forward(batch.images, engine);
  return tensor::accuracy(logits, batch.labels);
}

ModelCharacteristics Model::analyze(
    const tensor::FloatTensor& sample_input) const {
  FLIM_REQUIRE(sample_input.shape().rank() == 4 && sample_input.shape()[0] == 1,
               "analyze expects a single NCHW sample");
  RecordingEngine recorder;
  InferenceContext ctx;
  ctx.engine = &recorder;
  ctx.batch = 1;
  std::vector<LayerProfile> profile;
  ctx.profile = &profile;
  run_layers(sample_input, ctx);

  ModelCharacteristics c;
  c.model_name = name_;
  for (const auto& p : profile) {
    c.real_params += p.real_params;
    c.binary_params += p.binary_params;
    c.real_macs += p.real_macs_per_image;
    c.binary_macs += p.binary_macs_per_image;
  }
  c.total_params = c.real_params + c.binary_params;
  c.total_macs = c.real_macs + c.binary_macs;
  // Binary weights cost 1 bit, real parameters 4 bytes.
  c.size_megabytes =
      (static_cast<double>(c.binary_params) / 8.0 +
       static_cast<double>(c.real_params) * 4.0) /
      (1024.0 * 1024.0);
  c.binarized_percent =
      c.total_macs > 0
          ? 100.0 * static_cast<double>(c.binary_macs) /
                static_cast<double>(c.total_macs)
          : 0.0;
  c.binarized_layers = recorder.workloads();
  return c;
}

}  // namespace flim::bnn

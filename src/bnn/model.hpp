// Model: an ordered stack of layers plus analysis utilities.
#pragma once

#include <string>
#include <vector>

#include "bnn/engine.hpp"
#include "bnn/layer.hpp"
#include "data/dataset.hpp"

namespace flim::bnn {

/// Aggregate model characteristics (Table II columns).
struct ModelCharacteristics {
  std::string model_name;
  std::int64_t real_params = 0;
  std::int64_t binary_params = 0;
  std::int64_t total_params = 0;
  std::int64_t real_macs = 0;    // per image
  std::int64_t binary_macs = 0;  // per image (XNOR-accumulates)
  std::int64_t total_macs = 0;
  double size_megabytes = 0.0;   // binary params as bits + real as float32
  double binarized_percent = 0.0;
  std::vector<LayerWorkload> binarized_layers;
};

/// An inference model: ordered layers, engine-agnostic forward.
class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer (builder style).
  void add(LayerPtr layer);

  const std::vector<LayerPtr>& layers() const { return layers_; }
  std::size_t num_layers() const { return layers_.size(); }

  /// Runs the full stack; returns logits [batch, classes].
  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              XnorExecutionEngine& engine) const;

  /// Classification accuracy over a batch using `engine`.
  double evaluate(const data::Batch& batch, XnorExecutionEngine& engine) const;

  /// Dry-runs one sample to collect the binarized-layer workloads (fault
  /// mapping inputs) and Table II characteristics.
  ModelCharacteristics analyze(const tensor::FloatTensor& sample_input) const;

 private:
  /// The one layer traversal both forward() and analyze() run through, so
  /// profiling can never drift from inference.
  tensor::FloatTensor run_layers(const tensor::FloatTensor& input,
                                 InferenceContext& ctx) const;

  std::string name_;
  std::vector<LayerPtr> layers_;
};

}  // namespace flim::bnn

// FlimEngine: the FLIM fast path -- packed XNOR+popcount plus mask-based
// fault injection at XNOR-operation level.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "bnn/engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_vector_file.hpp"

namespace flim::bnn {

/// Fault-injecting execution engine.
///
/// Layers without a configured fault entry run the clean fast path; layers
/// with one run the faulty kernel of the configured granularity. Dynamic
/// faults advance per image.
class FlimEngine final : public XnorExecutionEngine {
 public:
  FlimEngine() = default;

  /// Builds injectors for every entry of a fault vector file.
  explicit FlimEngine(const fault::FaultVectorFile& vectors);

  /// Adds/replaces the fault entry of one layer.
  void set_layer_fault(fault::FaultVectorEntry entry);

  /// Removes all fault entries (engine becomes the reference fast path).
  void clear_faults();

  /// Number of layers with configured faults.
  std::size_t num_faulty_layers() const { return injectors_.size(); }

  void set_thread_pool(core::ThreadPool* pool) override { pool_ = pool; }

  void execute(const std::string& layer_name,
               const tensor::BitMatrix& activations,
               const tensor::BitMatrix& weights,
               std::int64_t positions_per_image,
               tensor::IntTensor& out) override;

  void reset_time() override;

 private:
  std::map<std::string, std::unique_ptr<fault::FaultInjector>> injectors_;
  core::ThreadPool* pool_ = nullptr;
};

}  // namespace flim::bnn

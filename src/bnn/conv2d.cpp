#include "bnn/conv2d.hpp"

#include "bnn/plan.hpp"
#include "core/check.hpp"
#include "tensor/gemm.hpp"

namespace flim::bnn {

Conv2D::Conv2D(std::string name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t pad,
               tensor::FloatTensor weights, tensor::FloatTensor bias)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weights_(std::move(weights)),
      bias_(std::move(bias)) {
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  FLIM_REQUIRE((weights_.shape() == tensor::Shape{out_channels_, k}),
               "conv2d weights must be [out_channels, in_ch*kh*kw]");
  FLIM_REQUIRE(
(bias_.numel() == 0 || bias_.shape() == tensor::Shape{out_channels_}),
               "conv2d bias must be empty or [out_channels]");
}

tensor::FloatTensor Conv2D::forward(const tensor::FloatTensor& input,
                                    InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "conv2d expects NCHW input");
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = input.shape()[2];
  g.in_w = input.shape()[3];
  g.kernel_h = g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;

  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();

  const tensor::FloatTensor patches = tensor::im2col(input, g);
  tensor::FloatTensor flat;  // [n*oh*ow, out_ch]
  tensor::gemm_bt(patches, weights_, flat);

  tensor::FloatTensor out(tensor::Shape{n, out_channels_, oh, ow});
  const bool has_bias = bias_.numel() > 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const float* src = flat.data() + ((b * oh + y) * ow + x) * out_channels_;
        for (std::int64_t c = 0; c < out_channels_; ++c) {
          out.at4(b, c, y, x) = src[c] + (has_bias ? bias_[c] : 0.0f);
        }
      }
    }
  }
  record_profile(ctx, oh * ow * out_channels_ * g.patch_size(), 0);
  return out;
}

void Conv2D::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4, "conv2d expects NCHW input");
  FLIM_REQUIRE(in[1] == in_channels_, "conv2d input channel mismatch");
  const std::size_t si = pc.begin_step(*this);
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = in[2];
  g.in_w = in[3];
  g.kernel_h = g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  PlanStep& st = pc.step(si);
  st.geom = g;
  st.positions = g.out_h() * g.out_w();
  st.gather = tensor::make_im2col_gather(g);
  st.float_slot_a = pc.alloc_float_slot();  // float patches
  st.float_slot_b = pc.alloc_float_slot();  // gemm output [positions, out_ch]
  st.out_shape = tensor::Shape{in[0], out_channels_, g.out_h(), g.out_w()};
  st.patch_shape = tensor::Shape{in[0] * st.positions, g.patch_size()};
  st.acc_shape = tensor::Shape{in[0] * st.positions, out_channels_};
  pc.set_shape(st.out_shape);
}

void Conv2D::execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
                     ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = st.out_shape[2];
  const std::int64_t ow = st.out_shape[3];

  tensor::FloatTensor& patches = ec.float_slot(st.float_slot_a);
  ec.ws().reshape(patches, st.patch_shape);
  tensor::im2col_gather(input, st.geom, st.gather, 0.0f, patches);

  tensor::FloatTensor& flat = ec.float_slot(st.float_slot_b);
  ec.ws().reshape(flat, st.acc_shape);
  tensor::gemm_bt(patches, weights_, flat);

  ec.ws().reshape(out, st.out_shape);
  const bool has_bias = bias_.numel() > 0;
  const std::int64_t ohw = oh * ow;
  for (std::int64_t b = 0; b < n; ++b) {
    float* obase = out.data() + b * out_channels_ * ohw;
    const float* fbase = flat.data() + b * ohw * out_channels_;
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      float* orow = obase + c * ohw;
      const float* src = fbase + c;
      const float bias = has_bias ? bias_[c] : 0.0f;
      for (std::int64_t p = 0; p < ohw; ++p) {
        orow[p] = src[p * out_channels_] + bias;
      }
    }
  }
}

}  // namespace flim::bnn

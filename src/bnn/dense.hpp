// Real-valued fully connected layer (CMOS-executed).
#pragma once

#include "bnn/layer.hpp"

namespace flim::bnn {

class Dense final : public Layer {
 public:
  /// Weights [out_features, in_features]; bias [out_features] or empty.
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features,
        tensor::FloatTensor weights, tensor::FloatTensor bias);

  std::string type() const override { return "dense"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override {
    return weights_.numel() + bias_.numel();
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  const tensor::FloatTensor& weights() const { return weights_; }
  const tensor::FloatTensor& bias() const { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  tensor::FloatTensor weights_;
  tensor::FloatTensor bias_;
};

}  // namespace flim::bnn

#include "bnn/blocks.hpp"

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

namespace {

std::int64_t sum_real(const std::vector<LayerPtr>& layers) {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l->real_param_count();
  return n;
}

std::int64_t sum_binary(const std::vector<LayerPtr>& layers) {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l->binary_param_count();
  return n;
}

tensor::FloatTensor run_chain(const std::vector<LayerPtr>& layers,
                              const tensor::FloatTensor& input,
                              InferenceContext& ctx) {
  tensor::FloatTensor x = input;
  for (const auto& l : layers) {
    x = l->forward(x, ctx);
  }
  return x;
}

}  // namespace

Sequential::Sequential(std::string name, std::vector<LayerPtr> children)
    : Layer(std::move(name)), children_(std::move(children)) {
  for (const auto& c : children_) {
    FLIM_REQUIRE(c != nullptr, "sequential child must not be null");
  }
}

tensor::FloatTensor Sequential::forward(const tensor::FloatTensor& input,
                                        InferenceContext& ctx) const {
  return run_chain(children_, input, ctx);
}

std::int64_t Sequential::real_param_count() const { return sum_real(children_); }
std::int64_t Sequential::binary_param_count() const {
  return sum_binary(children_);
}

ResidualBlock::ResidualBlock(std::string name, std::vector<LayerPtr> body,
                             LayerPtr shortcut)
    : Layer(std::move(name)),
      body_(std::move(body)),
      shortcut_(std::move(shortcut)) {
  FLIM_REQUIRE(!body_.empty(), "residual block needs a body");
  for (const auto& l : body_) {
    FLIM_REQUIRE(l != nullptr, "residual body layer must not be null");
  }
}

tensor::FloatTensor ResidualBlock::forward(const tensor::FloatTensor& input,
                                           InferenceContext& ctx) const {
  tensor::FloatTensor main = run_chain(body_, input, ctx);
  tensor::FloatTensor bypass =
      shortcut_ != nullptr ? shortcut_->forward(input, ctx) : input;
  FLIM_REQUIRE(main.shape() == bypass.shape(),
               "residual branch shapes must match (" + main.shape().to_string() +
                   " vs " + bypass.shape().to_string() + ")");
  tensor::add_inplace(main, bypass);
  return main;
}

std::int64_t ResidualBlock::real_param_count() const {
  return sum_real(body_) + (shortcut_ ? shortcut_->real_param_count() : 0);
}
std::int64_t ResidualBlock::binary_param_count() const {
  return sum_binary(body_) + (shortcut_ ? shortcut_->binary_param_count() : 0);
}

ConcatBlock::ConcatBlock(std::string name, std::vector<LayerPtr> body)
    : Layer(std::move(name)), body_(std::move(body)) {
  FLIM_REQUIRE(!body_.empty(), "concat block needs a body");
  for (const auto& l : body_) {
    FLIM_REQUIRE(l != nullptr, "concat body layer must not be null");
  }
}

tensor::FloatTensor ConcatBlock::forward(const tensor::FloatTensor& input,
                                         InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "concat block expects NCHW input");
  const tensor::FloatTensor grown = run_chain(body_, input, ctx);
  FLIM_REQUIRE(grown.shape().rank() == 4 &&
                   grown.shape()[0] == input.shape()[0] &&
                   grown.shape()[2] == input.shape()[2] &&
                   grown.shape()[3] == input.shape()[3],
               "concat body must preserve batch and spatial dims");

  const std::int64_t n = input.shape()[0];
  const std::int64_t c0 = input.shape()[1];
  const std::int64_t c1 = grown.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  const std::int64_t hw = h * w;

  tensor::FloatTensor out(tensor::Shape{n, c0 + c1, h, w});
  for (std::int64_t b = 0; b < n; ++b) {
    float* dst = out.data() + b * (c0 + c1) * hw;
    const float* src0 = input.data() + b * c0 * hw;
    const float* src1 = grown.data() + b * c1 * hw;
    std::copy(src0, src0 + c0 * hw, dst);
    std::copy(src1, src1 + c1 * hw, dst + c0 * hw);
  }
  return out;
}

std::int64_t ConcatBlock::real_param_count() const { return sum_real(body_); }
std::int64_t ConcatBlock::binary_param_count() const {
  return sum_binary(body_);
}

}  // namespace flim::bnn

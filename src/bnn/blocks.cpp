#include "bnn/blocks.hpp"

#include <cstring>

#include "bnn/plan.hpp"
#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::bnn {

namespace {

std::int64_t sum_real(const std::vector<LayerPtr>& layers) {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l->real_param_count();
  return n;
}

std::int64_t sum_binary(const std::vector<LayerPtr>& layers) {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l->binary_param_count();
  return n;
}

tensor::FloatTensor run_chain(const std::vector<LayerPtr>& layers,
                              const tensor::FloatTensor& input,
                              InferenceContext& ctx) {
  tensor::FloatTensor x = input;
  for (const auto& l : layers) {
    x = l->forward(x, ctx);
  }
  return x;
}

/// Plans a block-internal chain: children append their records after the
/// block's own (pre-order), mirroring execute_chain's traversal.
void plan_chain(const std::vector<LayerPtr>& layers, PlanContext& pc) {
  for (const auto& l : layers) l->plan(pc);
}

/// Executes a chain through the block's two ping-pong slots, leaving the
/// final child's output in `out`. An empty chain copies input to out.
void execute_chain(const std::vector<LayerPtr>& layers,
                   const tensor::FloatTensor& input, tensor::FloatTensor& out,
                   int slot_a, int slot_b, ExecContext& ec) {
  if (layers.empty()) {
    ec.ws().reshape(out, input.shape());
    std::memcpy(out.data(), input.data(),
                static_cast<std::size_t>(input.numel()) * sizeof(float));
    return;
  }
  const tensor::FloatTensor* cur = &input;
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    tensor::FloatTensor& dst =
        ec.float_slot((i % 2 == 0) ? slot_a : slot_b);
    layers[i]->execute(*cur, dst, ec);
    cur = &dst;
  }
  layers.back()->execute(*cur, out, ec);
}

}  // namespace

Sequential::Sequential(std::string name, std::vector<LayerPtr> children)
    : Layer(std::move(name)), children_(std::move(children)) {
  for (const auto& c : children_) {
    FLIM_REQUIRE(c != nullptr, "sequential child must not be null");
  }
}

tensor::FloatTensor Sequential::forward(const tensor::FloatTensor& input,
                                        InferenceContext& ctx) const {
  return run_chain(children_, input, ctx);
}

std::int64_t Sequential::real_param_count() const { return sum_real(children_); }
std::int64_t Sequential::binary_param_count() const {
  return sum_binary(children_);
}

void Sequential::plan(PlanContext& pc) const {
  const std::size_t si = pc.begin_step(*this);
  const int slot_a = pc.alloc_float_slot();
  const int slot_b = pc.alloc_float_slot();
  plan_chain(children_, pc);
  PlanStep& st = pc.step(si);
  st.float_slot_a = slot_a;
  st.float_slot_b = slot_b;
  st.out_shape = pc.shape();
}

void Sequential::execute(const tensor::FloatTensor& input,
                         tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  execute_chain(children_, input, out, st.float_slot_a, st.float_slot_b, ec);
}

ResidualBlock::ResidualBlock(std::string name, std::vector<LayerPtr> body,
                             LayerPtr shortcut)
    : Layer(std::move(name)),
      body_(std::move(body)),
      shortcut_(std::move(shortcut)) {
  FLIM_REQUIRE(!body_.empty(), "residual block needs a body");
  for (const auto& l : body_) {
    FLIM_REQUIRE(l != nullptr, "residual body layer must not be null");
  }
}

tensor::FloatTensor ResidualBlock::forward(const tensor::FloatTensor& input,
                                           InferenceContext& ctx) const {
  tensor::FloatTensor main = run_chain(body_, input, ctx);
  tensor::FloatTensor bypass =
      shortcut_ != nullptr ? shortcut_->forward(input, ctx) : input;
  FLIM_REQUIRE(main.shape() == bypass.shape(),
               "residual branch shapes must match (" + main.shape().to_string() +
                   " vs " + bypass.shape().to_string() + ")");
  tensor::add_inplace(main, bypass);
  return main;
}

void ResidualBlock::plan(PlanContext& pc) const {
  const tensor::Shape in_shape = pc.shape();
  const std::size_t si = pc.begin_step(*this);
  const int slot_a = pc.alloc_float_slot();
  const int slot_b = pc.alloc_float_slot();
  const int slot_c = pc.alloc_float_slot();  // bypass
  plan_chain(body_, pc);
  const tensor::Shape main_shape = pc.shape();
  tensor::Shape bypass_shape = in_shape;
  if (shortcut_ != nullptr) {
    pc.set_shape(in_shape);
    shortcut_->plan(pc);
    bypass_shape = pc.shape();
  }
  FLIM_REQUIRE(main_shape == bypass_shape,
               "residual branch shapes must match (" + main_shape.to_string() +
                   " vs " + bypass_shape.to_string() + ")");
  PlanStep& st = pc.step(si);
  st.float_slot_a = slot_a;
  st.float_slot_b = slot_b;
  st.float_slot_c = slot_c;
  st.out_shape = main_shape;
  pc.set_shape(main_shape);
}

void ResidualBlock::execute(const tensor::FloatTensor& input,
                            tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  execute_chain(body_, input, out, st.float_slot_a, st.float_slot_b, ec);
  if (shortcut_ != nullptr) {
    tensor::FloatTensor& bypass = ec.float_slot(st.float_slot_c);
    shortcut_->execute(input, bypass, ec);
    tensor::add_inplace(out, bypass);
  } else {
    tensor::add_inplace(out, input);
  }
}

std::int64_t ResidualBlock::real_param_count() const {
  return sum_real(body_) + (shortcut_ ? shortcut_->real_param_count() : 0);
}
std::int64_t ResidualBlock::binary_param_count() const {
  return sum_binary(body_) + (shortcut_ ? shortcut_->binary_param_count() : 0);
}

ConcatBlock::ConcatBlock(std::string name, std::vector<LayerPtr> body)
    : Layer(std::move(name)), body_(std::move(body)) {
  FLIM_REQUIRE(!body_.empty(), "concat block needs a body");
  for (const auto& l : body_) {
    FLIM_REQUIRE(l != nullptr, "concat body layer must not be null");
  }
}

tensor::FloatTensor ConcatBlock::forward(const tensor::FloatTensor& input,
                                         InferenceContext& ctx) const {
  FLIM_REQUIRE(input.shape().rank() == 4, "concat block expects NCHW input");
  const tensor::FloatTensor grown = run_chain(body_, input, ctx);
  FLIM_REQUIRE(grown.shape().rank() == 4 &&
                   grown.shape()[0] == input.shape()[0] &&
                   grown.shape()[2] == input.shape()[2] &&
                   grown.shape()[3] == input.shape()[3],
               "concat body must preserve batch and spatial dims");

  const std::int64_t n = input.shape()[0];
  const std::int64_t c0 = input.shape()[1];
  const std::int64_t c1 = grown.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  const std::int64_t hw = h * w;

  tensor::FloatTensor out(tensor::Shape{n, c0 + c1, h, w});
  for (std::int64_t b = 0; b < n; ++b) {
    float* dst = out.data() + b * (c0 + c1) * hw;
    const float* src0 = input.data() + b * c0 * hw;
    const float* src1 = grown.data() + b * c1 * hw;
    std::copy(src0, src0 + c0 * hw, dst);
    std::copy(src1, src1 + c1 * hw, dst + c0 * hw);
  }
  return out;
}

void ConcatBlock::plan(PlanContext& pc) const {
  const tensor::Shape in_shape = pc.shape();
  FLIM_REQUIRE(in_shape.rank() == 4, "concat block expects NCHW input");
  const std::size_t si = pc.begin_step(*this);
  const int slot_a = pc.alloc_float_slot();
  const int slot_b = pc.alloc_float_slot();
  plan_chain(body_, pc);
  const tensor::Shape grown = pc.shape();
  FLIM_REQUIRE(grown.rank() == 4 && grown[0] == in_shape[0] &&
                   grown[2] == in_shape[2] && grown[3] == in_shape[3],
               "concat body must preserve batch and spatial dims");
  PlanStep& st = pc.step(si);
  st.float_slot_a = slot_a;
  st.float_slot_b = slot_b;
  st.out_shape = tensor::Shape{in_shape[0], in_shape[1] + grown[1],
                               in_shape[2], in_shape[3]};
  pc.set_shape(st.out_shape);
}

void ConcatBlock::execute(const tensor::FloatTensor& input,
                          tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  // The grown branch ends in one of the block's own slots (never `out`,
  // which receives the concatenation).
  const tensor::FloatTensor* cur = &input;
  for (std::size_t i = 0; i < body_.size(); ++i) {
    tensor::FloatTensor& dst =
        ec.float_slot((i % 2 == 0) ? st.float_slot_a : st.float_slot_b);
    body_[i]->execute(*cur, dst, ec);
    cur = &dst;
  }
  const tensor::FloatTensor* grown = cur;

  const std::int64_t n = input.shape()[0];
  const std::int64_t c0 = input.shape()[1];
  const std::int64_t c1 = grown->shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  ec.ws().reshape(out, st.out_shape);
  for (std::int64_t b = 0; b < n; ++b) {
    float* dst = out.data() + b * (c0 + c1) * hw;
    const float* src0 = input.data() + b * c0 * hw;
    const float* src1 = grown->data() + b * c1 * hw;
    std::copy(src0, src0 + c0 * hw, dst);
    std::copy(src1, src1 + c1 * hw, dst + c0 * hw);
  }
}

std::int64_t ConcatBlock::real_param_count() const { return sum_real(body_); }
std::int64_t ConcatBlock::binary_param_count() const {
  return sum_binary(body_);
}

}  // namespace flim::bnn

#include "bnn/flim_engine.hpp"

#include "core/check.hpp"
#include "tensor/xnor_gemm.hpp"

namespace flim::bnn {

FlimEngine::FlimEngine(const fault::FaultVectorFile& vectors) {
  for (const auto& entry : vectors.entries()) {
    set_layer_fault(entry);
  }
}

void FlimEngine::set_layer_fault(fault::FaultVectorEntry entry) {
  auto injector = std::make_unique<fault::FaultInjector>(std::move(entry));
  injectors_[injector->entry().layer_name] = std::move(injector);
}

void FlimEngine::clear_faults() { injectors_.clear(); }

void FlimEngine::execute(const std::string& layer_name,
                         const tensor::BitMatrix& activations,
                         const tensor::BitMatrix& weights,
                         std::int64_t positions_per_image,
                         tensor::IntTensor& out) {
  // Batch-consistency contracts hold on every path: the clean early return
  // must not silently accept a positions/rows mismatch the faulty path
  // would reject.
  FLIM_REQUIRE(positions_per_image > 0, "positions_per_image must be > 0");
  FLIM_REQUIRE(activations.rows() % positions_per_image == 0,
               "activation rows must be a whole number of images");

  const auto it = injectors_.find(layer_name);
  if (it == injectors_.end()) {
    tensor::xnor_gemm(activations, weights, out, pool_);
    return;
  }
  fault::FaultInjector& injector = *it->second;

  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  if (out.shape().rank() != 2 || out.shape()[0] != m || out.shape()[1] != n) {
    out = tensor::IntTensor(tensor::Shape{m, n});
  }

  if (injector.granularity() == fault::FaultGranularity::kProductTerm) {
    for (std::int64_t begin = 0; begin < m; begin += positions_per_image) {
      const std::int64_t end = begin + positions_per_image;
      const std::int64_t exec = injector.advance_execution();
      // The injector folds the planes of the components active on this
      // execution (cached per signature); no active component means the
      // clean fast path.
      const fault::TermMasks* masks =
          injector.term_masks(weights.rows(), weights.cols(), exec);
      if (masks != nullptr) {
        tensor::xnor_gemm_term_faults_rows(activations, weights, masks->flip,
                                           masks->sa0, masks->sa1, out, begin,
                                           end, pool_);
      } else {
        tensor::xnor_gemm_rows(activations, weights, out, begin, end, pool_);
      }
    }
  } else {
    // Output-element granularity: clean fast path, then per-image masking of
    // the feature map ("another XNOR operation" in the paper) by every
    // component active on this execution, in stack order.
    tensor::xnor_gemm(activations, weights, out, pool_);
    const auto full_scale = static_cast<std::int32_t>(weights.cols());
    for (std::int64_t begin = 0; begin < m; begin += positions_per_image) {
      const std::int64_t end = begin + positions_per_image;
      const std::int64_t exec = injector.advance_execution();
      injector.apply_output_element(out, begin, end, exec, full_scale);
    }
  }
}

void FlimEngine::reset_time() {
  for (auto& [name, injector] : injectors_) {
    injector->reset_time();
  }
}

}  // namespace flim::bnn

#include "bnn/batch_norm.hpp"

#include <cmath>

#include "bnn/plan.hpp"
#include "core/check.hpp"

namespace flim::bnn {

BatchNorm::BatchNorm(std::string name, std::int64_t channels,
                     tensor::FloatTensor gamma, tensor::FloatTensor beta,
                     tensor::FloatTensor mean, tensor::FloatTensor variance,
                     float epsilon)
    : Layer(std::move(name)),
      channels_(channels),
      gamma_(std::move(gamma)),
      beta_(std::move(beta)),
      mean_(std::move(mean)),
      variance_(std::move(variance)),
      epsilon_(epsilon) {
  const tensor::Shape expected{channels_};
  FLIM_REQUIRE(gamma_.shape() == expected && beta_.shape() == expected &&
                   mean_.shape() == expected && variance_.shape() == expected,
               "batch norm parameters must all be [channels]");
  FLIM_REQUIRE(epsilon_ >= 0.0f, "batch norm epsilon must be non-negative");
  // Fold into y = scale * x + shift once.
  scale_ = tensor::FloatTensor(expected);
  shift_ = tensor::FloatTensor(expected);
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float inv = 1.0f / std::sqrt(variance_[c] + epsilon_);
    scale_[c] = gamma_[c] * inv;
    shift_[c] = beta_[c] - mean_[c] * scale_[c];
  }
}

tensor::FloatTensor BatchNorm::forward(const tensor::FloatTensor& input,
                                       InferenceContext& ctx) const {
  tensor::FloatTensor out(input.shape());
  if (input.shape().rank() == 4) {
    FLIM_REQUIRE(input.shape()[1] == channels_,
                 "batch norm channel mismatch (NCHW dim 1)");
    const std::int64_t n = input.shape()[0];
    const std::int64_t hw = input.shape()[2] * input.shape()[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float s = scale_[c];
        const float t = shift_[c];
        const float* in = input.data() + (b * channels_ + c) * hw;
        float* o = out.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) o[i] = s * in[i] + t;
      }
    }
  } else if (input.shape().rank() == 2) {
    FLIM_REQUIRE(input.shape()[1] == channels_,
                 "batch norm feature mismatch (dim 1)");
    const std::int64_t n = input.shape()[0];
    for (std::int64_t b = 0; b < n; ++b) {
      const float* in = input.data() + b * channels_;
      float* o = out.data() + b * channels_;
      for (std::int64_t c = 0; c < channels_; ++c) {
        o[c] = scale_[c] * in[c] + shift_[c];
      }
    }
  } else {
    FLIM_REQUIRE(false, "batch norm supports rank-2 and rank-4 inputs");
  }
  record_profile(ctx, input.numel() / ctx.batch, 0);
  return out;
}

void BatchNorm::plan(PlanContext& pc) const {
  const tensor::Shape& in = pc.shape();
  FLIM_REQUIRE(in.rank() == 4 || in.rank() == 2,
               "batch norm supports rank-2 and rank-4 inputs");
  FLIM_REQUIRE(in[1] == channels_,
               in.rank() == 4 ? "batch norm channel mismatch (NCHW dim 1)"
                              : "batch norm feature mismatch (dim 1)");
  const std::size_t si = pc.begin_step(*this);
  pc.step(si).out_shape = in;
}

void BatchNorm::execute(const tensor::FloatTensor& input,
                        tensor::FloatTensor& out, ExecContext& ec) const {
  const PlanStep& st = ec.next_step();
  ec.ws().reshape(out, st.out_shape);
  if (input.shape().rank() == 4) {
    const std::int64_t n = input.shape()[0];
    const std::int64_t hw = input.shape()[2] * input.shape()[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float s = scale_[c];
        const float t = shift_[c];
        const float* in = input.data() + (b * channels_ + c) * hw;
        float* o = out.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) o[i] = s * in[i] + t;
      }
    }
  } else {
    const std::int64_t n = input.shape()[0];
    for (std::int64_t b = 0; b < n; ++b) {
      const float* in = input.data() + b * channels_;
      float* o = out.data() + b * channels_;
      for (std::int64_t c = 0; c < channels_; ++c) {
        o[c] = scale_[c] * in[c] + shift_[c];
      }
    }
  }
}

}  // namespace flim::bnn

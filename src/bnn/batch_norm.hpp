// Inference batch normalization (per-channel affine with frozen statistics).
//
// BNNs rely on batch norm to re-center the integer XNOR accumulators before
// the sign activation; at inference time it is a per-channel affine
// transform executed in CMOS.
#pragma once

#include "bnn/layer.hpp"

namespace flim::bnn {

class BatchNorm final : public Layer {
 public:
  /// All parameter tensors are [channels]. For rank-4 inputs the channel is
  /// dim 1 (NCHW); for rank-2 inputs it is dim 1 (features).
  BatchNorm(std::string name, std::int64_t channels, tensor::FloatTensor gamma,
            tensor::FloatTensor beta, tensor::FloatTensor mean,
            tensor::FloatTensor variance, float epsilon = 1e-5f);

  std::string type() const override { return "batch_norm"; }

  tensor::FloatTensor forward(const tensor::FloatTensor& input,
                              InferenceContext& ctx) const override;
  void plan(PlanContext& pc) const override;
  void execute(const tensor::FloatTensor& input, tensor::FloatTensor& out,
               ExecContext& ec) const override;

  std::int64_t real_param_count() const override { return 4 * channels_; }

  std::int64_t channels() const { return channels_; }
  const tensor::FloatTensor& gamma() const { return gamma_; }
  const tensor::FloatTensor& beta() const { return beta_; }
  const tensor::FloatTensor& mean() const { return mean_; }
  const tensor::FloatTensor& variance() const { return variance_; }
  float epsilon() const { return epsilon_; }

 private:
  std::int64_t channels_;
  tensor::FloatTensor gamma_, beta_, mean_, variance_;
  float epsilon_;
  tensor::FloatTensor scale_, shift_;  // folded y = scale*x + shift
};

}  // namespace flim::bnn

#include "bnn/redundancy.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace flim::bnn {

MedianVoteEngine::MedianVoteEngine(
    std::vector<std::unique_ptr<XnorExecutionEngine>> replicas)
    : replicas_(std::move(replicas)) {
  FLIM_REQUIRE(!replicas_.empty() && replicas_.size() % 2 == 1,
               "median voting needs an odd number of replicas");
  for (const auto& r : replicas_) {
    FLIM_REQUIRE(r != nullptr, "replica engine must not be null");
  }
}

void MedianVoteEngine::execute(const std::string& layer_name,
                               const tensor::BitMatrix& activations,
                               const tensor::BitMatrix& weights,
                               std::int64_t positions_per_image,
                               tensor::IntTensor& out) {
  std::vector<tensor::IntTensor> results(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->execute(layer_name, activations, weights,
                          positions_per_image, results[i]);
  }
  out = results[0];
  if (replicas_.size() == 1) return;

  std::vector<std::int32_t> values(replicas_.size());
  for (std::int64_t e = 0; e < out.numel(); ++e) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      values[i] = results[i][e];
    }
    const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    out[e] = *mid;
  }
}

void MedianVoteEngine::set_thread_pool(core::ThreadPool* pool) {
  for (auto& r : replicas_) r->set_thread_pool(pool);
}

void MedianVoteEngine::reset_time() {
  for (auto& r : replicas_) r->reset_time();
}

}  // namespace flim::bnn

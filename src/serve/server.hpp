// The long-running evaluation server.
//
// `flim_cli serve` keeps warm state between requests: an EvalServer binds
// a TCP port, accepts line-framed eval_request/stats messages (the fleet
// wire vocabulary, fleet/protocol.hpp), answers each with exactly one
// line, and owns the PlanCache + Batcher every session shares. Threading
// mirrors the fleet coordinator deliberately: one accept thread, one
// blocking handler thread per connection, a stop flag polled on every
// timeout, everything joined in stop(). Graceful drain: stop() first runs
// the batcher dry -- every accepted request still gets its reply -- then
// tears the serve loop down. See docs/serving.md.
#pragma once

/// \file
/// EvalServer: TCP serve loop over the warm-entry cache and request
/// batcher, with graceful drain on stop().

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "core/thread_pool.hpp"
#include "fleet/wire.hpp"
#include "serve/batcher.hpp"
#include "serve/plan_cache.hpp"

namespace flim::serve {

/// Tuning for one server instance. The workload shape (evaluation images,
/// training budget, weight cache) is server-wide: clients name a model,
/// the server decides how it is trained and evaluated, so every client
/// asking for one model shares one warm workload.
struct ServerOptions {
  /// Dotted IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read back with port()).
  int port = 0;
  /// Warm-entry bound of the plan cache (>= 1).
  std::size_t cache_capacity = 8;
  /// Submission-queue bound; a full queue answers busy.
  std::size_t queue_capacity = 64;
  /// Maximum same-key requests coalesced into one batch.
  std::size_t batch_max = 8;
  /// Repetition pool width; > 1 runs each request's repetitions in
  /// parallel (bit-identical to serial).
  int jobs = 1;
  /// Retry hint sent with busy replies.
  std::int64_t busy_retry_ms = 200;
  /// Held-out evaluation images per repetition (server-wide).
  std::int64_t eval_images = 300;
  /// Training epochs when the weight cache is cold (server-wide).
  int epochs = 3;
  /// Training samples when the weight cache is cold (server-wide).
  std::int64_t train_samples = 3000;
  /// Weight-cache directory; empty uses the pretrained default.
  std::string weights_dir;
};

/// Serves eval_request/stats connections. start() binds and spawns the
/// accept loop; stop() drains the batcher and tears everything down
/// (idempotent, also called by the destructor).
class EvalServer {
 public:
  /// Validates the options. Throws std::invalid_argument on nonsense.
  explicit EvalServer(ServerOptions options);
  /// Calls stop().
  ~EvalServer();

  /// Noncopyable: owns the listener, threads, and warm state.
  EvalServer(const EvalServer&) = delete;
  /// Noncopyable: owns the listener, threads, and warm state.
  EvalServer& operator=(const EvalServer&) = delete;

  /// Binds the listener and starts serving. Throws std::runtime_error when
  /// the bind fails.
  void start();

  /// The bound TCP port (valid after start()).
  int port() const { return port_; }

  /// Graceful shutdown: completes every accepted request (drain), then
  /// joins the accept and handler threads. Idempotent.
  void stop();

  /// The shared warm-entry cache (tests and stats).
  PlanCache& cache() { return cache_; }

  /// The shared request batcher (tests and stats).
  Batcher& batcher() { return batcher_; }

 private:
  void accept_loop();

  ServerOptions options_;
  std::optional<core::ThreadPool> pool_;
  PlanCache cache_;
  Batcher batcher_;
  int port_ = 0;

  fleet::Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  core::Mutex mutex_;
  std::vector<std::thread> handlers_ FLIM_GUARDED_BY(mutex_);
  bool started_ FLIM_GUARDED_BY(mutex_) = false;
};

}  // namespace flim::serve

#include "serve/plan_cache.hpp"

#include <sstream>

#include "core/check.hpp"
#include "core/thread_pool.hpp"

namespace flim::serve {

namespace {

/// Workload-pool key: every WorkloadSpec field that changes what
/// load_workload() produces.
std::string workload_key(const exp::WorkloadSpec& spec) {
  std::ostringstream os;
  os << spec.model << '|' << spec.eval_images << '|' << spec.epochs << '|'
     << spec.train_samples << '|' << spec.weights_dir << '|'
     << spec.force_retrain;
  return os.str();
}

}  // namespace

CacheEntry::CacheEntry(exp::EvalPointSpec spec,
                       std::shared_ptr<const exp::Workload> workload,
                       std::size_t workers)
    : spec_(std::move(spec)),
      key_(exp::eval_point_key(spec_)),
      workload_(std::move(workload)),
      plan_(workload_->model, workload_->eval_batch.images.shape()),
      workspaces_(workers) {
  FLIM_REQUIRE(workers >= 1, "cache entry needs >= 1 evaluation worker");
  if (!spec_.fault_expr.empty()) {
    stack_ = fault::parse_fault_expr(spec_.fault_expr);
    has_stack_ = true;
  }
}

core::Summary CacheEntry::evaluate(int repetitions, std::uint64_t master_seed,
                                   core::ThreadPool* pool) {
  exp::EvalPointSpec request = spec_;
  request.repetitions = repetitions;
  request.master_seed = master_seed;
  const core::MutexLock lock(exec_mutex_);
  return exp::evaluate_eval_point(request, *workload_, plan_, workspaces_,
                                  pool, has_stack_ ? &stack_ : nullptr);
}

std::string CacheEntry::evaluate_payload(int repetitions,
                                         std::uint64_t master_seed,
                                         core::ThreadPool* pool) {
  exp::EvalPointSpec request = spec_;
  request.repetitions = repetitions;
  request.master_seed = master_seed;
  return exp::format_eval_payload(request,
                                  evaluate(repetitions, master_seed, pool));
}

PlanCache::PlanCache(std::size_t capacity, std::size_t workers)
    : capacity_(capacity), workers_(workers) {
  FLIM_REQUIRE(capacity_ >= 1, "plan cache capacity must be >= 1");
  FLIM_REQUIRE(workers_ >= 1, "plan cache needs >= 1 evaluation worker");
}

std::shared_ptr<const exp::Workload> PlanCache::workload_for(
    const exp::WorkloadSpec& spec) {
  const std::string key = workload_key(spec);
  while (true) {
    {
      core::CondLock lock(mutex_);
      const auto it = workloads_.find(key);
      if (it != workloads_.end()) return it->second;
      if (workload_building_.find(key) == workload_building_.end()) {
        workload_building_.emplace(key, true);
        break;
      }
      // Another thread is loading this workload; wait for it, re-check.
      lock.wait(cv_);
    }
  }
  std::shared_ptr<const exp::Workload> loaded;
  try {
    loaded = std::make_shared<const exp::Workload>(exp::load_workload(spec));
  } catch (...) {
    {
      const core::MutexLock lock(mutex_);
      workload_building_.erase(key);
    }
    // Waiters race to become the next loader (and hit the same error).
    cv_.notify_all();
    throw;
  }
  {
    const core::MutexLock lock(mutex_);
    workloads_.emplace(key, loaded);
    workload_building_.erase(key);
  }
  cv_.notify_all();
  return loaded;
}

std::shared_ptr<CacheEntry> PlanCache::get_or_create(
    const exp::EvalPointSpec& spec) {
  exp::validate(spec);
  const std::string key = exp::eval_point_key(spec);
  while (true) {
    std::shared_ptr<Slot> slot;
    {
      core::CondLock lock(mutex_);
      const auto it = slots_.find(key);
      if (it != slots_.end()) {
        if (it->second->entry) {
          ++counters_.hits;
          lru_.remove(key);
          lru_.push_front(key);
          return it->second->entry;
        }
        // A builder is at work on this key; wait, then re-check (on build
        // failure the slot vanishes and this thread races to rebuild).
        lock.wait(cv_);
        continue;
      }
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      ++counters_.misses;
    }
    // Build outside the lock: workload loading (potentially training) and
    // plan compilation of distinct keys proceed concurrently.
    std::shared_ptr<CacheEntry> entry;
    try {
      std::shared_ptr<const exp::Workload> workload =
          workload_for(spec.workload);
      entry =
          std::make_shared<CacheEntry>(spec, std::move(workload), workers_);
    } catch (...) {
      {
        const core::MutexLock lock(mutex_);
        slots_.erase(key);
      }
      cv_.notify_all();
      throw;
    }
    {
      const core::MutexLock lock(mutex_);
      slot->entry = entry;
      lru_.push_front(key);
      while (lru_.size() > capacity_) {
        // In-flight evaluations of an evicted entry finish safely: callers
        // hold it by shared_ptr, the pool merely forgets it.
        slots_.erase(lru_.back());
        lru_.pop_back();
        ++counters_.evictions;
      }
    }
    cv_.notify_all();
    return entry;
  }
}

CacheCounters PlanCache::counters() const {
  const core::MutexLock lock(mutex_);
  return counters_;
}

std::size_t PlanCache::size() const {
  const core::MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace flim::serve

#include "serve/batcher.hpp"

#include <map>
#include <utility>

#include "core/check.hpp"
#include "core/clock.hpp"

namespace flim::serve {

void Ticket::wait() {
  core::CondLock lock(mutex_);
  while (!done_) lock.wait(cv_);
}

void Ticket::complete(bool ok, std::string payload) {
  {
    const core::MutexLock lock(mutex_);
    FLIM_REQUIRE(!done_, "ticket completed twice");
    done_ = true;
    ok_ = ok;
    payload_ = std::move(payload);
  }
  cv_.notify_all();
}

bool Ticket::ok() {
  const core::MutexLock lock(mutex_);
  return ok_;
}

std::string Ticket::payload() {
  const core::MutexLock lock(mutex_);
  return payload_;
}

Batcher::Batcher(BatcherOptions options) : options_(options) {
  FLIM_REQUIRE(options_.queue_capacity >= 1, "queue capacity must be >= 1");
  FLIM_REQUIRE(options_.batch_max >= 1, "batch_max must be >= 1");
  if (options_.start_thread) {
    consumer_ = std::thread(&Batcher::consume_loop, this);
  }
}

Batcher::~Batcher() { drain(); }

SubmitStatus Batcher::submit(std::shared_ptr<CacheEntry> entry,
                             int repetitions, std::uint64_t master_seed,
                             std::int64_t deadline_ms,
                             std::shared_ptr<Ticket> ticket) {
  FLIM_REQUIRE(entry != nullptr, "submit needs a cache entry");
  FLIM_REQUIRE(ticket != nullptr, "submit needs a ticket");
  FLIM_REQUIRE(repetitions >= 1, "submit needs >= 1 repetition");
  {
    const core::MutexLock lock(mutex_);
    if (draining_) return SubmitStatus::kDraining;
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.rejected_busy;
      return SubmitStatus::kBusy;
    }
    Request req;
    req.entry = std::move(entry);
    req.repetitions = repetitions;
    req.master_seed = master_seed;
    req.deadline_ms = deadline_ms;
    req.enqueue_ms = core::steady_now_ms();
    req.ticket = std::move(ticket);
    queue_.push_back(std::move(req));
    ++counters_.submitted;
  }
  cv_.notify_all();
  return SubmitStatus::kAccepted;
}

bool Batcher::pump() {
  std::vector<Request> batch;
  {
    const core::MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    // Coalesce queued same-key followers (arrival order preserved); other
    // keys stay queued in place for the next batch.
    const std::string& key = batch.front().entry->key();
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < options_.batch_max;) {
      if (it->entry->key() == key) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    ++counters_.batches;
    counters_.coalesced += batch.size() - 1;
  }
  run_batch(std::move(batch));
  return true;
}

void Batcher::run_batch(std::vector<Request> batch) {
  // Identical repetition protocols within the batch evaluate once; the
  // payload is deterministic in (key, reps, seed), so sharing it is
  // indistinguishable from re-evaluating.
  std::map<std::pair<int, std::uint64_t>, std::string> shared;
  for (Request& req : batch) {
    if (req.deadline_ms >= 0 &&
        core::steady_now_ms() >= req.enqueue_ms + req.deadline_ms) {
      {
        const core::MutexLock lock(mutex_);
        ++counters_.expired;
      }
      req.ticket->complete(false, "deadline of " +
                                      std::to_string(req.deadline_ms) +
                                      " ms expired while queued");
      continue;
    }
    try {
      const auto proto = std::make_pair(req.repetitions, req.master_seed);
      auto it = shared.find(proto);
      if (it == shared.end()) {
        it = shared
                 .emplace(proto, req.entry->evaluate_payload(
                                     req.repetitions, req.master_seed,
                                     options_.pool))
                 .first;
      }
      {
        const core::MutexLock lock(mutex_);
        ++counters_.completed;
      }
      req.ticket->complete(true, it->second);
    } catch (const std::exception& e) {
      req.ticket->complete(false, e.what());
    }
  }
}

void Batcher::consume_loop() {
  while (true) {
    {
      core::CondLock lock(mutex_);
      while (queue_.empty() && !draining_) lock.wait(cv_);
      if (queue_.empty() && draining_) return;
    }
    pump();
  }
}

void Batcher::drain() {
  {
    const core::MutexLock lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  if (consumer_.joinable()) {
    consumer_.join();
  } else {
    // Manual mode: run the queue dry ourselves.
    while (pump()) {
    }
  }
}

BatcherCounters Batcher::counters() const {
  const core::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace flim::serve

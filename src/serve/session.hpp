// One client connection of the evaluation server.
//
// A session is the glue between the wire protocol and the warm machinery:
// decode an eval_request, resolve it to a canonical EvalPointSpec (the
// server-wide workload shape plus the request's engine/fault fields),
// fetch the warm entry, submit to the batcher, block on the ticket, send
// exactly one reply line. Failure policy is per-message: configuration
// errors (bad model, bad expression) answer `error` and keep the
// connection; protocol violations answer `error` and drop it; a dead peer
// (send failure) just ends the session -- the server keeps serving
// everyone else. See docs/serving.md#request-lifecycle.
#pragma once

/// \file
/// run_session(): the per-connection serve loop, plus the request ->
/// EvalPointSpec resolution it is built from.

#include <atomic>

#include "exp/eval_point.hpp"
#include "fleet/protocol.hpp"
#include "fleet/wire.hpp"
#include "serve/server.hpp"

namespace flim::serve {

/// Everything a session borrows from its server. All references outlive
/// the session (the server joins handlers before destruction).
struct SessionContext {
  /// Shared warm-entry cache.
  PlanCache& cache;
  /// Shared request batcher.
  Batcher& batcher;
  /// Server options (busy retry hint, workload shape).
  const ServerOptions& options;
  /// The server's stop flag; sessions exit at the next idle poll once set.
  const std::atomic<bool>& stop;
};

/// Resolves a decoded eval_request to the canonical spec the cache is
/// keyed on: workload shape from `options`, engine/fault fields parsed
/// from the request, fault expression canonicalized. Throws
/// std::invalid_argument on unknown backends/granularities, malformed
/// grids, or specs exp::validate rejects.
exp::EvalPointSpec spec_from_request(const fleet::EvalRequest& req,
                                     const ServerOptions& options);

/// Serves one connection until EOF, a protocol violation, a dead peer, or
/// server stop. Replies exactly one line per received message.
void run_session(fleet::LineChannel chan, const SessionContext& ctx);

}  // namespace flim::serve

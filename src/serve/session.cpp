#include "serve/session.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "core/check.hpp"
#include "core/log.hpp"
#include "core/minijson.hpp"

namespace flim::serve {

namespace {

/// How often a blocked recv wakes up to check the stop flag.
constexpr std::int64_t kPollMs = 200;

fault::FaultGranularity parse_granularity(const std::string& s) {
  if (s == "output" || s == "output-element") {
    return fault::FaultGranularity::kOutputElement;
  }
  if (s == "term" || s == "product-term") {
    return fault::FaultGranularity::kProductTerm;
  }
  FLIM_REQUIRE(false, "unknown granularity: " + s + " (expected output|term)");
  return fault::FaultGranularity::kOutputElement;
}

lim::CrossbarGeometry parse_grid(const std::string& grid_str) {
  const auto x = grid_str.find('x');
  FLIM_REQUIRE(x != std::string::npos,
               "grid expects RxC, e.g. 64x64; got: " + grid_str);
  try {
    return {std::stoll(grid_str.substr(0, x)),
            std::stoll(grid_str.substr(x + 1))};
  } catch (const std::exception&) {
    FLIM_REQUIRE(false, "grid expects RxC, e.g. 64x64; got: " + grid_str);
  }
  return {0, 0};
}

/// Builds a stats_ok reply from the live cache/batcher counters.
fleet::ServeStats stats_snapshot(const SessionContext& ctx) {
  const CacheCounters cache = ctx.cache.counters();
  const BatcherCounters batch = ctx.batcher.counters();
  fleet::ServeStats stats;
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_entries = ctx.cache.size();
  stats.requests_completed = batch.completed;
  stats.requests_expired = batch.expired;
  stats.requests_rejected = batch.rejected_busy;
  stats.batches = batch.batches;
  stats.coalesced = batch.coalesced;
  return stats;
}

/// Answers one eval_request: resolve -> warm entry -> batcher -> ticket.
/// Throws std::invalid_argument on bad configuration (the caller turns it
/// into an error reply) and core::JsonError on missing fields.
std::string handle_eval(const fleet::Message& msg, const SessionContext& ctx) {
  const int protocol = static_cast<int>(core::json_number(msg.fields,
                                                          "protocol"));
  if (protocol != fleet::kProtocolVersion) {
    return fleet::encode_error(
        "protocol version mismatch: server speaks " +
        std::to_string(fleet::kProtocolVersion) + ", client sent " +
        std::to_string(protocol));
  }
  const fleet::EvalRequest req = fleet::decode_eval_request(msg);
  const exp::EvalPointSpec spec = spec_from_request(req, ctx.options);
  const std::shared_ptr<CacheEntry> entry = ctx.cache.get_or_create(spec);
  const auto ticket = std::make_shared<Ticket>();
  const SubmitStatus status =
      ctx.batcher.submit(entry, spec.repetitions, spec.master_seed,
                         req.deadline_ms, ticket);
  switch (status) {
    case SubmitStatus::kBusy:
      return fleet::encode_busy(ctx.options.busy_retry_ms);
    case SubmitStatus::kDraining:
      return fleet::encode_error("server is draining");
    case SubmitStatus::kAccepted:
      break;
  }
  ticket->wait();
  if (!ticket->ok()) return fleet::encode_error(ticket->payload());
  return fleet::encode_eval_result(ticket->payload());
}

}  // namespace

exp::EvalPointSpec spec_from_request(const fleet::EvalRequest& req,
                                     const ServerOptions& options) {
  exp::EvalPointSpec spec;
  spec.workload.model = req.model;
  spec.workload.eval_images = options.eval_images;
  spec.workload.epochs = options.epochs;
  spec.workload.train_samples = options.train_samples;
  spec.workload.weights_dir = options.weights_dir;
  spec.engine.backend = exp::parse_backend(req.backend);
  spec.engine.tmr_replicas = req.tmr_replicas;
  if (!req.fault_expr.empty()) {
    spec.fault_expr = fault::canonical_fault_expr(req.fault_expr);
  }
  spec.granularity = parse_granularity(req.granularity);
  spec.grid = parse_grid(req.grid);
  spec.repetitions = req.repetitions;
  spec.master_seed = req.master_seed;
  exp::validate(spec);
  return spec;
}

void run_session(fleet::LineChannel chan, const SessionContext& ctx) {
  try {
    while (!ctx.stop.load()) {
      const fleet::RecvResult recv = chan.recv_line(kPollMs);
      if (recv.status == fleet::RecvStatus::kEof) return;
      if (recv.status == fleet::RecvStatus::kTimeout) continue;
      std::string reply;
      try {
        const fleet::Message msg = fleet::parse_message(recv.line);
        if (msg.type == "eval_request") {
          reply = handle_eval(msg, ctx);
        } else if (msg.type == "stats") {
          reply = fleet::encode_stats_ok(stats_snapshot(ctx));
        } else {
          reply = fleet::encode_error("unknown message type: " + msg.type);
        }
      } catch (const core::JsonError& e) {
        // Malformed line or missing field: answer, then drop the
        // connection -- the peer is not speaking the protocol.
        chan.send_line(fleet::encode_error("protocol violation: " + e.what));
        return;
      } catch (const std::invalid_argument& e) {
        // Bad configuration (unknown model, bad expression): answer and
        // keep the connection; the client may correct and retry.
        reply = fleet::encode_error(e.what());
      }
      chan.send_line(reply);
    }
  } catch (const std::runtime_error& e) {
    // Socket error: the peer died mid-exchange (the kill-the-client test
    // path) or the wire broke. Drop this session; the server keeps
    // serving every other connection.
    FLIM_LOG_WARN << "serve: session ended: " << e.what();
  }
}

}  // namespace flim::serve

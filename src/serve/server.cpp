#include "serve/server.hpp"

#include <utility>

#include "core/check.hpp"
#include "core/log.hpp"
#include "serve/session.hpp"

namespace flim::serve {

namespace {

/// How often the blocked accept call wakes up to check the stop flag.
constexpr std::int64_t kPollMs = 200;

BatcherOptions batcher_options(const ServerOptions& options,
                               core::ThreadPool* pool) {
  BatcherOptions b;
  b.queue_capacity = options.queue_capacity;
  b.batch_max = options.batch_max;
  b.pool = pool;
  b.start_thread = true;
  return b;
}

}  // namespace

EvalServer::EvalServer(ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.jobs > 1
                ? std::optional<core::ThreadPool>(
                      std::in_place, static_cast<std::size_t>(options_.jobs))
                : std::nullopt),
      cache_(options_.cache_capacity,
             pool_ ? pool_->size() : std::size_t{1}),
      batcher_(batcher_options(options_, pool_ ? &*pool_ : nullptr)) {
  FLIM_REQUIRE(options_.jobs >= 1, "jobs must be >= 1");
  FLIM_REQUIRE(options_.busy_retry_ms >= 1, "busy_retry_ms must be >= 1");
  FLIM_REQUIRE(options_.eval_images > 0, "eval_images must be positive");
  FLIM_REQUIRE(options_.epochs >= 1, "epochs must be >= 1");
  FLIM_REQUIRE(options_.train_samples > 0, "train_samples must be positive");
}

EvalServer::~EvalServer() { stop(); }

void EvalServer::start() {
  {
    const core::MutexLock lock(mutex_);
    FLIM_REQUIRE(!started_, "server already started");
    started_ = true;
  }
  listener_ = fleet::listen_on(options_.host, options_.port);
  port_ = listener_.local_port();
  accept_thread_ = std::thread(&EvalServer::accept_loop, this);
  FLIM_LOG_INFO << "serve: evaluation server on " << options_.host << ":"
                << port_ << " (cache " << options_.cache_capacity
                << " entries, queue " << options_.queue_capacity << ", jobs "
                << options_.jobs << ")";
}

void EvalServer::stop() {
  stop_.store(true);
  // Drain first: every accepted request completes and its session sends
  // the reply before the handler threads are joined. Requests arriving
  // after this point are answered "server is draining".
  batcher_.drain();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::thread> handlers;
  {
    const core::MutexLock lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) t.join();
}

void EvalServer::accept_loop() {
  while (!stop_.load()) {
    std::optional<fleet::Socket> conn;
    try {
      conn = fleet::accept_with_timeout(listener_, kPollMs);
    } catch (const std::runtime_error& e) {
      if (stop_.load()) return;
      FLIM_LOG_WARN << "serve: accept failed: " << e.what();
      continue;
    }
    if (!conn) continue;
    const core::MutexLock lock(mutex_);
    if (stop_.load()) return;
    handlers_.emplace_back(
        [this](fleet::Socket socket) {
          const SessionContext ctx{cache_, batcher_, options_, stop_};
          run_session(fleet::LineChannel(std::move(socket)), ctx);
        },
        std::move(*conn));
  }
}

}  // namespace flim::serve

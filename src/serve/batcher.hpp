// Request batching and backpressure for the evaluation server.
//
// Sessions submit (entry, repetition-protocol, deadline) requests into one
// bounded queue and block on a per-request Ticket. A single consumer
// drains the queue in arrival order, coalescing up to batch_max same-key
// requests into one batch so they run back-to-back on the warm entry
// (identical-protocol requests within a batch are evaluated once and share
// the payload). A full queue rejects the submit -- the session answers
// `busy` and the client backs off -- so a flood degrades to retries
// instead of unbounded memory. Requests whose deadline elapsed while
// queued complete with an error instead of evaluating. drain() runs the
// queue dry and stops the consumer; later submits report kDraining. See
// docs/serving.md#batching-and-backpressure.
#pragma once

/// \file
/// The serving request queue: Ticket (one request's completion latch),
/// Batcher (bounded queue + same-key coalescing consumer), submit
/// statuses, and the batcher counters.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "serve/plan_cache.hpp"

namespace flim::serve {

/// One request's completion latch: the submitting session blocks in
/// wait(), the batcher consumer calls complete() exactly once. `payload`
/// carries the eval payload on success, the error message on failure.
class Ticket {
 public:
  /// Blocks until complete() was called (returns immediately afterwards).
  void wait();

  /// Marks the request finished and wakes the waiter. Call once.
  void complete(bool ok, std::string payload);

  /// Whether the request succeeded (meaningful after wait()).
  bool ok();

  /// The result payload (success) or error message (failure); meaningful
  /// after wait().
  std::string payload();

 private:
  core::Mutex mutex_;
  std::condition_variable cv_;
  bool done_ FLIM_GUARDED_BY(mutex_) = false;
  bool ok_ FLIM_GUARDED_BY(mutex_) = false;
  std::string payload_ FLIM_GUARDED_BY(mutex_);
};

/// Outcome of Batcher::submit.
enum class SubmitStatus {
  kAccepted,  ///< Queued; the ticket will complete.
  kBusy,      ///< Queue full; the client should back off and retry.
  kDraining,  ///< The batcher is shutting down; nothing was queued.
};

/// Monotonic batcher counters (stats wire message and tests).
struct BatcherCounters {
  /// Requests accepted into the queue.
  std::uint64_t submitted = 0;
  /// Requests completed with a payload.
  std::uint64_t completed = 0;
  /// Requests whose deadline elapsed while queued.
  std::uint64_t expired = 0;
  /// Submits rejected because the queue was full.
  std::uint64_t rejected_busy = 0;
  /// Executed batches.
  std::uint64_t batches = 0;
  /// Extra same-key requests that rode along in a batch.
  std::uint64_t coalesced = 0;
};

/// Batcher tuning.
struct BatcherOptions {
  /// Bound of the submission queue; a full queue answers kBusy.
  std::size_t queue_capacity = 64;
  /// Maximum requests coalesced into one batch (>= 1).
  std::size_t batch_max = 8;
  /// Optional repetition pool handed to CacheEntry::evaluate.
  core::ThreadPool* pool = nullptr;
  /// Spawn the consumer thread (the server). False runs in manual mode:
  /// nothing executes until pump() is called (deterministic tests).
  bool start_thread = true;
};

/// The bounded request queue plus its consumer. Thread-safe; one instance
/// serves every session of a server.
class Batcher {
 public:
  /// Validates the options and, in threaded mode, spawns the consumer.
  /// Throws std::invalid_argument on nonsense.
  explicit Batcher(BatcherOptions options);
  /// Drains (completes or expires everything queued) before destruction.
  ~Batcher();

  /// Noncopyable: sessions hold references to one shared instance.
  Batcher(const Batcher&) = delete;
  /// Noncopyable: sessions hold references to one shared instance.
  Batcher& operator=(const Batcher&) = delete;

  /// Queues one request against a warm entry. On kAccepted the ticket
  /// completes eventually; on kBusy/kDraining nothing was queued and the
  /// ticket stays pending (the session replies busy/error itself).
  SubmitStatus submit(std::shared_ptr<CacheEntry> entry, int repetitions,
                      std::uint64_t master_seed, std::int64_t deadline_ms,
                      std::shared_ptr<Ticket> ticket);

  /// Manual-mode step: takes one batch off the queue (front request plus
  /// up to batch_max-1 queued same-key followers, order preserved) and
  /// runs it. Returns false when the queue was empty. Also safe in
  /// threaded mode (the lock arbitrates), though the consumer normally
  /// races ahead of callers.
  bool pump();

  /// Stops accepting work (later submits report kDraining), runs the
  /// queue dry, and joins the consumer thread. Idempotent; call from one
  /// thread at a time.
  void drain();

  /// Snapshot of the counters.
  BatcherCounters counters() const;

 private:
  /// One queued request.
  struct Request {
    std::shared_ptr<CacheEntry> entry;
    int repetitions = 1;
    std::uint64_t master_seed = 0;
    /// Deadline budget from submission; < 0 = none.
    std::int64_t deadline_ms = -1;
    /// steady_now_ms() at submission (deadline anchor).
    std::int64_t enqueue_ms = 0;
    std::shared_ptr<Ticket> ticket;
  };

  void consume_loop();
  /// Completes every request of one batch (expiry check, then evaluate;
  /// identical (reps, seed) requests share one evaluation).
  void run_batch(std::vector<Request> batch);

  BatcherOptions options_;

  mutable core::Mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_ FLIM_GUARDED_BY(mutex_);
  bool draining_ FLIM_GUARDED_BY(mutex_) = false;
  BatcherCounters counters_ FLIM_GUARDED_BY(mutex_);

  std::thread consumer_;
};

}  // namespace flim::serve

// Warm-entry cache for the evaluation server.
//
// The expensive part of answering an eval_request is everything before the
// forward passes: loading (or training) the workload, compiling the
// ForwardPlan, parsing the fault expression. A CacheEntry bundles that warm
// state -- workload, plan, per-worker Workspace slabs, pre-parsed
// FaultStack -- and PlanCache keeps an LRU-bounded pool of entries keyed by
// exp::eval_point_key() (model, engine, granularity, grid, canonical fault
// expression), so a repeat request pays only the forward passes. Workloads
// are cached separately (and unbounded) beneath the entry pool: two entries
// differing only in fault expression share one trained model. Eviction is
// safe against in-flight evaluation because callers hold entries by
// shared_ptr; an evicted entry finishes its work and dies with its last
// reference. See docs/serving.md#cache-keying.
#pragma once

/// \file
/// The serving layer's warm-entry pool: CacheEntry (workload + compiled
/// plan + parsed fault stack + workspaces), the LRU-bounded PlanCache with
/// get-or-create building slots, and its hit/miss/eviction counters.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bnn/plan.hpp"
#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "exp/eval_point.hpp"
#include "fault/fault_registry.hpp"
#include "tensor/workspace.hpp"

/// Long-running evaluation server: warm plan/engine pools, request
/// batching, and the serving wire protocol. See docs/serving.md.
namespace flim::serve {

/// One warm cache entry: the canonical spec it answers, the loaded
/// workload, the compiled forward plan, the pre-parsed fault stack, and
/// one Workspace arena per evaluation worker. Entries are immutable after
/// construction except for the workspace slabs, which evaluate() guards
/// with an internal mutex (one evaluation at a time per entry; the batcher
/// serializes same-key work anyway, and distinct entries evaluate freely
/// in parallel).
class CacheEntry {
 public:
  /// Builds the warm state: loads (or trains) nothing itself -- `workload`
  /// arrives pre-loaded from the cache's workload pool -- but compiles the
  /// plan, parses the fault expression, and sizes one workspace per worker.
  CacheEntry(exp::EvalPointSpec spec,
             std::shared_ptr<const exp::Workload> workload,
             std::size_t workers);

  /// The eval_point_key() this entry answers.
  const std::string& key() const { return key_; }

  /// The canonical spec the entry was built from (repetitions/seed hold
  /// the values of the creating request; evaluate() overrides them).
  const exp::EvalPointSpec& spec() const { return spec_; }

  /// The entry's workload (introspection and direct-comparison tests).
  const exp::Workload& workload() const { return *workload_; }

  /// Evaluates this entry's point under a per-request repetition protocol,
  /// reusing the warm plan/stack/workspaces. Repetitions run on `pool`
  /// when non-null (which must not exceed the worker count the entry was
  /// built with); results are bit-identical to a cold direct evaluation of
  /// the same spec.
  core::Summary evaluate(int repetitions, std::uint64_t master_seed,
                         core::ThreadPool* pool);

  /// evaluate() rendered through exp::format_eval_payload -- the canonical
  /// one-line result string the server sends back.
  std::string evaluate_payload(int repetitions, std::uint64_t master_seed,
                               core::ThreadPool* pool);

 private:
  exp::EvalPointSpec spec_;
  std::string key_;
  std::shared_ptr<const exp::Workload> workload_;
  bnn::ForwardPlan plan_;
  fault::FaultStack stack_;
  bool has_stack_ = false;

  core::Mutex exec_mutex_;
  std::vector<tensor::Workspace> workspaces_ FLIM_GUARDED_BY(exec_mutex_);
};

/// Monotonic counters of cache outcomes (the serve_test warm-path
/// assertions and the stats wire message read these).
struct CacheCounters {
  /// get_or_create calls answered by an existing warm entry.
  std::uint64_t hits = 0;
  /// get_or_create calls that built (or began building) a new entry.
  std::uint64_t misses = 0;
  /// Warm entries dropped by the LRU bound.
  std::uint64_t evictions = 0;
};

/// LRU-bounded pool of warm CacheEntry instances keyed by
/// exp::eval_point_key(). Thread-safe: concurrent get_or_create calls for
/// one key build the entry exactly once (waiters block on the builder and
/// then share its entry); distinct keys build concurrently. Entry
/// construction -- including workload training -- happens outside the
/// cache lock.
class PlanCache {
 public:
  /// `capacity` bounds the number of resident warm entries (>= 1);
  /// `workers` sizes each entry's workspace pool (the evaluation pool
  /// width, >= 1).
  PlanCache(std::size_t capacity, std::size_t workers);

  /// Returns the warm entry for `spec`'s key, building it first on a miss.
  /// Throws (and caches nothing) when the spec is invalid or the workload
  /// cannot be loaded; concurrent waiters then race to become the next
  /// builder.
  std::shared_ptr<CacheEntry> get_or_create(const exp::EvalPointSpec& spec);

  /// Snapshot of the hit/miss/eviction counters.
  CacheCounters counters() const;

  /// Number of resident warm entries.
  std::size_t size() const;

 private:
  /// A per-key build slot: `entry` is null while the builder works;
  /// waiters sleep on cv_ and re-check.
  struct Slot {
    std::shared_ptr<CacheEntry> entry;
  };

  /// Returns the cached workload for `spec`, loading it first on a miss
  /// (same building-slot discipline as the entry pool; unbounded --
  /// workloads are few and shared across fault expressions).
  std::shared_ptr<const exp::Workload> workload_for(
      const exp::WorkloadSpec& spec);

  std::size_t capacity_;
  std::size_t workers_;

  mutable core::Mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Slot>> slots_ FLIM_GUARDED_BY(mutex_);
  /// Keys of built entries, most recently used first.
  std::list<std::string> lru_ FLIM_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<const exp::Workload>> workloads_
      FLIM_GUARDED_BY(mutex_);
  /// Workload keys currently being loaded by some thread.
  std::map<std::string, bool> workload_building_ FLIM_GUARDED_BY(mutex_);
  CacheCounters counters_ FLIM_GUARDED_BY(mutex_);
};

}  // namespace flim::serve

#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace flim::data {

namespace {

struct Segment {
  double x0, y0, x1, y1;
};

// Stroke templates in a normalized [0,1]^2 box (y grows downward).
// Seven-segment geometry with diagonals for 1, 2, 4 and 7 to break symmetry
// between visually close classes.
const std::vector<Segment>& digit_segments(int digit) {
  constexpr double L = 0.22, R = 0.78, T = 0.12, M = 0.50, B = 0.88;
  static const std::array<std::vector<Segment>, 10> table = {{
      // 0
      {{L, T, R, T}, {R, T, R, B}, {R, B, L, B}, {L, B, L, T}},
      // 1: vertical with a small leading flag
      {{0.5, T, 0.5, B}, {0.36, 0.26, 0.5, T}},
      // 2
      {{L, T, R, T}, {R, T, R, M}, {R, M, L, B}, {L, B, R, B}},
      // 3
      {{L, T, R, T}, {R, T, R, B}, {L, M, R, M}, {L, B, R, B}},
      // 4
      {{L, T, L, M}, {L, M, R, M}, {R, T, R, B}},
      // 5
      {{R, T, L, T}, {L, T, L, M}, {L, M, R, M}, {R, M, R, B}, {R, B, L, B}},
      // 6
      {{R, T, L, T}, {L, T, L, B}, {L, B, R, B}, {R, B, R, M}, {R, M, L, M}},
      // 7
      {{L, T, R, T}, {R, T, 0.42, B}},
      // 8
      {{L, T, R, T}, {R, T, R, B}, {R, B, L, B}, {L, B, L, T}, {L, M, R, M}},
      // 9
      {{R, M, L, M}, {L, M, L, T}, {L, T, R, T}, {R, T, R, B}, {R, B, L, B}},
  }};
  return table[static_cast<std::size_t>(digit)];
}

double point_segment_distance(double px, double py, const Segment& s) {
  const double dx = s.x1 - s.x0;
  const double dy = s.y1 - s.y0;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - s.x0) * dx + (py - s.y0) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double cx = s.x0 + t * dx;
  const double cy = s.y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

SyntheticMnist::SyntheticMnist(SyntheticMnistOptions options)
    : options_(options) {
  FLIM_REQUIRE(options_.size > 0, "dataset size must be positive");
  FLIM_REQUIRE(options_.min_scale > 0.0 &&
                   options_.min_scale <= options_.max_scale,
               "invalid scale range");
  FLIM_REQUIRE(options_.min_thickness > 0.0 &&
                   options_.min_thickness <= options_.max_thickness,
               "invalid thickness range");
}

Sample SyntheticMnist::get(std::int64_t index) const {
  FLIM_REQUIRE(index >= 0 && index < options_.size, "sample index out of range");
  core::Rng rng = core::Rng(options_.seed).derive(static_cast<std::uint64_t>(index));

  const int digit = static_cast<int>(rng.uniform(10));
  const double angle =
      (rng.uniform_double() * 2.0 - 1.0) * options_.max_rotation_rad;
  const double scale =
      options_.min_scale +
      rng.uniform_double() * (options_.max_scale - options_.min_scale);
  const double tx = (rng.uniform_double() * 2.0 - 1.0) * options_.max_translation;
  const double ty = (rng.uniform_double() * 2.0 - 1.0) * options_.max_translation;
  const double thickness =
      options_.min_thickness +
      rng.uniform_double() * (options_.max_thickness - options_.min_thickness);

  // Transform template segments into pixel space.
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  const double w = 28.0;
  auto to_pixels = [&](double x, double y, double& ox, double& oy) {
    // Center, scale, rotate, translate.
    const double cx = (x - 0.5) * scale * w;
    const double cy = (y - 0.5) * scale * w;
    ox = ca * cx - sa * cy + w / 2.0 + tx;
    oy = sa * cx + ca * cy + w / 2.0 + ty;
  };

  std::vector<Segment> segs;
  for (const auto& s : digit_segments(digit)) {
    Segment t{};
    to_pixels(s.x0, s.y0, t.x0, t.y0);
    to_pixels(s.x1, s.y1, t.x1, t.y1);
    segs.push_back(t);
  }

  Sample out;
  out.label = digit;
  out.image = tensor::FloatTensor(tensor::Shape{1, 28, 28});
  for (std::int64_t y = 0; y < 28; ++y) {
    for (std::int64_t x = 0; x < 28; ++x) {
      double d = 1e9;
      for (const auto& s : segs) {
        d = std::min(d, point_segment_distance(x + 0.5, y + 0.5, s));
      }
      // Soft stroke edge: full intensity inside the stroke, 1px falloff.
      double v = std::clamp(thickness - d + 0.5, 0.0, 1.0);
      v += rng.normal(0.0, options_.noise_stddev);
      out.image[y * 28 + x] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
  return out;
}

}  // namespace flim::data

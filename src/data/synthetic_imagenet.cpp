#include "data/synthetic_imagenet.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace flim::data {

namespace {

constexpr std::int64_t kSide = 32;

struct PatternParams {
  double freq;        // spatial frequency
  double phase;
  double angle;       // orientation jitter
  double cx, cy;      // pattern center
  float color_a[3];   // foreground color
  float color_b[3];   // background color
};

double stripes(double u) { return 0.5 + 0.5 * std::sin(u); }

double pattern_intensity(int cls, double x, double y, const PatternParams& p,
                         core::Rng& rng) {
  const double pi = std::numbers::pi;
  const double ca = std::cos(p.angle);
  const double sa = std::sin(p.angle);
  const double rx = ca * (x - p.cx) - sa * (y - p.cy);
  const double ry = sa * (x - p.cx) + ca * (y - p.cy);
  switch (cls) {
    case 0:  // horizontal stripes
      return stripes(2.0 * pi * p.freq * ry + p.phase);
    case 1:  // vertical stripes
      return stripes(2.0 * pi * p.freq * rx + p.phase);
    case 2:  // diagonal stripes
      return stripes(2.0 * pi * p.freq * (rx + ry) * 0.7071 + p.phase);
    case 3: {  // checkerboard
      const double s = 2.0 * p.freq;
      const int qx = static_cast<int>(std::floor(rx * s + p.phase));
      const int qy = static_cast<int>(std::floor(ry * s + p.phase));
      return ((qx + qy) & 1) ? 1.0 : 0.0;
    }
    case 4: {  // concentric rings
      const double r = std::hypot(rx, ry);
      return stripes(2.0 * pi * p.freq * r * 2.0 + p.phase);
    }
    case 5: {  // single Gaussian blob
      const double r2 = rx * rx + ry * ry;
      const double sigma = 0.08 + 0.10 / p.freq;
      return std::exp(-r2 / (2.0 * sigma * sigma));
    }
    case 6: {  // polka dots on a jittered grid
      const double s = 1.5 * p.freq;
      const double gx = rx * s - std::floor(rx * s) - 0.5;
      const double gy = ry * s - std::floor(ry * s) - 0.5;
      return std::hypot(gx, gy) < 0.28 ? 1.0 : 0.0;
    }
    case 7: {  // concentric squares
      const double r = std::max(std::abs(rx), std::abs(ry));
      return stripes(2.0 * pi * p.freq * r * 2.2 + p.phase);
    }
    case 8: {  // smooth low-frequency noise field (sum of random sinusoids)
      double v = 0.0;
      // Three fixed-direction sinusoids whose phases come from the sample
      // rng; evaluated per-pixel deterministically because rng is only used
      // here to perturb via p (already drawn); keep pure function of coords.
      v += std::sin(2.0 * pi * (0.9 * rx + 1.3 * ry) * p.freq + p.phase);
      v += std::sin(2.0 * pi * (1.7 * rx - 0.6 * ry) * p.freq + 2.1 * p.phase);
      v += std::sin(2.0 * pi * (-0.4 * rx + 1.1 * ry) * p.freq + 3.7 * p.phase);
      (void)rng;
      return 0.5 + v / 6.0;
    }
    case 9:  // half-plane wedge
      return (rx * std::cos(p.phase) + ry * std::sin(p.phase)) > 0.0 ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

}  // namespace

SyntheticImagenet::SyntheticImagenet(SyntheticImagenetOptions options)
    : options_(options) {
  FLIM_REQUIRE(options_.size > 0, "dataset size must be positive");
}

Sample SyntheticImagenet::get(std::int64_t index) const {
  FLIM_REQUIRE(index >= 0 && index < options_.size, "sample index out of range");
  core::Rng rng =
      core::Rng(options_.seed).derive(static_cast<std::uint64_t>(index));

  const int cls = static_cast<int>(rng.uniform(10));
  PatternParams p{};
  p.freq = 1.5 + rng.uniform_double() * 2.5;
  p.phase = rng.uniform_double() * 2.0 * std::numbers::pi;
  p.angle = (rng.uniform_double() * 2.0 - 1.0) * 0.35;
  p.cx = 0.35 + rng.uniform_double() * 0.3;
  p.cy = 0.35 + rng.uniform_double() * 0.3;
  for (int c = 0; c < 3; ++c) {
    p.color_a[c] = static_cast<float>(0.55 + rng.uniform_double() * 0.45);
    p.color_b[c] = static_cast<float>(rng.uniform_double() * 0.45);
  }

  Sample out;
  out.label = cls;
  out.image = tensor::FloatTensor(tensor::Shape{3, kSide, kSide});
  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      const double u = (static_cast<double>(x) + 0.5) / kSide;
      const double v = (static_cast<double>(y) + 0.5) / kSide;
      const double t = std::clamp(pattern_intensity(cls, u, v, p, rng), 0.0, 1.0);
      for (std::int64_t c = 0; c < 3; ++c) {
        double val = p.color_b[c] + t * (p.color_a[c] - p.color_b[c]);
        val += rng.normal(0.0, options_.noise_stddev);
        out.image[(c * kSide + y) * kSide + x] =
            static_cast<float>(std::clamp(val, 0.0, 1.0));
      }
    }
  }
  return out;
}

}  // namespace flim::data

#include "data/dataset.hpp"

#include <cstring>

#include "core/check.hpp"

namespace flim::data {

namespace {

Batch stack(const Dataset& ds, const std::vector<std::int64_t>& indices) {
  const std::int64_t c = ds.channels();
  const std::int64_t h = ds.height();
  const std::int64_t w = ds.width();
  const auto n = static_cast<std::int64_t>(indices.size());
  Batch batch;
  batch.images = tensor::FloatTensor(tensor::Shape{n, c, h, w});
  batch.labels.reserve(indices.size());
  const std::int64_t stride = c * h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    const Sample s = ds.get(indices[static_cast<std::size_t>(i)]);
    FLIM_REQUIRE(s.image.numel() == stride,
                 "sample image size mismatch with dataset geometry");
    std::memcpy(batch.images.data() + i * stride, s.image.data(),
                static_cast<std::size_t>(stride) * sizeof(float));
    batch.labels.push_back(s.label);
  }
  return batch;
}

}  // namespace

Batch load_batch(const Dataset& ds, std::int64_t first, std::int64_t count) {
  FLIM_REQUIRE(first >= 0 && count >= 0 && first + count <= ds.size(),
               "batch range out of bounds");
  std::vector<std::int64_t> indices;
  indices.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) indices.push_back(first + i);
  return stack(ds, indices);
}

Batch load_batch(const Dataset& ds, const std::vector<std::int64_t>& indices) {
  for (const auto i : indices) {
    FLIM_REQUIRE(i >= 0 && i < ds.size(), "batch index out of bounds");
  }
  return stack(ds, indices);
}

}  // namespace flim::data

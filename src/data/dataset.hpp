// Dataset abstraction for image classification workloads.
//
// Datasets are deterministic: sample i of a dataset constructed with seed s
// is always the same image, so fault-injection repetitions vary only in the
// fault placement, exactly as in the paper's protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace flim::data {

/// One labelled image in CHW layout, values in [0, 1] or normalized.
struct Sample {
  tensor::FloatTensor image;
  std::int64_t label = 0;
};

/// A batch of images stacked into NCHW with per-row labels.
struct Batch {
  tensor::FloatTensor images;            // [N, C, H, W]
  std::vector<std::int64_t> labels;      // size N
};

/// Abstract image-classification dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Number of samples.
  virtual std::int64_t size() const = 0;

  /// Deterministically materializes sample `index`.
  virtual Sample get(std::int64_t index) const = 0;

  /// Number of target classes.
  virtual std::int64_t num_classes() const = 0;

  /// Image geometry.
  virtual std::int64_t channels() const = 0;
  virtual std::int64_t height() const = 0;
  virtual std::int64_t width() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Stacks samples [first, first+count) into a contiguous batch.
Batch load_batch(const Dataset& ds, std::int64_t first, std::int64_t count);

/// Stacks an arbitrary index set into a contiguous batch.
Batch load_batch(const Dataset& ds, const std::vector<std::int64_t>& indices);

}  // namespace flim::data

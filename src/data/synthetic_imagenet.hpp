// Procedural 32x32 RGB texture/shape dataset.
//
// Substitute for ImageNet in the Fig 5 / Table II experiments (see
// DESIGN.md): ten parametric pattern classes with randomized color,
// frequency, orientation and noise. The model-zoo comparison only needs a
// shared non-trivial classification task; class geometry is chosen so both
// shallow and deep binary models reach useful clean accuracy.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace flim::data {

/// Generation parameters.
struct SyntheticImagenetOptions {
  std::int64_t size = 10000;
  std::uint64_t seed = 5678;
  double noise_stddev = 0.05;
};

/// Deterministic parametric-texture dataset (32x32 RGB, 10 classes).
///
/// Classes: 0 horizontal stripes, 1 vertical stripes, 2 diagonal stripes,
/// 3 checkerboard, 4 concentric rings, 5 Gaussian blob, 6 polka dots,
/// 7 concentric squares, 8 smooth low-frequency noise field, 9 half-plane
/// wedge.
class SyntheticImagenet final : public Dataset {
 public:
  explicit SyntheticImagenet(SyntheticImagenetOptions options = {});

  std::int64_t size() const override { return options_.size; }
  Sample get(std::int64_t index) const override;
  std::int64_t num_classes() const override { return 10; }
  std::int64_t channels() const override { return 3; }
  std::int64_t height() const override { return 32; }
  std::int64_t width() const override { return 32; }
  std::string name() const override { return "synthetic-imagenet"; }

  const SyntheticImagenetOptions& options() const { return options_; }

 private:
  SyntheticImagenetOptions options_;
};

}  // namespace flim::data

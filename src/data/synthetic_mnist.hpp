// Procedural 28x28 handwritten-digit-like dataset.
//
// Substitute for MNIST (see DESIGN.md): each digit class is rendered from a
// stroke template (7-segment layout plus diagonals) with per-sample random
// rotation, translation, scale, stroke thickness and additive noise. Sample
// identity is fully determined by (seed, index), so campaigns are exactly
// reproducible.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace flim::data {

/// Rendering parameters; defaults reproduce the experiments in the repo.
struct SyntheticMnistOptions {
  std::int64_t size = 10000;
  std::uint64_t seed = 1234;
  double max_rotation_rad = 0.22;   // about ±12.5 degrees
  double max_translation = 2.5;     // pixels
  double min_scale = 0.85;
  double max_scale = 1.1;
  double min_thickness = 1.1;       // stroke half-width in pixels
  double max_thickness = 2.0;
  double noise_stddev = 0.06;       // additive Gaussian pixel noise
};

/// Deterministic stroke-rendered digit dataset (28x28 grey, 10 classes).
class SyntheticMnist final : public Dataset {
 public:
  explicit SyntheticMnist(SyntheticMnistOptions options = {});

  std::int64_t size() const override { return options_.size; }
  Sample get(std::int64_t index) const override;
  std::int64_t num_classes() const override { return 10; }
  std::int64_t channels() const override { return 1; }
  std::int64_t height() const override { return 28; }
  std::int64_t width() const override { return 28; }
  std::string name() const override { return "synthetic-mnist"; }

  const SyntheticMnistOptions& options() const { return options_; }

 private:
  SyntheticMnistOptions options_;
};

}  // namespace flim::data

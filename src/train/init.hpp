// Weight initialization helpers.
#pragma once

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace flim::train {

/// He-normal initialization: N(0, sqrt(2 / fan_in)).
tensor::FloatTensor he_normal(const tensor::Shape& shape, std::int64_t fan_in,
                              core::Rng& rng);

/// Glorot-uniform initialization: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
tensor::FloatTensor glorot_uniform(const tensor::Shape& shape,
                                   std::int64_t fan_in, std::int64_t fan_out,
                                   core::Rng& rng);

}  // namespace flim::train

#include "train/init.hpp"

#include <cmath>

#include "core/check.hpp"

namespace flim::train {

tensor::FloatTensor he_normal(const tensor::Shape& shape, std::int64_t fan_in,
                              core::Rng& rng) {
  FLIM_REQUIRE(fan_in > 0, "fan_in must be positive");
  tensor::FloatTensor t(shape);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

tensor::FloatTensor glorot_uniform(const tensor::Shape& shape,
                                   std::int64_t fan_in, std::int64_t fan_out,
                                   core::Rng& rng) {
  FLIM_REQUIRE(fan_in > 0 && fan_out > 0, "fans must be positive");
  tensor::FloatTensor t(shape);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>((rng.uniform_double() * 2.0 - 1.0) * a);
  }
  return t;
}

}  // namespace flim::train

#include "train/fault_training.hpp"

#include "bnn/activations.hpp"
#include "core/check.hpp"

namespace flim::train {

TFaultInjection::TFaultInjection(std::string name,
                                 fault::FaultVectorEntry entry,
                                 std::int32_t full_scale,
                                 double active_probability,
                                 std::uint64_t rng_seed)
    : TrainLayer(std::move(name)),
      entry_(std::move(entry)),
      full_scale_(full_scale),
      active_probability_(active_probability),
      rng_(rng_seed) {
  FLIM_REQUIRE(!entry_.mask.empty(), "fault injection needs a mask");
  FLIM_REQUIRE(full_scale_ > 0, "full_scale must be positive");
  FLIM_REQUIRE(active_probability_ >= 0.0 && active_probability_ <= 1.0,
               "active probability must be in [0, 1]");
}

tensor::FloatTensor TFaultInjection::forward(const tensor::FloatTensor& x,
                                             bool training) {
  // Faults apply during training only; evaluation of the trained graph and
  // the converted inference model stay clean (robustness lives in weights).
  applied_ = training && rng_.bernoulli(active_probability_);

  // Dynamic faults follow the same every-n-th-execution schedule as the
  // inference injector.
  if (applied_ && entry_.kind == fault::FaultKind::kDynamic) {
    const std::int64_t period = std::max(1, entry_.dynamic_period);
    applied_ = (execution_counter_ % period) == period - 1;
  }
  ++execution_counter_;

  if (!applied_) return x;

  const auto rank = x.shape().rank();
  FLIM_REQUIRE(rank == 2 || rank == 4,
               "fault injection expects dense [N,F] or conv NCHW input");
  const std::int64_t n = x.shape()[0];
  const std::int64_t channels = x.shape()[1];
  const std::int64_t hw = rank == 4 ? x.shape()[2] * x.shape()[3] : 1;
  const std::int64_t slots = entry_.mask.num_slots();

  cached_multiplier_ = tensor::FloatTensor(x.shape(), 1.0f);
  tensor::FloatTensor out = x;
  // Op order matches the inference injector: position-major over (pos, ch).
  for (std::int64_t b = 0; b < n; ++b) {
    std::int64_t op = 0;
    for (std::int64_t pos = 0; pos < hw; ++pos) {
      for (std::int64_t c = 0; c < channels; ++c, ++op) {
        const std::int64_t slot = op % slots;
        // NCHW layout: element (b, c, pos).
        const std::int64_t idx = (b * channels + c) * hw + pos;
        if (entry_.mask.flip(slot)) {
          out[idx] = -out[idx];
          cached_multiplier_[idx] = -1.0f;
        }
        if (entry_.mask.sa0(slot)) {
          out[idx] = static_cast<float>(-full_scale_);
          cached_multiplier_[idx] = 0.0f;
        }
        if (entry_.mask.sa1(slot)) {
          out[idx] = static_cast<float>(full_scale_);
          cached_multiplier_[idx] = 0.0f;
        }
      }
    }
  }
  return out;
}

tensor::FloatTensor TFaultInjection::backward(
    const tensor::FloatTensor& grad_out) {
  if (!applied_) return grad_out;
  FLIM_REQUIRE(grad_out.shape() == cached_multiplier_.shape(),
               "fault injection backward shape mismatch");
  tensor::FloatTensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = grad_out[i] * cached_multiplier_[i];
  }
  return grad_in;
}

bnn::LayerPtr TFaultInjection::to_inference() const {
  return std::make_unique<bnn::Identity>(name());
}

const fault::FaultVectorEntry* find_entry(
    const fault::FaultVectorFile& vectors, const std::string& layer) {
  return vectors.find(layer);
}

}  // namespace flim::train

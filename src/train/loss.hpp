// Softmax cross-entropy loss.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace flim::train {

/// Loss value and the gradient with respect to the logits.
struct LossResult {
  double loss = 0.0;                // mean over the batch
  tensor::FloatTensor grad_logits;  // [batch, classes]
};

/// Computes mean softmax cross-entropy and its logit gradient.
LossResult softmax_cross_entropy(const tensor::FloatTensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace flim::train

// Trainable layers with manual backward passes.
//
// The training graph mirrors the inference layer set; binarized layers keep
// latent real-valued weights and binarize on the forward pass, propagating
// gradients with the straight-through estimator (STE): the sign() derivative
// is approximated by the hard-tanh window 1{|x| <= 1}, the standard BNN
// recipe (Courbariaux/Hubara; used by Larq).
//
// Every layer can emit its inference counterpart via to_inference(), so a
// trained graph converts into a bnn::Model that computes bit-identical
// logits (binary convs pad with -1 to match the XNOR engine's padding).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bnn/layer.hpp"
#include "core/rng.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"
#include "train/optimizer.hpp"

namespace flim::train {

/// Base class of trainable layers.
class TrainLayer {
 public:
  explicit TrainLayer(std::string name) : name_(std::move(name)) {}
  virtual ~TrainLayer() = default;

  TrainLayer(const TrainLayer&) = delete;
  TrainLayer& operator=(const TrainLayer&) = delete;

  const std::string& name() const { return name_; }

  /// Forward pass; `training` toggles batch-norm statistics mode.
  virtual tensor::FloatTensor forward(const tensor::FloatTensor& x,
                                      bool training) = 0;

  /// Backward pass: consumes dL/dy, accumulates parameter gradients, and
  /// returns dL/dx. Must be called right after the matching forward().
  virtual tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) = 0;

  /// Registers trainable parameters.
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  /// Emits the equivalent inference layer.
  virtual bnn::LayerPtr to_inference() const = 0;

 private:
  std::string name_;
};

using TrainLayerPtr = std::unique_ptr<TrainLayer>;

/// Real-valued convolution (the CMOS first layer).
class TConv2D final : public TrainLayer {
 public:
  TConv2D(std::string name, std::int64_t in_channels, std::int64_t out_channels,
          std::int64_t kernel, std::int64_t stride, std::int64_t pad,
          core::Rng& rng);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  tensor::FloatTensor weights_, bias_, grad_weights_, grad_bias_;
  tensor::ConvGeometry geom_;
  std::int64_t batch_ = 0;
  tensor::FloatTensor cached_patches_;
};

/// Binarized convolution with latent weights (STE on weights; inputs are
/// assumed ±1, produced by a preceding TSign).
///
/// With `xnor_gains` enabled, outputs are rescaled per channel by the mean
/// |latent weight| -- XNOR-Net's alpha gains ("weights are multiplied by an
/// individual gain based on the magnitude of the channel"). The gain is
/// treated as a constant in backward (standard XNOR-Net approximation) and
/// is emitted as a ChannelScale layer on conversion.
class TBinaryConv2D final : public TrainLayer {
 public:
  TBinaryConv2D(std::string name, std::int64_t in_channels,
                std::int64_t out_channels, std::int64_t kernel,
                std::int64_t stride, std::int64_t pad, core::Rng& rng,
                bool xnor_gains = false);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

  /// Per-output-channel mean |w| gains (XNOR-Net alpha).
  tensor::FloatTensor channel_gains() const;

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool xnor_gains_ = false;
  tensor::FloatTensor latent_weights_, grad_weights_;
  tensor::ConvGeometry geom_;
  std::int64_t batch_ = 0;
  tensor::FloatTensor cached_patches_;  // ±1 patches
  tensor::FloatTensor cached_sign_w_;
  tensor::FloatTensor cached_gains_;
};

/// Real-valued fully connected layer.
class TDense final : public TrainLayer {
 public:
  TDense(std::string name, std::int64_t in_features, std::int64_t out_features,
         core::Rng& rng);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::int64_t in_features_, out_features_;
  tensor::FloatTensor weights_, bias_, grad_weights_, grad_bias_;
  tensor::FloatTensor cached_input_;
};

/// Binarized fully connected layer with latent weights.
class TBinaryDense final : public TrainLayer {
 public:
  TBinaryDense(std::string name, std::int64_t in_features,
               std::int64_t out_features, core::Rng& rng);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::int64_t in_features_, out_features_;
  tensor::FloatTensor latent_weights_, grad_weights_;
  tensor::FloatTensor cached_input_, cached_sign_w_;
};

/// Batch normalization (training statistics + running averages).
class TBatchNorm final : public TrainLayer {
 public:
  TBatchNorm(std::string name, std::int64_t channels, float momentum = 0.9f,
             float epsilon = 1e-5f);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::int64_t channels_;
  float momentum_, epsilon_;
  tensor::FloatTensor gamma_, beta_, grad_gamma_, grad_beta_;
  tensor::FloatTensor running_mean_, running_var_;
  // caches for backward
  tensor::FloatTensor cached_xhat_;
  tensor::FloatTensor cached_inv_std_;  // [channels]
  tensor::Shape cached_shape_;
};

/// Sign activation with STE backward.
class TSign final : public TrainLayer {
 public:
  explicit TSign(std::string name);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  tensor::FloatTensor cached_input_;
};

/// ReLU.
class TReLU final : public TrainLayer {
 public:
  explicit TReLU(std::string name);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  tensor::FloatTensor cached_input_;
};

/// Max pooling (square window).
class TMaxPool2D final : public TrainLayer {
 public:
  TMaxPool2D(std::string name, std::int64_t kernel, std::int64_t stride);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::int64_t kernel_, stride_;
  tensor::Shape cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;
};

/// Global average pooling NCHW -> [N, C].
class TGlobalAvgPool final : public TrainLayer {
 public:
  explicit TGlobalAvgPool(std::string name);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  tensor::Shape cached_in_shape_;
};

/// Flatten NCHW -> [N, F].
class TFlatten final : public TrainLayer {
 public:
  explicit TFlatten(std::string name);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  tensor::Shape cached_in_shape_;
};

/// Residual block: y = body(x) + shortcut(x) (identity when no shortcut).
class TResidualBlock final : public TrainLayer {
 public:
  TResidualBlock(std::string name, std::vector<TrainLayerPtr> body,
                 std::vector<TrainLayerPtr> shortcut);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::vector<TrainLayerPtr> body_;
  std::vector<TrainLayerPtr> shortcut_;  // empty => identity
};

/// Dense-connectivity block: y = concat(x, body(x)) along channels.
class TConcatBlock final : public TrainLayer {
 public:
  TConcatBlock(std::string name, std::vector<TrainLayerPtr> body);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  bnn::LayerPtr to_inference() const override;

 private:
  std::vector<TrainLayerPtr> body_;
  std::int64_t cached_c0_ = 0;
};

}  // namespace flim::train

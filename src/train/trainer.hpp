// Training loop: mini-batch SGD over a dataset with held-out evaluation.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "train/graph.hpp"
#include "train/optimizer.hpp"

namespace flim::train {

/// Training hyper-parameters.
struct TrainConfig {
  int epochs = 5;
  std::int64_t batch_size = 32;
  std::int64_t train_samples = 0;  // 0 => whole dataset
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Multiplicative learning-rate decay applied after each epoch.
  float lr_decay = 1.0f;
};

/// Outcome of a training run.
struct TrainResult {
  double final_train_loss = 0.0;
  double final_train_accuracy = 0.0;
  int epochs_run = 0;
};

/// Trains `graph` on `dataset` with `optimizer`.
TrainResult fit(Graph& graph, Optimizer& optimizer,
                const data::Dataset& dataset, const TrainConfig& config);

/// Evaluates classification accuracy of the graph (eval mode) over samples
/// [first, first+count) of `dataset`, in batches.
double evaluate_graph(Graph& graph, const data::Dataset& dataset,
                      std::int64_t first, std::int64_t count,
                      std::int64_t batch_size = 64);

}  // namespace flim::train

// First-order optimizers over flat parameter references.
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace flim::train {

/// A trainable parameter: value plus accumulated gradient, owned by a layer.
struct ParamRef {
  tensor::FloatTensor* value = nullptr;
  tensor::FloatTensor* grad = nullptr;
};

/// Optimizer interface; step() consumes and implicitly zeroes gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers the parameters to optimize (call once before step()).
  virtual void attach(std::vector<ParamRef> params) = 0;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void step() = 0;

  /// Current learning rate (schedulers may change it between steps).
  virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

  void attach(std::vector<ParamRef> params) override;
  void step() override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, epsilon_;
  std::int64_t t_ = 0;
  std::vector<ParamRef> params_;
  std::vector<tensor::FloatTensor> m_, v_;
};

/// SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr = 1e-2f, float momentum = 0.9f);

  void attach(std::vector<ParamRef> params) override;
  void step() override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_, momentum_;
  std::vector<ParamRef> params_;
  std::vector<tensor::FloatTensor> velocity_;
};

}  // namespace flim::train

// Training-time fault injection -- the paper's stated future work ("in the
// future, we want to extend the capabilities of FLIM to inject faults during
// training").
//
// TFaultInjection is a training layer placed directly after a binarized
// layer's accumulator output. During the forward pass it applies the same
// output-element fault semantics as the inference-time FaultInjector (flips
// negate, stuck-at pins to the full-scale ∓K accumulator value) using the
// identical virtual-crossbar slot mapping, so a network trained with it has
// seen exactly the fault distribution the deployed crossbar will exhibit.
// The backward pass is exact: flipped elements propagate negated gradients,
// pinned elements block the gradient.
//
// On conversion the layer disappears (bnn::Identity) by default -- the
// trained weights carry the robustness -- or can keep the mask for deployed
// arrays with known defect maps.
#pragma once

#include "fault/fault_vector_file.hpp"
#include "train/layers.hpp"

namespace flim::train {

/// Applies output-element faults to a binarized layer's accumulator output
/// during training.
class TFaultInjection final : public TrainLayer {
 public:
  /// `entry` carries the mask and fault kind; `full_scale` is the layer's
  /// product-term count K (the pin magnitude for stuck-at faults).
  /// `active_probability` optionally makes injection stochastic per batch
  /// (1.0 = always), drawing from `rng_seed`.
  TFaultInjection(std::string name, fault::FaultVectorEntry entry,
                  std::int32_t full_scale, double active_probability = 1.0,
                  std::uint64_t rng_seed = 0x5eed);

  tensor::FloatTensor forward(const tensor::FloatTensor& x,
                              bool training) override;
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_out) override;
  bnn::LayerPtr to_inference() const override;

  const fault::FaultVectorEntry& entry() const { return entry_; }

 private:
  fault::FaultVectorEntry entry_;
  std::int32_t full_scale_;
  double active_probability_;
  core::Rng rng_;
  std::int64_t execution_counter_ = 0;
  // Per-element multiplier (+1 / -1 for flips, 0 for pinned elements),
  // rebuilt each forward; shaped like the input.
  tensor::FloatTensor cached_multiplier_;
  bool applied_ = false;
};

/// Convenience: wraps masks from `vectors` around the binarized layers of a
/// LeNet-shaped graph under construction. Returns the entry for `layer` or
/// nullptr. (Builders call this while assembling fault-aware graphs.)
const fault::FaultVectorEntry* find_entry(
    const fault::FaultVectorFile& vectors, const std::string& layer);

}  // namespace flim::train

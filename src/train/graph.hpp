// Training graph: an ordered stack of trainable layers.
#pragma once

#include <string>
#include <vector>

#include "bnn/model.hpp"
#include "train/layers.hpp"

namespace flim::train {

/// Sequential training graph with conversion to an inference model.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  const std::string& name() const { return name_; }

  void add(TrainLayerPtr layer);

  std::size_t num_layers() const { return layers_.size(); }

  /// Forward pass (training toggles batch-norm statistics mode).
  tensor::FloatTensor forward(const tensor::FloatTensor& x, bool training);

  /// Backward pass from the loss gradient; returns dL/dinput.
  tensor::FloatTensor backward(const tensor::FloatTensor& grad_logits);

  /// All trainable parameters.
  std::vector<ParamRef> params();

  /// Converts to an inference model computing identical logits (eval mode).
  bnn::Model to_inference_model() const;

 private:
  std::string name_;
  std::vector<TrainLayerPtr> layers_;
};

}  // namespace flim::train

#include "train/layers.hpp"

#include <algorithm>
#include <cmath>

#include "bnn/activations.hpp"
#include "bnn/batch_norm.hpp"
#include "bnn/binary_conv2d.hpp"
#include "bnn/binary_dense.hpp"
#include "bnn/blocks.hpp"
#include "bnn/conv2d.hpp"
#include "bnn/dense.hpp"
#include "bnn/pooling.hpp"
#include "core/check.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "train/init.hpp"

namespace flim::train {

namespace {

// STE mask: gradient passes only where the latent weight is inside the
// hard-tanh window.
inline float ste_window(float latent) {
  return std::abs(latent) <= 1.0f ? 1.0f : 0.0f;
}

tensor::FloatTensor nchw_to_flat(const tensor::FloatTensor& t) {
  // [N, C, H, W] -> [N*H*W, C] matching the conv GEMM row order.
  const std::int64_t n = t.shape()[0];
  const std::int64_t c = t.shape()[1];
  const std::int64_t h = t.shape()[2];
  const std::int64_t w = t.shape()[3];
  tensor::FloatTensor out(tensor::Shape{n * h * w, c});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          out.at2((b * h + y) * w + x, ch) = t.at4(b, ch, y, x);
        }
      }
    }
  }
  return out;
}

tensor::FloatTensor flat_to_nchw(const tensor::FloatTensor& flat,
                                 std::int64_t n, std::int64_t c,
                                 std::int64_t h, std::int64_t w) {
  tensor::FloatTensor out(tensor::Shape{n, c, h, w});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          out.at4(b, ch, y, x) = flat.at2((b * h + y) * w + x, ch);
        }
      }
    }
  }
  return out;
}

tensor::FloatTensor forward_chain(std::vector<TrainLayerPtr>& layers,
                                  const tensor::FloatTensor& x,
                                  bool training) {
  tensor::FloatTensor y = x;
  for (auto& l : layers) y = l->forward(y, training);
  return y;
}

tensor::FloatTensor backward_chain(std::vector<TrainLayerPtr>& layers,
                                   const tensor::FloatTensor& grad) {
  tensor::FloatTensor g = grad;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void collect_chain(std::vector<TrainLayerPtr>& layers,
                   std::vector<ParamRef>& out) {
  for (auto& l : layers) l->collect_params(out);
}

std::vector<bnn::LayerPtr> chain_to_inference(
    const std::vector<TrainLayerPtr>& layers) {
  std::vector<bnn::LayerPtr> out;
  out.reserve(layers.size());
  for (const auto& l : layers) out.push_back(l->to_inference());
  return out;
}

}  // namespace

// ---------------------------------------------------------------- TConv2D

TConv2D::TConv2D(std::string name, std::int64_t in_channels,
                 std::int64_t out_channels, std::int64_t kernel,
                 std::int64_t stride, std::int64_t pad, core::Rng& rng)
    : TrainLayer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  const std::int64_t k = in_channels * kernel * kernel;
  weights_ = he_normal(tensor::Shape{out_channels, k}, k, rng);
  bias_ = tensor::FloatTensor(tensor::Shape{out_channels});
  grad_weights_ = tensor::FloatTensor(tensor::Shape{out_channels, k});
  grad_bias_ = tensor::FloatTensor(tensor::Shape{out_channels});
}

tensor::FloatTensor TConv2D::forward(const tensor::FloatTensor& x,
                                     bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 4, "conv expects NCHW");
  geom_ = tensor::ConvGeometry{in_channels_, x.shape()[2], x.shape()[3],
                               kernel_,      kernel_,      stride_,
                               pad_};
  batch_ = x.shape()[0];
  cached_patches_ = tensor::im2col(x, geom_, 0.0f);
  tensor::FloatTensor flat;
  tensor::gemm_bt(cached_patches_, weights_, flat);
  const std::int64_t rows = flat.shape()[0];
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      flat.at2(r, c) += bias_[c];
    }
  }
  return flat_to_nchw(flat, batch_, out_channels_, geom_.out_h(), geom_.out_w());
}

tensor::FloatTensor TConv2D::backward(const tensor::FloatTensor& grad_out) {
  const tensor::FloatTensor grad_flat = nchw_to_flat(grad_out);
  // dW += grad^T * patches
  tensor::gemm_at(grad_flat, cached_patches_, grad_weights_, /*accumulate=*/true);
  const std::int64_t rows = grad_flat.shape()[0];
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < out_channels_; ++c) {
      grad_bias_[c] += grad_flat.at2(r, c);
    }
  }
  tensor::FloatTensor grad_patches;
  tensor::gemm(grad_flat, weights_, grad_patches);
  return tensor::col2im(grad_patches, batch_, geom_);
}

void TConv2D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &grad_weights_});
  out.push_back({&bias_, &grad_bias_});
}

bnn::LayerPtr TConv2D::to_inference() const {
  return std::make_unique<bnn::Conv2D>(name(), in_channels_, out_channels_,
                                       kernel_, stride_, pad_, weights_,
                                       bias_);
}

// ---------------------------------------------------------- TBinaryConv2D

TBinaryConv2D::TBinaryConv2D(std::string name, std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad,
                             core::Rng& rng, bool xnor_gains)
    : TrainLayer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      xnor_gains_(xnor_gains) {
  const std::int64_t k = in_channels * kernel * kernel;
  latent_weights_ = glorot_uniform(tensor::Shape{out_channels, k}, k,
                                   out_channels, rng);
  grad_weights_ = tensor::FloatTensor(tensor::Shape{out_channels, k});
}

tensor::FloatTensor TBinaryConv2D::forward(const tensor::FloatTensor& x,
                                           bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 4, "binary conv expects NCHW");
  geom_ = tensor::ConvGeometry{in_channels_, x.shape()[2], x.shape()[3],
                               kernel_,      kernel_,      stride_,
                               pad_};
  batch_ = x.shape()[0];
  // Pad with -1 to match the XNOR engine's binary padding.
  cached_patches_ = tensor::im2col(x, geom_, -1.0f);
  cached_sign_w_ = tensor::sign(latent_weights_);
  tensor::FloatTensor flat;
  tensor::gemm_bt(cached_patches_, cached_sign_w_, flat);
  if (xnor_gains_) {
    cached_gains_ = channel_gains();
    const std::int64_t rows = flat.shape()[0];
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        flat.at2(r, c) *= cached_gains_[c];
      }
    }
  }
  return flat_to_nchw(flat, batch_, out_channels_, geom_.out_h(),
                      geom_.out_w());
}

tensor::FloatTensor TBinaryConv2D::backward(
    const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_flat = nchw_to_flat(grad_out);
  if (xnor_gains_) {
    // Gains treated as constants (XNOR-Net approximation): scale the
    // incoming gradient back onto the un-scaled conv output.
    const std::int64_t rows = grad_flat.shape()[0];
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        grad_flat.at2(r, c) *= cached_gains_[c];
      }
    }
  }
  tensor::FloatTensor grad_sign_w;
  tensor::gemm_at(grad_flat, cached_patches_, grad_sign_w);
  // STE: pass the gradient of the binarized weight through to the latent
  // weight only inside the hard-tanh window.
  for (std::int64_t i = 0; i < grad_weights_.numel(); ++i) {
    grad_weights_[i] += grad_sign_w[i] * ste_window(latent_weights_[i]);
  }
  tensor::FloatTensor grad_patches;
  tensor::gemm(grad_flat, cached_sign_w_, grad_patches);
  return tensor::col2im(grad_patches, batch_, geom_);
}

void TBinaryConv2D::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&latent_weights_, &grad_weights_});
}

bnn::LayerPtr TBinaryConv2D::to_inference() const {
  auto conv = std::make_unique<bnn::BinaryConv2D>(
      name(), in_channels_, out_channels_, kernel_, stride_, pad_,
      tensor::sign(latent_weights_));
  if (!xnor_gains_) return conv;
  std::vector<bnn::LayerPtr> chain;
  chain.push_back(std::move(conv));
  chain.push_back(
      std::make_unique<bnn::ChannelScale>(name() + "/gain", channel_gains()));
  return std::make_unique<bnn::Sequential>(name() + "/scaled",
                                           std::move(chain));
}

tensor::FloatTensor TBinaryConv2D::channel_gains() const {
  const std::int64_t k = latent_weights_.shape()[1];
  tensor::FloatTensor gains(tensor::Shape{out_channels_});
  for (std::int64_t c = 0; c < out_channels_; ++c) {
    float acc = 0.0f;
    for (std::int64_t i = 0; i < k; ++i) {
      acc += std::abs(latent_weights_.at2(c, i));
    }
    gains[c] = acc / static_cast<float>(k);
  }
  return gains;
}

// ----------------------------------------------------------------- TDense

TDense::TDense(std::string name, std::int64_t in_features,
               std::int64_t out_features, core::Rng& rng)
    : TrainLayer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  weights_ = he_normal(tensor::Shape{out_features, in_features}, in_features,
                       rng);
  bias_ = tensor::FloatTensor(tensor::Shape{out_features});
  grad_weights_ = tensor::FloatTensor(tensor::Shape{out_features, in_features});
  grad_bias_ = tensor::FloatTensor(tensor::Shape{out_features});
}

tensor::FloatTensor TDense::forward(const tensor::FloatTensor& x,
                                    bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 2 && x.shape()[1] == in_features_,
               "dense input mismatch");
  cached_input_ = x;
  tensor::FloatTensor out;
  tensor::gemm_bt(x, weights_, out);
  const std::int64_t n = out.shape()[0];
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < out_features_; ++c) out.at2(r, c) += bias_[c];
  }
  return out;
}

tensor::FloatTensor TDense::backward(const tensor::FloatTensor& grad_out) {
  tensor::gemm_at(grad_out, cached_input_, grad_weights_, /*accumulate=*/true);
  const std::int64_t n = grad_out.shape()[0];
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < out_features_; ++c) {
      grad_bias_[c] += grad_out.at2(r, c);
    }
  }
  tensor::FloatTensor grad_in;
  tensor::gemm(grad_out, weights_, grad_in);
  return grad_in;
}

void TDense::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &grad_weights_});
  out.push_back({&bias_, &grad_bias_});
}

bnn::LayerPtr TDense::to_inference() const {
  return std::make_unique<bnn::Dense>(name(), in_features_, out_features_,
                                      weights_, bias_);
}

// ----------------------------------------------------------- TBinaryDense

TBinaryDense::TBinaryDense(std::string name, std::int64_t in_features,
                           std::int64_t out_features, core::Rng& rng)
    : TrainLayer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  latent_weights_ = glorot_uniform(tensor::Shape{out_features, in_features},
                                   in_features, out_features, rng);
  grad_weights_ = tensor::FloatTensor(tensor::Shape{out_features, in_features});
}

tensor::FloatTensor TBinaryDense::forward(const tensor::FloatTensor& x,
                                          bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 2 && x.shape()[1] == in_features_,
               "binary dense input mismatch");
  cached_input_ = x;
  cached_sign_w_ = tensor::sign(latent_weights_);
  tensor::FloatTensor out;
  tensor::gemm_bt(x, cached_sign_w_, out);
  return out;
}

tensor::FloatTensor TBinaryDense::backward(const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_sign_w;
  tensor::gemm_at(grad_out, cached_input_, grad_sign_w);
  for (std::int64_t i = 0; i < grad_weights_.numel(); ++i) {
    grad_weights_[i] += grad_sign_w[i] * ste_window(latent_weights_[i]);
  }
  tensor::FloatTensor grad_in;
  tensor::gemm(grad_out, cached_sign_w_, grad_in);
  return grad_in;
}

void TBinaryDense::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&latent_weights_, &grad_weights_});
}

bnn::LayerPtr TBinaryDense::to_inference() const {
  return std::make_unique<bnn::BinaryDense>(name(), in_features_,
                                            out_features_,
                                            tensor::sign(latent_weights_));
}

// ------------------------------------------------------------- TBatchNorm

TBatchNorm::TBatchNorm(std::string name, std::int64_t channels, float momentum,
                       float epsilon)
    : TrainLayer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon) {
  gamma_ = tensor::FloatTensor(tensor::Shape{channels}, 1.0f);
  beta_ = tensor::FloatTensor(tensor::Shape{channels});
  grad_gamma_ = tensor::FloatTensor(tensor::Shape{channels});
  grad_beta_ = tensor::FloatTensor(tensor::Shape{channels});
  running_mean_ = tensor::FloatTensor(tensor::Shape{channels});
  running_var_ = tensor::FloatTensor(tensor::Shape{channels}, 1.0f);
}

tensor::FloatTensor TBatchNorm::forward(const tensor::FloatTensor& x,
                                        bool training) {
  const auto rank = x.shape().rank();
  FLIM_REQUIRE(rank == 2 || rank == 4, "batch norm expects rank 2 or 4");
  FLIM_REQUIRE(x.shape()[1] == channels_, "batch norm channel mismatch");
  cached_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  const std::int64_t hw = rank == 4 ? x.shape()[2] * x.shape()[3] : 1;
  const std::int64_t m = n * hw;

  tensor::FloatTensor mean(tensor::Shape{channels_});
  tensor::FloatTensor var(tensor::Shape{channels_});
  if (training) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* in = x.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) acc += in[i];
      }
      mean[c] = static_cast<float>(acc / static_cast<double>(m));
    }
    for (std::int64_t c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* in = x.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = in[i] - mean[c];
          acc += d * d;
        }
      }
      var[c] = static_cast<float>(acc / static_cast<double>(m));
      running_mean_[c] = momentum_ * running_mean_[c] + (1.0f - momentum_) * mean[c];
      running_var_[c] = momentum_ * running_var_[c] + (1.0f - momentum_) * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_ = tensor::FloatTensor(tensor::Shape{channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    cached_inv_std_[c] = 1.0f / std::sqrt(var[c] + epsilon_);
  }

  cached_xhat_ = tensor::FloatTensor(x.shape());
  tensor::FloatTensor out(x.shape());
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float mu = mean[c];
      const float inv = cached_inv_std_[c];
      const float g = gamma_[c];
      const float bt = beta_[c];
      const float* in = x.data() + (b * channels_ + c) * hw;
      float* xh = cached_xhat_.data() + (b * channels_ + c) * hw;
      float* o = out.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (in[i] - mu) * inv;
        o[i] = g * xh[i] + bt;
      }
    }
  }
  return out;
}

tensor::FloatTensor TBatchNorm::backward(const tensor::FloatTensor& grad_out) {
  FLIM_REQUIRE(grad_out.shape() == cached_shape_,
               "batch norm backward shape mismatch");
  const auto rank = grad_out.shape().rank();
  const std::int64_t n = grad_out.shape()[0];
  const std::int64_t hw = rank == 4 ? grad_out.shape()[2] * grad_out.shape()[3] : 1;
  const auto m = static_cast<float>(n * hw);

  tensor::FloatTensor grad_in(grad_out.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Per-channel sums of dy and dy*xhat for the current batch.
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t b = 0; b < n; ++b) {
      const float* dy = grad_out.data() + (b * channels_ + c) * hw;
      const float* xh = cached_xhat_.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += dy[i] * xh[i];
      }
    }
    grad_beta_[c] += static_cast<float>(sum_dy);
    grad_gamma_[c] += static_cast<float>(sum_dy_xhat);

    const float k = gamma_[c] * cached_inv_std_[c];
    const float mean_dy = static_cast<float>(sum_dy) / m;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / m;
    for (std::int64_t b = 0; b < n; ++b) {
      const float* dy = grad_out.data() + (b * channels_ + c) * hw;
      const float* xh = cached_xhat_.data() + (b * channels_ + c) * hw;
      float* dx = grad_in.data() + (b * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dx[i] = k * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

void TBatchNorm::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&gamma_, &grad_gamma_});
  out.push_back({&beta_, &grad_beta_});
}

bnn::LayerPtr TBatchNorm::to_inference() const {
  return std::make_unique<bnn::BatchNorm>(name(), channels_, gamma_, beta_,
                                          running_mean_, running_var_,
                                          epsilon_);
}

// ------------------------------------------------------------------ TSign

TSign::TSign(std::string name) : TrainLayer(std::move(name)) {}

tensor::FloatTensor TSign::forward(const tensor::FloatTensor& x,
                                   bool /*training*/) {
  cached_input_ = x;
  return tensor::sign(x);
}

tensor::FloatTensor TSign::backward(const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = grad_out[i] * ste_window(cached_input_[i]);
  }
  return grad_in;
}

bnn::LayerPtr TSign::to_inference() const {
  return std::make_unique<bnn::Sign>(name());
}

// ------------------------------------------------------------------ TReLU

TReLU::TReLU(std::string name) : TrainLayer(std::move(name)) {}

tensor::FloatTensor TReLU::forward(const tensor::FloatTensor& x,
                                   bool /*training*/) {
  cached_input_ = x;
  tensor::FloatTensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) out[i] = std::max(0.0f, x[i]);
  return out;
}

tensor::FloatTensor TReLU::backward(const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = cached_input_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return grad_in;
}

bnn::LayerPtr TReLU::to_inference() const {
  return std::make_unique<bnn::ReLU>(name());
}

// ------------------------------------------------------------- TMaxPool2D

TMaxPool2D::TMaxPool2D(std::string name, std::int64_t kernel,
                       std::int64_t stride)
    : TrainLayer(std::move(name)), kernel_(kernel), stride_(stride) {}

tensor::FloatTensor TMaxPool2D::forward(const tensor::FloatTensor& x,
                                        bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 4, "max pool expects NCHW");
  cached_in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;

  tensor::FloatTensor out(tensor::Shape{n, c, oh, ow});
  cached_argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  std::int64_t oidx = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x2 = 0; x2 < ow; ++x2, ++oidx) {
          float best = -1e30f;
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = y * stride_ + ky;
              const std::int64_t ix = x2 * stride_ + kx;
              const std::int64_t idx = ((b * c + ch) * h + iy) * w + ix;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          out[oidx] = best;
          cached_argmax_[static_cast<std::size_t>(oidx)] = best_idx;
        }
      }
    }
  }
  return out;
}

tensor::FloatTensor TMaxPool2D::backward(const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_in(cached_in_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[cached_argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return grad_in;
}

bnn::LayerPtr TMaxPool2D::to_inference() const {
  return std::make_unique<bnn::MaxPool2D>(name(), kernel_, stride_);
}

// --------------------------------------------------------- TGlobalAvgPool

TGlobalAvgPool::TGlobalAvgPool(std::string name)
    : TrainLayer(std::move(name)) {}

tensor::FloatTensor TGlobalAvgPool::forward(const tensor::FloatTensor& x,
                                            bool /*training*/) {
  FLIM_REQUIRE(x.shape().rank() == 4, "global avg pool expects NCHW");
  cached_in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t hw = x.shape()[2] * x.shape()[3];
  tensor::FloatTensor out(tensor::Shape{n, c});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* in = x.data() + (b * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += in[i];
      out.at2(b, ch) = acc / static_cast<float>(hw);
    }
  }
  return out;
}

tensor::FloatTensor TGlobalAvgPool::backward(
    const tensor::FloatTensor& grad_out) {
  const std::int64_t n = cached_in_shape_[0];
  const std::int64_t c = cached_in_shape_[1];
  const std::int64_t hw = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  tensor::FloatTensor grad_in(cached_in_shape_);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at2(b, ch) * inv;
      float* dst = grad_in.data() + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) dst[i] = g;
    }
  }
  return grad_in;
}

bnn::LayerPtr TGlobalAvgPool::to_inference() const {
  return std::make_unique<bnn::GlobalAvgPool>(name());
}

// --------------------------------------------------------------- TFlatten

TFlatten::TFlatten(std::string name) : TrainLayer(std::move(name)) {}

tensor::FloatTensor TFlatten::forward(const tensor::FloatTensor& x,
                                      bool /*training*/) {
  cached_in_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  return x.reshaped(tensor::Shape{n, x.numel() / n});
}

tensor::FloatTensor TFlatten::backward(const tensor::FloatTensor& grad_out) {
  return grad_out.reshaped(cached_in_shape_);
}

bnn::LayerPtr TFlatten::to_inference() const {
  return std::make_unique<bnn::Flatten>(name());
}

// --------------------------------------------------------- TResidualBlock

TResidualBlock::TResidualBlock(std::string name,
                               std::vector<TrainLayerPtr> body,
                               std::vector<TrainLayerPtr> shortcut)
    : TrainLayer(std::move(name)),
      body_(std::move(body)),
      shortcut_(std::move(shortcut)) {
  FLIM_REQUIRE(!body_.empty(), "residual block needs a body");
}

tensor::FloatTensor TResidualBlock::forward(const tensor::FloatTensor& x,
                                            bool training) {
  tensor::FloatTensor main = forward_chain(body_, x, training);
  tensor::FloatTensor bypass =
      shortcut_.empty() ? x : forward_chain(shortcut_, x, training);
  FLIM_REQUIRE(main.shape() == bypass.shape(),
               "residual branch shapes must match");
  tensor::add_inplace(main, bypass);
  return main;
}

tensor::FloatTensor TResidualBlock::backward(
    const tensor::FloatTensor& grad_out) {
  tensor::FloatTensor grad_main = backward_chain(body_, grad_out);
  tensor::FloatTensor grad_bypass =
      shortcut_.empty() ? grad_out : backward_chain(shortcut_, grad_out);
  tensor::add_inplace(grad_main, grad_bypass);
  return grad_main;
}

void TResidualBlock::collect_params(std::vector<ParamRef>& out) {
  collect_chain(body_, out);
  collect_chain(shortcut_, out);
}

bnn::LayerPtr TResidualBlock::to_inference() const {
  bnn::LayerPtr shortcut;
  if (!shortcut_.empty()) {
    shortcut = std::make_unique<bnn::Sequential>(name() + "/shortcut",
                                                 chain_to_inference(shortcut_));
  }
  return std::make_unique<bnn::ResidualBlock>(name(), chain_to_inference(body_),
                                              std::move(shortcut));
}

// ----------------------------------------------------------- TConcatBlock

TConcatBlock::TConcatBlock(std::string name, std::vector<TrainLayerPtr> body)
    : TrainLayer(std::move(name)), body_(std::move(body)) {
  FLIM_REQUIRE(!body_.empty(), "concat block needs a body");
}

tensor::FloatTensor TConcatBlock::forward(const tensor::FloatTensor& x,
                                          bool training) {
  FLIM_REQUIRE(x.shape().rank() == 4, "concat block expects NCHW");
  cached_c0_ = x.shape()[1];
  const tensor::FloatTensor grown = forward_chain(body_, x, training);
  FLIM_REQUIRE(grown.shape().rank() == 4 &&
                   grown.shape()[0] == x.shape()[0] &&
                   grown.shape()[2] == x.shape()[2] &&
                   grown.shape()[3] == x.shape()[3],
               "concat body must preserve batch and spatial dims");
  const std::int64_t n = x.shape()[0];
  const std::int64_t c1 = grown.shape()[1];
  const std::int64_t hw = x.shape()[2] * x.shape()[3];
  tensor::FloatTensor out(
      tensor::Shape{n, cached_c0_ + c1, x.shape()[2], x.shape()[3]});
  for (std::int64_t b = 0; b < n; ++b) {
    float* dst = out.data() + b * (cached_c0_ + c1) * hw;
    const float* s0 = x.data() + b * cached_c0_ * hw;
    const float* s1 = grown.data() + b * c1 * hw;
    std::copy(s0, s0 + cached_c0_ * hw, dst);
    std::copy(s1, s1 + c1 * hw, dst + cached_c0_ * hw);
  }
  return out;
}

tensor::FloatTensor TConcatBlock::backward(const tensor::FloatTensor& grad_out) {
  const std::int64_t n = grad_out.shape()[0];
  const std::int64_t ctot = grad_out.shape()[1];
  const std::int64_t c1 = ctot - cached_c0_;
  const std::int64_t h = grad_out.shape()[2];
  const std::int64_t w = grad_out.shape()[3];
  const std::int64_t hw = h * w;

  tensor::FloatTensor grad_x(tensor::Shape{n, cached_c0_, h, w});
  tensor::FloatTensor grad_grown(tensor::Shape{n, c1, h, w});
  for (std::int64_t b = 0; b < n; ++b) {
    const float* src = grad_out.data() + b * ctot * hw;
    std::copy(src, src + cached_c0_ * hw, grad_x.data() + b * cached_c0_ * hw);
    std::copy(src + cached_c0_ * hw, src + ctot * hw,
              grad_grown.data() + b * c1 * hw);
  }
  tensor::FloatTensor grad_body = backward_chain(body_, grad_grown);
  tensor::add_inplace(grad_x, grad_body);
  return grad_x;
}

void TConcatBlock::collect_params(std::vector<ParamRef>& out) {
  collect_chain(body_, out);
}

bnn::LayerPtr TConcatBlock::to_inference() const {
  return std::make_unique<bnn::ConcatBlock>(name(), chain_to_inference(body_));
}

}  // namespace flim::train

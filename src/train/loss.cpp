#include "train/loss.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/ops.hpp"

namespace flim::train {

LossResult softmax_cross_entropy(const tensor::FloatTensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  FLIM_REQUIRE(logits.shape().rank() == 2, "logits must be [batch, classes]");
  const std::int64_t n = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  FLIM_REQUIRE(static_cast<std::size_t>(n) == labels.size(),
               "one label per logits row required");

  LossResult result;
  result.grad_logits = tensor::softmax_rows(logits);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t label = labels[static_cast<std::size_t>(r)];
    FLIM_REQUIRE(label >= 0 && label < classes, "label out of range");
    float* row = result.grad_logits.data() + r * classes;
    total -= std::log(std::max(row[label], 1e-12f));
    // dL/dlogits = (softmax - onehot) / batch
    row[label] -= 1.0f;
    for (std::int64_t c = 0; c < classes; ++c) row[c] *= inv_n;
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace flim::train

#include "train/graph.hpp"

#include "core/check.hpp"

namespace flim::train {

void Graph::add(TrainLayerPtr layer) {
  FLIM_REQUIRE(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
}

tensor::FloatTensor Graph::forward(const tensor::FloatTensor& x,
                                   bool training) {
  FLIM_REQUIRE(!layers_.empty(), "graph has no layers");
  tensor::FloatTensor y = x;
  for (auto& l : layers_) y = l->forward(y, training);
  return y;
}

tensor::FloatTensor Graph::backward(const tensor::FloatTensor& grad_logits) {
  tensor::FloatTensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> Graph::params() {
  std::vector<ParamRef> out;
  for (auto& l : layers_) l->collect_params(out);
  return out;
}

bnn::Model Graph::to_inference_model() const {
  bnn::Model model(name_);
  for (const auto& l : layers_) model.add(l->to_inference());
  return model;
}

}  // namespace flim::train

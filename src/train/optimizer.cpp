#include "train/optimizer.hpp"

#include <cmath>

#include "core/check.hpp"

namespace flim::train {

Adam::Adam(float lr, float beta1, float beta2, float epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FLIM_REQUIRE(lr > 0.0f, "learning rate must be positive");
}

void Adam::attach(std::vector<ParamRef> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  for (const auto& p : params_) {
    FLIM_REQUIRE(p.value != nullptr && p.grad != nullptr,
                 "parameter references must be non-null");
    FLIM_REQUIRE(p.value->shape() == p.grad->shape(),
                 "parameter and gradient shapes must match");
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::FloatTensor& w = *params_[i].value;
    tensor::FloatTensor& g = *params_[i].grad;
    tensor::FloatTensor& m = m_[i];
    tensor::FloatTensor& v = v_[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
      g[j] = 0.0f;
    }
  }
}

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  FLIM_REQUIRE(lr > 0.0f, "learning rate must be positive");
}

void Sgd::attach(std::vector<ParamRef> params) {
  params_ = std::move(params);
  velocity_.clear();
  for (const auto& p : params_) {
    FLIM_REQUIRE(p.value != nullptr && p.grad != nullptr,
                 "parameter references must be non-null");
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor::FloatTensor& w = *params_[i].value;
    tensor::FloatTensor& g = *params_[i].grad;
    tensor::FloatTensor& vel = velocity_[i];
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * g[j];
      w[j] += vel[j];
      g[j] = 0.0f;
    }
  }
}

}  // namespace flim::train

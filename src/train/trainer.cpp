#include "train/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "core/check.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"

namespace flim::train {

TrainResult fit(Graph& graph, Optimizer& optimizer,
                const data::Dataset& dataset, const TrainConfig& config) {
  FLIM_REQUIRE(config.epochs > 0, "need at least one epoch");
  FLIM_REQUIRE(config.batch_size > 0, "batch size must be positive");
  const std::int64_t total = config.train_samples > 0
                                 ? std::min(config.train_samples, dataset.size())
                                 : dataset.size();
  FLIM_REQUIRE(total > 0, "empty training set");

  optimizer.attach(graph.params());
  core::Rng rng(config.shuffle_seed);

  std::vector<std::int64_t> order(static_cast<std::size_t>(total));
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic generator.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform(i)]);
    }

    double epoch_loss = 0.0;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (std::int64_t begin = 0; begin < total; begin += config.batch_size) {
      const std::int64_t end = std::min(begin + config.batch_size, total);
      const std::vector<std::int64_t> indices(
          order.begin() + static_cast<std::ptrdiff_t>(begin),
          order.begin() + static_cast<std::ptrdiff_t>(end));
      const data::Batch batch = data::load_batch(dataset, indices);

      const tensor::FloatTensor logits = graph.forward(batch.images, true);
      const LossResult loss = softmax_cross_entropy(logits, batch.labels);
      graph.backward(loss.grad_logits);
      optimizer.step();

      epoch_loss += loss.loss * static_cast<double>(end - begin);
      const auto preds = tensor::argmax_rows(logits);
      for (std::size_t i = 0; i < batch.labels.size(); ++i) {
        if (preds[i] == batch.labels[i]) ++correct;
      }
      seen += end - begin;
    }
    result.final_train_loss = epoch_loss / static_cast<double>(seen);
    result.final_train_accuracy =
        static_cast<double>(correct) / static_cast<double>(seen);
    result.epochs_run = epoch + 1;
    if (config.verbose) {
      FLIM_LOG_INFO << graph.name() << " epoch " << (epoch + 1) << "/"
                    << config.epochs << " loss=" << result.final_train_loss
                    << " acc=" << result.final_train_accuracy;
    }
    optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
  }
  return result;
}

double evaluate_graph(Graph& graph, const data::Dataset& dataset,
                      std::int64_t first, std::int64_t count,
                      std::int64_t batch_size) {
  FLIM_REQUIRE(first >= 0 && count > 0 && first + count <= dataset.size(),
               "evaluation range out of bounds");
  std::int64_t correct = 0;
  for (std::int64_t begin = first; begin < first + count; begin += batch_size) {
    const std::int64_t n = std::min(batch_size, first + count - begin);
    const data::Batch batch = data::load_batch(dataset, begin, n);
    const tensor::FloatTensor logits = graph.forward(batch.images, false);
    const auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace flim::train

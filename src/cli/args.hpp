// Minimal command-line argument parsing for the flim_cli tool.
//
// Grammar: flim_cli <command> [--flag value]... [--switch]...
// Values are parsed on demand with type-checked accessors; unknown flags are
// rejected so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace flim::cli {

/// Parsed command line.
class Args {
 public:
  /// Parses argv[1..); argv[1] is the command. Throws std::invalid_argument
  /// on malformed input (flag without value, duplicate flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  /// Typed accessors; `fallback` is returned when the flag is absent.
  std::string get_string(const std::string& flag,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  bool has(const std::string& flag) const;

  /// Comma-separated list accessor ("a,b,c" -> {"a","b","c"}).
  std::vector<std::string> get_list(const std::string& flag) const;

  /// Comma-separated doubles ("0,0.1,0.2").
  std::vector<double> get_double_list(const std::string& flag) const;

  /// Verifies that every provided flag is in `allowed`; throws otherwise.
  void require_known(const std::set<std::string>& allowed) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

}  // namespace flim::cli

// Minimal command-line argument parsing for the flim_cli tool.
//
// Grammar: flim_cli <command> [positional]... [--flag value]... [--switch]...
// Bare tokens between the command and the first flag are positionals
// (subcommand names, file paths); after the first flag a bare token can only
// be a flag's value. Values are parsed on demand with type-checked
// accessors; unknown flags and unexpected positionals are rejected so typos
// fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace flim::cli {

/// Parsed command line.
class Args {
 public:
  /// Parses argv[1..); argv[1] is the command, following bare tokens up to
  /// the first --flag are positionals. Throws std::invalid_argument on
  /// malformed input (bare token after flags began, duplicate flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  /// Bare tokens between the command and the first flag, in order.
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Typed accessors; `fallback` is returned when the flag is absent.
  std::string get_string(const std::string& flag,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  bool has(const std::string& flag) const;

  /// Comma-separated list accessor ("a,b,c" -> {"a","b","c"}).
  std::vector<std::string> get_list(const std::string& flag) const;

  /// Comma-separated doubles ("0,0.1,0.2").
  std::vector<double> get_double_list(const std::string& flag) const;

  /// Verifies that every provided flag is in `allowed` and that at most
  /// `max_positionals` positionals were given; throws otherwise. Commands
  /// that take no positionals (the default) keep rejecting bare tokens.
  void require_known(const std::set<std::string>& allowed,
                     std::size_t max_positionals = 0) const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

}  // namespace flim::cli

// flim_cli subcommand implementations.
//
//   flim_cli generate  -- draw fault masks and write a fault-vector file
//   flim_cli inspect   -- summarize a fault-vector file
//   flim_cli faults    -- list/describe the registered fault models and
//                         validate fault expressions
//   flim_cli train     -- train a model and cache its weights
//   flim_cli evaluate  -- clean vs faulty accuracy for a model + vector file
//   flim_cli eval      -- one fault-evaluation point, printed as the
//                         canonical one-line payload; --connect asks a
//                         running serve instance instead
//   flim_cli serve     -- long-running evaluation server with warm
//                         plan/engine pools and request batching
//   flim_cli campaign  -- repeated-seed injection-rate sweep (CSV output);
//                         supports durable run files (--store), resumption
//                         (--resume) and deterministic sharding (--shard)
//   flim_cli merge     -- fold shard run files into one campaign result
//   flim_cli march     -- offline March test / coverage on a device array
//   flim_cli scrub     -- ECC scrub of a fault-vector file (codec-aware)
//   flim_cli ecc       -- codec registry tools: list/describe codecs,
//                         exhaustive error-pattern enumeration (sharded,
//                         durable, resumable), shard merging, and the
//                         codec-vs-fault Pareto report
//   flim_cli monitor   -- canary-monitor detection latency for a vector file
//   flim_cli lifetime  -- accuracy-over-lifetime simulation with mitigation
//
// Each command returns a process exit code; `run` dispatches and prints
// usage on unknown commands.
#pragma once

#include "cli/args.hpp"

namespace flim::cli {

/// Dispatches to the subcommand; returns the process exit code.
int run(const Args& args);

/// Prints the usage text to stdout.
void print_usage();

int cmd_generate(const Args& args);
int cmd_inspect(const Args& args);
int cmd_faults(const Args& args);
int cmd_train(const Args& args);
int cmd_evaluate(const Args& args);
int cmd_eval(const Args& args);
int cmd_serve(const Args& args);
int cmd_campaign(const Args& args);
int cmd_merge(const Args& args);
int cmd_march(const Args& args);
int cmd_scrub(const Args& args);
int cmd_ecc(const Args& args);
int cmd_monitor(const Args& args);
int cmd_lifetime(const Args& args);

}  // namespace flim::cli

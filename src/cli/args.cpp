#include "cli/args.hpp"

#include <sstream>

#include "core/check.hpp"

namespace flim::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc < 2) return args;
  args.command_ = argv[1];
  bool flags_began = false;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      // Bare tokens before any flag are positionals; later ones could only
      // be a mistyped flag (flag *values* are consumed with their flag).
      FLIM_REQUIRE(!flags_began, "expected --flag, got: " + token);
      args.positionals_.push_back(token);
      continue;
    }
    flags_began = true;
    const std::string flag = token.substr(2);
    FLIM_REQUIRE(!flag.empty(), "empty flag name");
    FLIM_REQUIRE(args.values_.find(flag) == args.values_.end() &&
                     args.switches_.find(flag) == args.switches_.end(),
                 "duplicate flag: --" + flag);
    // A flag followed by another flag (or nothing) is a boolean switch.
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      args.switches_.insert(flag);
    } else {
      args.values_[flag] = argv[++i];
    }
  }
  return args;
}

std::string Args::get_string(const std::string& flag,
                             const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t Args::get_int(const std::string& flag,
                           std::int64_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  FLIM_REQUIRE(pos == it->second.size(),
               "flag --" + flag + " expects an integer, got " + it->second);
  return v;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  FLIM_REQUIRE(pos == it->second.size(),
               "flag --" + flag + " expects a number, got " + it->second);
  return v;
}

bool Args::has(const std::string& flag) const {
  return switches_.count(flag) > 0 || values_.count(flag) > 0;
}

std::vector<std::string> Args::get_list(const std::string& flag) const {
  std::vector<std::string> out;
  const std::string raw = get_string(flag);
  if (raw.empty()) return out;
  std::istringstream is(raw);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> Args::get_double_list(const std::string& flag) const {
  std::vector<double> out;
  for (const auto& item : get_list(flag)) {
    std::size_t pos = 0;
    out.push_back(std::stod(item, &pos));
    FLIM_REQUIRE(pos == item.size(),
                 "flag --" + flag + " expects numbers, got " + item);
  }
  return out;
}

void Args::require_known(const std::set<std::string>& allowed,
                         std::size_t max_positionals) const {
  for (const auto& [flag, value] : values_) {
    FLIM_REQUIRE(allowed.count(flag) > 0, "unknown flag: --" + flag);
  }
  for (const auto& flag : switches_) {
    FLIM_REQUIRE(allowed.count(flag) > 0, "unknown flag: --" + flag);
  }
  FLIM_REQUIRE(positionals_.size() <= max_positionals,
               "unexpected argument: " +
                   (positionals_.empty() ? std::string()
                                         : positionals_[max_positionals]));
}

}  // namespace flim::cli

#include "cli/commands.hpp"

#include <atomic>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>

#include "bnn/plan.hpp"
#include "core/backoff.hpp"
#include "core/check.hpp"
#include "core/clock.hpp"
#include "core/minijson.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "exp/eval_point.hpp"
#include "exp/scenario.hpp"
#include "exp/store.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_registry.hpp"
#include "fault/fault_vector_file.hpp"
#include "fault/residual.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/protocol.hpp"
#include "fleet/worker.hpp"
#include "serve/server.hpp"
#include "reliability/ecc.hpp"
#include "reliability/ecc/exhaust.hpp"
#include "reliability/ecc/exhaust_store.hpp"
#include "reliability/ecc/registry.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/march.hpp"
#include "reliability/monitor.hpp"

namespace flim::cli {

namespace {

fault::FaultKind parse_kind(const std::string& s) {
  if (s == "bitflip" || s == "bit-flip") return fault::FaultKind::kBitFlip;
  if (s == "stuckat" || s == "stuck-at") return fault::FaultKind::kStuckAt;
  if (s == "dynamic") return fault::FaultKind::kDynamic;
  FLIM_REQUIRE(false, "unknown fault kind: " + s +
                          " (expected bitflip|stuckat|dynamic)");
  return fault::FaultKind::kBitFlip;
}

fault::FaultGranularity parse_granularity(const std::string& s) {
  if (s == "output" || s == "output-element") {
    return fault::FaultGranularity::kOutputElement;
  }
  if (s == "term" || s == "product-term") {
    return fault::FaultGranularity::kProductTerm;
  }
  FLIM_REQUIRE(false, "unknown granularity: " + s + " (expected output|term)");
  return fault::FaultGranularity::kOutputElement;
}

fault::FaultDistribution parse_distribution(const std::string& s) {
  if (s == "uniform") return fault::FaultDistribution::kUniform;
  if (s == "clustered") return fault::FaultDistribution::kClustered;
  FLIM_REQUIRE(false, "unknown distribution: " + s +
                          " (expected uniform|clustered)");
  return fault::FaultDistribution::kUniform;
}

/// Maps the shared model/training flags onto a workload spec; the scenario
/// layer owns the actual dataset/train/cache wiring.
exp::WorkloadSpec workload_from(const Args& args) {
  exp::WorkloadSpec w;
  w.model = args.get_string("model", "lenet");
  w.eval_images = args.get_int("images", 300);
  w.epochs = static_cast<int>(args.get_int("epochs", 3));
  w.train_samples = args.get_int("samples", 3000);
  w.verbose = args.has("verbose");
  if (args.has("weights-dir")) {
    w.weights_dir = args.get_string("weights-dir");
  }
  w.force_retrain = args.has("retrain");
  return w;
}

/// Parses "RxC" grid flags.
lim::CrossbarGeometry parse_grid(const Args& args, const std::string& flag,
                                 const std::string& fallback) {
  const std::string grid_str = args.get_string(flag, fallback);
  const auto x = grid_str.find('x');
  FLIM_REQUIRE(x != std::string::npos,
               "--" + flag + " expects RxC, e.g. " + fallback);
  return {std::stoll(grid_str.substr(0, x)),
          std::stoll(grid_str.substr(x + 1))};
}

/// Writes an ephemeral-bound port for launch scripts, atomically (tmp +
/// rename) so a polling launcher never reads a torn file. Empty path = off.
void write_port_file(const std::string& path, int port) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    FLIM_REQUIRE(out.good(), "cannot write port file: " + tmp);
    out << port << "\n";
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace

void print_usage() {
  std::cout <<
      R"(flim_cli -- fault injection for logic-in-memory BNNs

usage: flim_cli <command> [flags]

commands:
  generate   draw fault masks and write a fault-vector file
             --out FILE (required), --layers a,b,c (required)
             --kind bitflip|stuckat|dynamic  --rate R (0..1)
             or --fault EXPR (composable model stack; replaces --kind/--rate)
             --grid RxC (default 64x64)  --faulty-rows N  --faulty-cols N
             --period N (dynamic)  --sa1-fraction F  --granularity output|term
             --distribution uniform|clustered [--clusters N]
             [--cluster-radius R]  --seed S
  inspect    summarize a fault-vector file: --file FILE
  faults     list the registered fault models (name, params, time semantics)
             [--describe MODEL (full parameter docs)]
             [--expr EXPR (parse/validate an expression, print its
              canonical form)]
             expression grammar: name(k=v,...)+name(...), e.g.
             stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)
  train      train and cache a model
             --model lenet|<zoo name>  --epochs N  --samples N
             [--weights-dir DIR] [--retrain] [--verbose]
  evaluate   clean vs faulty accuracy
             --model M  --vectors FILE  [--images N] [--weights-dir DIR]
             [--engine flim|device|tmr]
  eval       one fault-evaluation point (the serving request shape); prints
             a canonical one-line JSON payload, byte-identical between the
             direct and --connect paths for the same request
             --model M  [--engine reference|flim|device|tmr] [--fault EXPR]
             [--granularity output|term] [--grid RxC] [--reps N] [--seed S]
             [--jobs N] [--out FILE (also write the payload line there)]
             direct workload shape: [--images N] [--epochs N] [--samples N]
             [--weights-dir DIR] [--retrain] [--verbose]
             remote: [--connect HOST:PORT (ask a running serve instance;
              the workload shape is the server's)] [--deadline-ms MS]
             [--busy-retries N] [--io-timeout-ms MS] [--connect-attempts N]
  serve      long-running evaluation server for `eval --connect`: keeps
             trained workloads, compiled plans, and parsed fault stacks
             warm between requests; coalesces same-key requests; answers
             busy under load; drains gracefully on SIGTERM (docs/serving.md)
             [--host A] [--port P (default 0 = ephemeral)] [--port-file F
              (write the bound port for launch scripts)]
             [--cache N (warm entries, default 8)] [--queue N (default 64)]
             [--batch-max N (default 8)] [--jobs N (parallel repetitions)]
             [--busy-retry-ms MS]  server-wide workload shape: [--images N]
             [--epochs N] [--samples N] [--weights-dir DIR]
  campaign   repeated-seed sweep over injection rates or fault expressions
             --model M  --kind K  --rates 0,0.05,0.1  [--reps N]
             or --fault EXPR: sweep a composable fault stack; a '@'
              placeholder is expanded with each --rates value, e.g.
              --fault drift(rate=@,tau=500) --rates 0.01,0.05; without
              '@' the stack is evaluated as a single point
             [--engine flim|device|tmr]  [--jobs N (parallel repetitions)]
             [--granularity output|term] [--grid RxC] [--csv FILE]
             [--json FILE]
             [--ecc EXPR (scrub every realized mask down to the codec's
              residual before injection; "none" = off)]
             [--ecc-word-bits N (default 64)] [--ecc-interleave K]
             durability: [--store RUNFILE (stream each completed point; an
              existing RUNFILE with a matching spec is resumed in place,
              never overwritten)]  [--resume RUNFILE (skip its points;
              continues RUNFILE unless --store names another file)]
             [--shard I/N (evaluate the deterministic 0-based slice I of N;
              requires --store)]
  campaign serve   coordinate a worker fleet over TCP until the grid is
             complete, then merge the uploaded shards (same spec flags as
             campaign; the merged CSV is byte-identical to a single-process
             run)
             --shards N (default 2)  [--host A] [--port P (default 7641;
              0 binds an ephemeral port)] [--port-file F (write the bound
              port for launch scripts)]
             [--lease-ttl-ms MS (default 30000; must exceed the slowest
              point)] [--heartbeat-ms MS] [--wait-retry-ms MS]
             [--work-dir DIR (default fleet-work)] [--csv FILE] [--json FILE]
  campaign work    lease and run shards for a coordinator (same spec flags
             as campaign; the spec fingerprint must match the coordinator's
             or the worker is rejected)
             [--host A] [--port P]  [--name ID]  [--work-dir DIR (shared
              with other workers to resume abandoned shards)]
             [--heartbeat-ms MS (0 = adopt the grant's cadence)]
             [--io-timeout-ms MS] [--connect-attempts N] [--no-fsync]
             [--max-points N (testing: simulate a crash after N points)]
  campaign status  inspect run files: fingerprint, shard, progress, torn
             tail bytes; exits 0 only when every file is complete
             flim_cli campaign status <run-file>...
  merge      fold shard run files into one campaign result
             --inputs a.run.jsonl,b.run.jsonl,...  [--csv FILE] [--json FILE]
             (validates spec fingerprints, rejects overlaps and gaps; the
              merged CSV is byte-identical to a single-process run)
  march      offline March test of a simulated crossbar
             --algorithm mats+|marchx|marchc-|raw1|all  [--grid RxC]
             single-fault mode: --inject KIND --at R,C [--severity S]
             coverage mode:     --coverage [--samples N] [--severity S]
             (KIND: stuckat0 stuckat1 stuckcurrent drift slowset slowreset
              readdisturb incorrectread)
  scrub      ECC scrub of a fault-vector file (residual = what the workload
             actually sees after per-word correction)
             --in FILE --out FILE [--word-bits N] [--interleave K]
             [--codec EXPR (default secded; e.g. bch(d=64,t=2) widens the
              correction radius to 2 faults/word)]
  ecc        codec registry tools (docs/ecc.md)
             ecc [list]             registered families + default geometry
             ecc --describe FAMILY  parameter schema, capability, cost
             ecc exhaust            walk EVERY error placement of the given
               weights through a codec and classify each as corrected,
               detected, or aliased (silent corruption)
               --codec EXPR  --weights 1,2,3  [--burst (contiguous windows
                instead of combinations)]  [--chunk N] [--data-seed S]
               [--jobs N] [--csv FILE] [--json FILE]
               durability: [--store FILE (checkpoint; an existing store
                with a matching spec resumes in place)]  [--shard I/N
                (deterministic chunk slice; requires --store)]
             ecc merge              fold shard stores into the full result
               --inputs a.jsonl,b.jsonl,...  [--csv FILE] [--json FILE]
               (byte-identical CSV to a single-process run)
             ecc pareto             ECC-method x fault-expression sweep:
               accuracy retained vs parity/column/cycle overhead
               [--model M] [--faults 'e1;e2' (';'-separated)]
               [--codecs 'none;secded;bch(d=64,t=2)'] [--reps N] [--seed S]
               [--grid RxC] [--word-bits N] [--interleave K] [--jobs N]
               [--csv FILE] [--json FILE]  workload shape: [--images N]
               [--epochs N] [--samples N] [--weights-dir DIR]
  monitor    canary-monitor detection latency against a fault-vector file
             --vectors FILE --layer NAME [--period N] [--slots N]
             [--policy roundrobin|random] [--reps N] [--seed S]
  lifetime   accuracy-over-lifetime simulation with a mitigation stack
             --model M  [--mitigation none|scrub|scrub+ecc|scrub+ecc+tmr]
             [--horizon H] [--step H] [--wearout-scale H] [--wearout-shape B]
             [--upsets-per-hour R] [--grid RxC] [--images N] [--csv FILE]
)";
}

namespace {

/// Aggregate plane population counts of an entry (legacy mask plus every
/// realized component).
struct EntryCounts {
  std::int64_t flips = 0;
  std::int64_t sa0 = 0;
  std::int64_t sa1 = 0;
};

EntryCounts count_entry(const fault::FaultVectorEntry& entry) {
  EntryCounts counts;
  if (!entry.mask.empty()) {
    counts.flips += entry.mask.count_flip();
    counts.sa0 += entry.mask.count_sa0();
    counts.sa1 += entry.mask.count_sa1();
  }
  for (const fault::RealizedFault& c : entry.components) {
    counts.flips += c.mask.count_flip();
    counts.sa0 += c.mask.count_sa0();
    counts.sa1 += c.mask.count_sa1();
  }
  return counts;
}

std::string entry_grid_string(const fault::FaultVectorEntry& entry) {
  const fault::FaultMask& mask =
      entry.components.empty() ? entry.mask : entry.components.front().mask;
  return std::to_string(mask.rows()) + "x" + std::to_string(mask.cols());
}

}  // namespace

int cmd_generate(const Args& args) {
  args.require_known({"out", "layers", "kind", "fault", "rate", "grid",
                      "faulty-rows", "faulty-cols", "period", "sa1-fraction",
                      "granularity", "seed", "distribution", "clusters",
                      "cluster-radius"});
  const std::string out_path = args.get_string("out");
  FLIM_REQUIRE(!out_path.empty(), "--out is required");
  const auto layers = args.get_list("layers");
  FLIM_REQUIRE(!layers.empty(), "--layers is required (comma-separated)");

  const lim::CrossbarGeometry grid = parse_grid(args, "grid", "64x64");
  const std::string fault_expr = args.get_string("fault");

  fault::FaultSpec spec;
  spec.injection_rate = args.get_double("rate", 0.0);
  spec.faulty_rows = args.get_int("faulty-rows", 0);
  spec.faulty_cols = args.get_int("faulty-cols", 0);
  spec.dynamic_period = static_cast<int>(args.get_int("period", 0));
  spec.stuck_at_one_fraction = args.get_double("sa1-fraction", 0.5);
  spec.granularity = parse_granularity(args.get_string("granularity", "output"));
  spec.distribution =
      parse_distribution(args.get_string("distribution", "uniform"));
  spec.cluster_count = static_cast<int>(args.get_int("clusters", 0));
  spec.cluster_radius = args.get_double("cluster-radius", 2.0);

  core::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  fault::FaultVectorFile file;
  if (!fault_expr.empty()) {
    // Composable path: realize the parsed model stack per layer. Every
    // single-kind flag is rejected (not silently ignored): their meanings
    // live in the model parameters now.
    FLIM_REQUIRE(!args.has("kind") && !args.has("rate") &&
                     !args.has("faulty-rows") && !args.has("faulty-cols") &&
                     !args.has("period") && !args.has("sa1-fraction"),
                 "--fault replaces --kind/--rate/--faulty-rows/--faulty-cols/"
                 "--period/--sa1-fraction; express them as model parameters, "
                 "e.g. --fault 'stuckat(rate=0.05,sa1=0.7,rows=2)' or "
                 "'dynamic(rate=0.05,period=4)'");
    const fault::FaultStack stack = fault::parse_fault_expr(fault_expr);
    stack.validate_granularity(spec.granularity);
    fault::RealizeContext ctx;
    ctx.grid = grid;
    ctx.distribution = spec.distribution;
    ctx.cluster_count = spec.cluster_count;
    ctx.cluster_radius = spec.cluster_radius;
    for (const auto& layer : layers) {
      file.add(stack.realize_entry(layer, spec.granularity, ctx, rng));
    }
    std::cout << "fault stack: " << stack.canonical() << "\n";
  } else {
    spec.kind = parse_kind(args.get_string("kind", "bitflip"));
    validate(spec);
    fault::FaultGenerator generator(grid);
    for (const auto& layer : layers) {
      fault::FaultVectorEntry entry;
      entry.layer_name = layer;
      entry.kind = spec.kind;
      entry.granularity = spec.granularity;
      entry.dynamic_period = spec.dynamic_period;
      entry.mask = generator.generate(spec, rng);
      file.add(std::move(entry));
    }
  }
  for (const auto& entry : file.entries()) {
    const EntryCounts counts = count_entry(entry);
    std::cout << entry.layer_name << ": " << counts.flips << " flips, "
              << counts.sa0 << " SA0, " << counts.sa1 << " SA1 on "
              << grid.rows << "x" << grid.cols << "\n";
  }
  file.save(out_path);
  std::cout << "wrote " << file.size() << " fault vectors to " << out_path
            << "\n";
  return 0;
}

int cmd_inspect(const Args& args) {
  args.require_known({"file"});
  const std::string path = args.get_string("file");
  FLIM_REQUIRE(!path.empty(), "--file is required");
  const fault::FaultVectorFile file = fault::FaultVectorFile::load(path);
  core::Table table({"layer", "fault", "granularity", "period", "grid",
                     "flips", "sa0", "sa1"});
  for (const auto& e : file.entries()) {
    const EntryCounts counts = count_entry(e);
    table.add(e.layer_name, e.describe(), to_string(e.granularity),
              e.dynamic_period, entry_grid_string(e), counts.flips,
              counts.sa0, counts.sa1);
  }
  core::print_table(std::cout, path, table);
  return 0;
}

int cmd_faults(const Args& args) {
  args.require_known({"describe", "expr"});
  const fault::FaultRegistry& registry = fault::FaultRegistry::instance();

  const std::string expr = args.get_string("expr");
  if (!expr.empty()) {
    const fault::FaultStack stack = fault::parse_fault_expr(expr);
    std::cout << "canonical: " << stack.canonical() << "\n";
    core::Table table({"model", "params", "time"});
    for (const fault::FaultStackItem& item : stack.items()) {
      std::string params;
      for (const auto& [key, value] : item.params.values()) {
        if (!params.empty()) params += ",";
        params += key + "=" + core::format_double_shortest(value);
      }
      if (params.empty()) params = "(defaults)";
      table.add(item.model->info().name, params,
                item.model->info().time_semantics);
    }
    core::print_table(std::cout, "fault stack (" +
                                     std::to_string(stack.items().size()) +
                                     " components)",
                      table);
    return 0;
  }

  const std::string name = args.get_string("describe");
  if (!name.empty()) {
    const fault::FaultModel& model = registry.get(name);
    const fault::ModelInfo& meta = model.info();
    std::cout << meta.name << ": " << meta.summary << "\n"
              << "time semantics: " << meta.time_semantics << "\n"
              << "granularity:    " << (meta.output_element ? "output" : "")
              << (meta.output_element && meta.product_term ? "|" : "")
              << (meta.product_term ? "term" : "") << "\n"
              << "device engine:  " << (meta.device_backend ? "yes" : "no")
              << "\n";
    core::Table table({"param", "default", "range", "doc"});
    for (const fault::ParamInfo& p : meta.params) {
      const std::string lo = std::isinf(p.min_value)
                                 ? std::string("-inf")
                                 : core::format_double_shortest(p.min_value);
      const std::string hi = std::isinf(p.max_value)
                                 ? std::string("inf")
                                 : core::format_double_shortest(p.max_value);
      table.add(p.name, core::format_double_shortest(p.default_value),
                "[" + lo + ", " + hi + "]" + (p.integer ? " int" : ""),
                p.doc);
    }
    core::print_table(std::cout, "parameters of " + meta.name, table);
    return 0;
  }

  core::Table table({"model", "params", "time", "granularity", "device"});
  for (const fault::FaultModel* model : registry.models()) {
    const fault::ModelInfo& meta = model->info();
    std::string params;
    for (const fault::ParamInfo& p : meta.params) {
      if (!params.empty()) params += ",";
      params += p.name;
    }
    std::string granularity;
    if (meta.output_element) granularity += "output";
    if (meta.product_term) granularity += granularity.empty() ? "term" : "|term";
    table.add(meta.name, params, meta.time_semantics, granularity,
              meta.device_backend ? "yes" : "no");
  }
  core::print_table(std::cout, "registered fault models", table);
  std::cout << "describe one with: flim_cli faults --describe MODEL\n"
            << "compose with '+': flim_cli campaign --fault "
               "\"stuckat(rate=5e-4,sa1=0.7)+drift(tau=2000)\"\n";
  return 0;
}

int cmd_train(const Args& args) {
  args.require_known({"model", "epochs", "samples", "weights-dir", "retrain",
                      "verbose", "images"});
  exp::WorkloadSpec spec = workload_from(args);
  spec.measure_clean_accuracy = true;
  const exp::Workload loaded = exp::load_workload(spec);
  std::cout << loaded.model.name() << ": held-out accuracy "
            << core::format_double(loaded.clean_accuracy * 100.0, 2) << "% on "
            << loaded.eval_batch.labels.size() << " images\n";
  return 0;
}

int cmd_evaluate(const Args& args) {
  args.require_known({"model", "vectors", "images", "weights-dir", "epochs",
                      "samples", "retrain", "verbose", "engine"});
  const std::string vectors_path = args.get_string("vectors");
  FLIM_REQUIRE(!vectors_path.empty(), "--vectors is required");
  exp::EngineSpec engine_spec;
  engine_spec.backend = exp::parse_backend(args.get_string("engine", "flim"));
  FLIM_REQUIRE(engine_spec.backend != exp::Backend::kReference,
               "--engine reference would ignore the vectors; pick "
               "flim|device|tmr");
  const exp::Workload loaded = exp::load_workload(workload_from(args));
  const fault::FaultVectorFile vectors =
      fault::FaultVectorFile::load(vectors_path);

  exp::EngineSpec clean_spec;
  clean_spec.backend = exp::Backend::kReference;
  const auto clean = exp::make_engine(clean_spec);
  const auto faulty = exp::make_engine(engine_spec, vectors);
  // One compiled plan + one arena serves both evaluations (bit-identical to
  // the legacy Model::evaluate path).
  const bnn::ForwardPlan plan(loaded.model, loaded.eval_batch.images.shape());
  tensor::Workspace ws;
  const double clean_acc = plan.evaluate(loaded.eval_batch, ws, *clean);
  const double faulty_acc = plan.evaluate(loaded.eval_batch, ws, *faulty);
  core::Table table({"configuration", "accuracy_%"});
  table.add("clean", core::format_double(clean_acc * 100.0, 2));
  table.add("faulty (" + vectors_path + ")",
            core::format_double(faulty_acc * 100.0, 2));
  core::print_table(std::cout, loaded.model.name(), table);
  return 0;
}

namespace {

/// Parses one full --shard component; trailing garbage ("1/2x", "1/2/4")
/// must fail here, not silently run the wrong grid partition and poison a
/// multi-machine campaign at merge time.
int parse_shard_component(const std::string& token) {
  std::size_t consumed = 0;
  int value = -1;
  try {
    value = std::stoi(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  FLIM_REQUIRE(!token.empty() && consumed == token.size(),
               "--shard expects I/N (0-based integers), e.g. 0/4; got '" +
                   token + "'");
  return value;
}

/// Parses "--shard I/N" (0-based shard I of N) into store options.
void parse_shard(const Args& args, exp::StoreOptions& store) {
  const std::string shard = args.get_string("shard");
  if (shard.empty()) return;
  const auto slash = shard.find('/');
  FLIM_REQUIRE(slash != std::string::npos,
               "--shard expects I/N (0-based), e.g. 0/4");
  store.shard_index = parse_shard_component(shard.substr(0, slash));
  store.shard_count = parse_shard_component(shard.substr(slash + 1));
  FLIM_REQUIRE(store.shard_count >= 1 && store.shard_index >= 0 &&
                   store.shard_index < store.shard_count,
               "--shard index must be in [0, N)");
}

/// Prints `result` (or its shard slice) and honors --csv / --json. Both the
/// single-process campaign and `merge` funnel through ScenarioResult::
/// to_table(), which is what makes their outputs byte-identical.
void emit_scenario_result(const Args& args, const std::string& title,
                          const exp::ScenarioResult& result) {
  const core::Table table = result.to_table();
  core::print_table(std::cout, title, table);
  const std::string csv = args.get_string("csv");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
  const std::string json = args.get_string("json");
  if (!json.empty()) {
    table.write_json(json);
    std::cout << "wrote " << json << "\n";
  }
}

/// Flags that feed the ScenarioSpec every campaign subcommand shares: the
/// coordinator, workers, and the classic single-process run must all build
/// the exact same spec, or the fingerprint handshake rejects the fleet.
std::set<std::string> campaign_spec_flags(
    std::initializer_list<const char*> extra) {
  std::set<std::string> flags = {"model",       "kind",    "fault",
                                 "rates",       "reps",    "granularity",
                                 "grid",        "images",  "weights-dir",
                                 "epochs",      "samples", "retrain",
                                 "verbose",     "seed",    "engine",
                                 "jobs",        "ecc",     "ecc-word-bits",
                                 "ecc-interleave"};
  for (const char* flag : extra) flags.insert(flag);
  return flags;
}

/// A campaign spec plus the raw --fault text (for report titles).
struct BuiltCampaign {
  exp::ScenarioSpec spec;
  std::string fault_expr;
};

/// Maps the shared campaign flags onto a ScenarioSpec (the single funnel
/// behind `campaign`, `campaign serve`, and `campaign work`).
BuiltCampaign campaign_spec_from(const Args& args) {
  auto rates = args.get_double_list("rates");
  if (rates.empty()) rates = {0.0, 0.05, 0.10, 0.20};

  BuiltCampaign built;
  exp::ScenarioSpec& spec = built.spec;
  spec.name = "campaign";
  spec.workload = workload_from(args);
  spec.engine.backend = exp::parse_backend(args.get_string("engine", "flim"));
  FLIM_REQUIRE(spec.engine.backend != exp::Backend::kReference,
               "--engine reference would inject nothing; pick flim|device|tmr");
  spec.fault.granularity =
      parse_granularity(args.get_string("granularity", "output"));
  spec.grid = parse_grid(args, "grid", "64x64");
  built.fault_expr = args.get_string("fault");
  if (!built.fault_expr.empty()) {
    FLIM_REQUIRE(!args.has("kind"),
                 "--fault replaces --kind; drop one of them");
    if (built.fault_expr.find('@') != std::string::npos) {
      // Expand the '@' placeholder with each swept rate: one composed
      // stack per grid point, e.g. "drift(rate=@)" x {0.01, 0.05}.
      spec.axes = {exp::fault_expr_axis(built.fault_expr, rates)};
    } else {
      FLIM_REQUIRE(!args.has("rates"),
                   "--rates with --fault needs a '@' placeholder in the "
                   "expression (e.g. --fault 'bitflip(rate=@)'); without "
                   "one the stack is a single point");
      spec.fault_expr = fault::canonical_fault_expr(built.fault_expr);
    }
  } else {
    spec.fault.kind = parse_kind(args.get_string("kind", "bitflip"));
    spec.axes = {exp::rate_axis(rates)};
  }
  // ECC residual scrub: "none"/"" keeps the historical no-scrub behavior
  // (and the historical store fingerprints); an expression scrubs every
  // realized mask down to the codec's residual before injection.
  const std::string ecc = args.get_string("ecc");
  if (!ecc.empty() && ecc != "none") {
    spec.ecc_expr = reliability::ecc::canonical_codec_expr(ecc);
  }
  spec.ecc_word_bits = static_cast<int>(args.get_int("ecc-word-bits", 64));
  spec.ecc_interleave = static_cast<int>(args.get_int("ecc-interleave", 1));
  spec.repetitions = static_cast<int>(args.get_int("reps", 10));
  spec.master_seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  spec.jobs = static_cast<int>(args.get_int("jobs", 1));
  return built;
}

/// Report title for a campaign result (shared by classic and fleet runs).
std::string campaign_title(const BuiltCampaign& built,
                           const std::string& model_name) {
  std::string title = model_name + " / ";
  if (!built.fault_expr.empty()) {
    title += built.spec.fault_expr.empty() ? "fault-expression sweep"
                                           : built.spec.fault_expr;
  } else {
    title += to_string(built.spec.fault.kind) + " sweep";
  }
  if (built.spec.engine.backend != exp::Backend::kFlim) {
    title += " (" + exp::to_string(built.spec.engine.backend) + ")";
  }
  return title;
}

/// `campaign serve`: coordinate a worker fleet until the grid is complete.
int cmd_campaign_serve(const Args& args) {
  args.require_known(
      campaign_spec_flags({"shards", "host", "port", "port-file",
                           "lease-ttl-ms", "heartbeat-ms", "wait-retry-ms",
                           "work-dir", "csv", "json"}),
      1);
  const BuiltCampaign built = campaign_spec_from(args);

  fleet::CoordinatorOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(args.get_int("port", 7641));
  options.shard_count = static_cast<int>(args.get_int("shards", 2));
  options.lease_ttl_ms = args.get_int("lease-ttl-ms", 30000);
  options.heartbeat_ms = args.get_int("heartbeat-ms", 5000);
  options.wait_retry_ms = args.get_int("wait-retry-ms", 500);
  options.work_dir = args.get_string("work-dir", "fleet-work");

  fleet::Coordinator coordinator(built.spec, options);
  coordinator.start();
  write_port_file(args.get_string("port-file"), coordinator.port());
  std::cout << "fleet: serving " << options.shard_count << " shard(s) on "
            << options.host << ":" << coordinator.port() << " (work dir "
            << options.work_dir << ")\n"
            << std::flush;
  const exp::ScenarioResult result = coordinator.wait();
  coordinator.stop();
  emit_scenario_result(args,
                       campaign_title(built, built.spec.workload.model) +
                           " [fleet, " + std::to_string(options.shard_count) +
                           " shards]",
                       result);
  return 0;
}

/// `campaign work`: lease and run shards until the coordinator says done.
int cmd_campaign_work(const Args& args) {
  args.require_known(
      campaign_spec_flags({"host", "port", "name", "work-dir", "heartbeat-ms",
                           "io-timeout-ms", "connect-attempts", "max-points",
                           "no-fsync"}),
      1);
  const BuiltCampaign built = campaign_spec_from(args);

  fleet::WorkerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(args.get_int("port", 7641));
  options.name = args.get_string("name", "worker");
  options.work_dir = args.get_string("work-dir", "fleet-work");
  options.heartbeat_ms = args.get_int("heartbeat-ms", 0);
  options.io_timeout_ms = args.get_int("io-timeout-ms", 30000);
  options.max_connect_attempts =
      static_cast<int>(args.get_int("connect-attempts", 8));
  options.jobs = built.spec.jobs;
  options.fsync_each_point = !args.has("no-fsync");
  options.max_points =
      static_cast<std::size_t>(args.get_int("max-points", 0));

  const fleet::WorkerReport report = run_worker(built.spec, options);
  core::Table table({"metric", "value"});
  table.add("shards_completed", report.shards_completed);
  table.add("points_evaluated", report.points_evaluated);
  table.add("leases_granted", report.leases_granted);
  table.add("leases_lost", report.leases_lost);
  table.add("saw_done", report.saw_done ? "yes" : "no");
  core::print_table(std::cout, "fleet worker " + options.name, table);
  // A worker that stopped without campaign completion (crash hook) exits
  // nonzero so scripts notice.
  return report.saw_done ? 0 : 3;
}

/// `campaign status`: inspect run files without touching them.
int cmd_campaign_status(const Args& args) {
  args.require_known({}, std::numeric_limits<std::size_t>::max());
  const std::vector<std::string>& pos = args.positionals();
  FLIM_REQUIRE(pos.size() >= 2,
               "usage: flim_cli campaign status <run-file>...");
  core::Table table({"file", "name", "backend", "fingerprint", "shard",
                     "points", "state", "torn_bytes"});
  bool all_complete = true;
  for (std::size_t i = 1; i < pos.size(); ++i) {
    const std::string& path = pos[i];
    try {
      const exp::RunFile run = exp::RunFile::load(path);
      const auto file_bytes =
          static_cast<std::size_t>(std::filesystem::file_size(path));
      const std::size_t torn = file_bytes - run.valid_prefix_bytes;
      const bool complete = run.complete();
      if (!complete) all_complete = false;
      table.add(path, run.header.name, run.header.backend,
                run.header.fingerprint,
                std::to_string(run.header.shard_index) + "/" +
                    std::to_string(run.header.shard_count),
                std::to_string(run.points.size()) + "/" +
                    std::to_string(run.owned_points()),
                complete ? "complete" : "partial", torn);
    } catch (const std::exception&) {
      all_complete = false;
      table.add(path, "-", "-", "-", "-", "-", "unreadable", "-");
    }
  }
  core::print_table(std::cout, "campaign status", table);
  // Scriptable: 0 only when every file is a complete, healthy shard.
  return all_complete ? 0 : 2;
}

}  // namespace

int cmd_campaign(const Args& args) {
  if (!args.positionals().empty()) {
    const std::string& sub = args.positionals().front();
    if (sub == "serve") return cmd_campaign_serve(args);
    if (sub == "work") return cmd_campaign_work(args);
    if (sub == "status") return cmd_campaign_status(args);
    FLIM_REQUIRE(false, "unknown campaign subcommand: " + sub +
                            " (expected serve|work|status)");
  }
  args.require_known(
      campaign_spec_flags({"csv", "json", "store", "resume", "shard"}));
  const BuiltCampaign built = campaign_spec_from(args);
  const exp::ScenarioSpec& spec = built.spec;

  exp::StoreOptions store;
  store.resume_from = args.get_string("resume");
  // --resume alone continues its own file; --store redirects/creates one.
  store.store_path = args.get_string("store", store.resume_from);
  // --store alone also resumes in place: rerunning the same command after a
  // kill must continue the checkpoint, never truncate it. (A different spec
  // pointed at the same file fails the fingerprint check instead of
  // clobbering it; delete the file to really start over.)
  if (store.resume_from.empty()) store.resume_from = store.store_path;
  parse_shard(args, store);
  FLIM_REQUIRE(store.shard_count == 1 || !store.store_path.empty(),
               "--shard needs --store so the slice can be merged later");

  exp::ScenarioRunner runner(spec);
  const exp::Workload loaded = exp::load_workload(spec.workload);
  const exp::ScenarioResult result = runner.run(loaded, store);

  std::string title = campaign_title(built, loaded.model.name());
  if (store.shard_count > 1) {
    title += " [shard " + std::to_string(store.shard_index) + "/" +
             std::to_string(store.shard_count) + "]";
  }
  emit_scenario_result(args, title, result);
  if (!store.store_path.empty()) {
    std::cout << "run file: " << store.store_path << " ("
              << result.points.size() << "/" << result.total_points
              << " points)\n";
  }
  return 0;
}

namespace {

/// SIGTERM/SIGINT flag of `flim_cli serve` (async-signal-safe: the handler
/// only stores; the serve loop polls).
std::atomic<bool> g_serve_stop{false};

void handle_serve_signal(int) { g_serve_stop.store(true); }

/// Maps the shared eval flags onto the canonical single-point spec (the
/// direct path; `--connect` sends the same fields over the wire instead).
exp::EvalPointSpec eval_spec_from(const Args& args) {
  exp::EvalPointSpec spec;
  spec.workload = workload_from(args);
  spec.engine.backend = exp::parse_backend(args.get_string("engine", "flim"));
  const std::string expr = args.get_string("fault");
  if (!expr.empty()) spec.fault_expr = fault::canonical_fault_expr(expr);
  spec.granularity =
      parse_granularity(args.get_string("granularity", "output"));
  spec.grid = parse_grid(args, "grid", "64x64");
  spec.repetitions = static_cast<int>(args.get_int("reps", 3));
  spec.master_seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  exp::validate(spec);
  return spec;
}

/// `eval --connect`: one request/reply exchange with a serve instance,
/// backing off on busy replies. Returns the payload line.
std::string eval_remote(const Args& args) {
  const std::string connect = args.get_string("connect");
  const auto colon = connect.rfind(':');
  FLIM_REQUIRE(colon != std::string::npos && colon + 1 < connect.size(),
               "--connect expects HOST:PORT, e.g. 127.0.0.1:7642");
  const std::string host = connect.substr(0, colon);
  const int port = static_cast<int>(std::stol(connect.substr(colon + 1)));

  fleet::EvalRequest req;
  req.model = args.get_string("model", "lenet");
  req.backend = args.get_string("engine", "flim");
  req.fault_expr = args.get_string("fault");
  req.granularity = args.get_string("granularity", "output");
  req.grid = args.get_string("grid", "64x64");
  req.repetitions = static_cast<int>(args.get_int("reps", 3));
  req.master_seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  req.deadline_ms = args.get_int("deadline-ms", -1);

  core::Rng rng(req.master_seed);
  core::BackoffPolicy policy;
  fleet::Socket socket = fleet::connect_with_retry(
      host, port, policy,
      static_cast<int>(args.get_int("connect-attempts", 8)), rng);
  fleet::LineChannel chan(std::move(socket));

  const std::int64_t io_timeout_ms = args.get_int("io-timeout-ms", 600000);
  const int busy_retries = static_cast<int>(args.get_int("busy-retries", 20));
  for (int attempt = 0;; ++attempt) {
    chan.send_line(fleet::encode_eval_request(req));
    const fleet::RecvResult recv = chan.recv_line(io_timeout_ms);
    if (recv.status != fleet::RecvStatus::kLine) {
      throw std::runtime_error(
          recv.status == fleet::RecvStatus::kEof
              ? "eval: server closed the connection"
              : "eval: timed out waiting for the server's reply");
    }
    const fleet::Message msg = fleet::parse_message(recv.line);
    if (msg.type == "busy") {
      FLIM_REQUIRE(attempt < busy_retries,
                   "server stayed busy through " +
                       std::to_string(busy_retries) + " retries");
      // The server's hint floors the shared backoff schedule.
      const auto hint =
          static_cast<std::int64_t>(core::json_number(msg.fields, "retry_ms"));
      core::sleep_ms(
          std::max(hint, core::backoff_delay_ms(policy, attempt, rng)));
      continue;
    }
    if (msg.type == "error") {
      throw std::runtime_error("eval: server error: " +
                               core::json_string(msg.fields, "what"));
    }
    FLIM_REQUIRE(msg.type == "eval_result",
                 "unexpected server reply type: " + msg.type);
    return fleet::decode_eval_result(msg);
  }
}

}  // namespace

int cmd_eval(const Args& args) {
  args.require_known({"connect", "model", "engine", "fault", "granularity",
                      "grid", "reps", "seed", "jobs", "out", "deadline-ms",
                      "busy-retries", "io-timeout-ms", "connect-attempts",
                      "images", "epochs", "samples", "weights-dir", "retrain",
                      "verbose"});
  std::string payload;
  if (args.has("connect")) {
    payload = eval_remote(args);
  } else {
    const exp::EvalPointSpec spec = eval_spec_from(args);
    const exp::Workload workload = exp::load_workload(spec.workload);
    const bnn::ForwardPlan plan(workload.model,
                                workload.eval_batch.images.shape());
    const int jobs = static_cast<int>(args.get_int("jobs", 1));
    FLIM_REQUIRE(jobs >= 1, "--jobs must be >= 1");
    std::optional<core::ThreadPool> pool;
    if (jobs > 1) pool.emplace(static_cast<std::size_t>(jobs));
    std::vector<tensor::Workspace> workspaces(pool ? pool->size() : 1);
    const core::Summary summary = exp::evaluate_eval_point(
        spec, workload, plan, workspaces, pool ? &*pool : nullptr);
    payload = exp::format_eval_payload(spec, summary);
  }
  std::cout << payload << "\n";
  const std::string out = args.get_string("out");
  if (!out.empty()) {
    std::ofstream file(out, std::ios::trunc);
    FLIM_REQUIRE(file.good(), "cannot write --out file: " + out);
    file << payload << "\n";
  }
  return 0;
}

int cmd_serve(const Args& args) {
  args.require_known({"host", "port", "port-file", "cache", "queue",
                      "batch-max", "jobs", "busy-retry-ms", "images",
                      "epochs", "samples", "weights-dir"});
  serve::ServerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(args.get_int("port", 0));
  options.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 8));
  options.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 64));
  options.batch_max = static_cast<std::size_t>(args.get_int("batch-max", 8));
  options.jobs = static_cast<int>(args.get_int("jobs", 1));
  options.busy_retry_ms = args.get_int("busy-retry-ms", 200);
  options.eval_images = args.get_int("images", 300);
  options.epochs = static_cast<int>(args.get_int("epochs", 3));
  options.train_samples = args.get_int("samples", 3000);
  if (args.has("weights-dir")) {
    options.weights_dir = args.get_string("weights-dir");
  }

  serve::EvalServer server(options);
  server.start();
  write_port_file(args.get_string("port-file"), server.port());
  std::cout << "serve: listening on " << options.host << ":" << server.port()
            << "\n"
            << std::flush;

  g_serve_stop.store(false);
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGINT, handle_serve_signal);
  while (!g_serve_stop.load()) core::sleep_ms(50);

  std::cout << "serve: draining\n" << std::flush;
  server.stop();
  std::cout << "serve: drained, exiting\n";
  return 0;
}

int cmd_merge(const Args& args) {
  args.require_known({"inputs", "csv", "json"});
  const std::vector<std::string> inputs = args.get_list("inputs");
  FLIM_REQUIRE(!inputs.empty(),
               "--inputs is required (comma-separated run files)");
  const exp::ScenarioResult result = exp::merge_run_files(inputs);
  emit_scenario_result(
      args,
      result.name + " (merged " + std::to_string(inputs.size()) +
          " run files, " + result.backend + ")",
      result);
  return 0;
}

namespace {

lim::DeviceFaultKind parse_device_kind(const std::string& s) {
  for (const lim::DeviceFaultKind kind : lim::all_device_fault_kinds()) {
    std::string name = lim::to_string(kind);
    // Accept the report name with the dashes removed ("stuck-at-0" can be
    // typed as stuckat0).
    std::string compact;
    for (const char c : name) {
      if (c != '-') compact.push_back(c);
    }
    if (s == name || s == compact) return kind;
  }
  FLIM_REQUIRE(false, "unknown device fault kind: " + s);
  return lim::DeviceFaultKind::kNone;
}

std::vector<reliability::MarchTest> parse_algorithms(const std::string& s) {
  if (s == "all") return reliability::standard_march_tests();
  if (s == "mats+") return {reliability::mats_plus()};
  if (s == "marchx") return {reliability::march_x()};
  if (s == "marchc-") return {reliability::march_cminus()};
  if (s == "raw1") return {reliability::march_raw1()};
  FLIM_REQUIRE(false, "unknown algorithm: " + s +
                          " (expected mats+|marchx|marchc-|raw1|all)");
  return {};
}

}  // namespace

int cmd_march(const Args& args) {
  args.require_known({"algorithm", "grid", "inject", "at", "severity",
                      "coverage", "samples", "seed"});
  const auto algorithms = parse_algorithms(args.get_string("algorithm", "all"));

  const lim::CrossbarGeometry march_grid = parse_grid(args, "grid", "16x16");
  lim::CrossbarConfig array_cfg;
  array_cfg.rows = march_grid.rows;
  array_cfg.cols = march_grid.cols;

  if (args.has("coverage")) {
    reliability::CoverageConfig cfg;
    cfg.crossbar = array_cfg;
    cfg.samples_per_kind = static_cast<int>(args.get_int("samples", 16));
    cfg.severity = args.get_double("severity", 1.0);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::vector<std::string> columns{"fault_kind"};
    std::vector<std::vector<reliability::CoverageRow>> per_test;
    for (const auto& test : algorithms) {
      columns.push_back(test.name + "_%");
      per_test.push_back(reliability::evaluate_coverage(test, cfg));
    }
    core::Table coverage(columns);
    const auto& kinds = lim::all_device_fault_kinds();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<std::string> row{lim::to_string(kinds[k])};
      for (const auto& rows : per_test) {
        row.push_back(core::format_double(rows[k].coverage() * 100.0, 1));
      }
      coverage.add_row(std::move(row));
    }
    core::print_table(std::cout,
                      "March coverage @ severity " +
                          core::format_double(cfg.severity, 2),
                      coverage);
    return 0;
  }

  // Single-run mode: optional planted fault, then pass/fail per algorithm.
  const std::string inject = args.get_string("inject");
  int failing = 0;
  for (const auto& test : algorithms) {
    lim::CrossbarArray array(array_cfg);
    if (!inject.empty()) {
      const auto at = args.get_string("at", "0,0");
      const auto comma = at.find(',');
      FLIM_REQUIRE(comma != std::string::npos, "--at expects R,C");
      array.inject_device_fault(std::stoll(at.substr(0, comma)),
                                std::stoll(at.substr(comma + 1)),
                                parse_device_kind(inject),
                                args.get_double("severity", 1.0));
    }
    const reliability::MarchResult result =
        reliability::run_march(test, array);
    std::cout << test.name << " " << test.notation() << ": "
              << (result.detected() ? "FAIL" : "pass") << " ("
              << result.ops_executed << " ops)\n";
    for (std::size_t i = 0; i < result.failures.size() && i < 4; ++i) {
      const auto& f = result.failures[i];
      std::cout << "  cell (" << f.row << "," << f.col << ") element "
                << f.element_index << " op " << f.op_index << ": expected "
                << f.expected << ", got " << f.got << "\n";
    }
    if (result.detected()) ++failing;
  }
  // Exit code mirrors a test instrument: nonzero when a defect was found.
  return failing > 0 ? 2 : 0;
}

int cmd_scrub(const Args& args) {
  args.require_known({"in", "out", "word-bits", "interleave", "codec"});
  const std::string in_path = args.get_string("in");
  const std::string out_path = args.get_string("out");
  FLIM_REQUIRE(!in_path.empty(), "--in is required");
  FLIM_REQUIRE(!out_path.empty(), "--out is required");

  fault::ResidualOptions options;
  options.word_bits = static_cast<int>(args.get_int("word-bits", 64));
  options.interleave = static_cast<int>(args.get_int("interleave", 1));
  // Default stays SEC-DED (radius 1); --codec widens the radius to the
  // configured code's correction guarantee (e.g. 2 for bch(t=2)).
  const std::string codec_expr = args.get_string("codec", "secded");
  const reliability::ecc::Codec& codec =
      reliability::ecc::CodecRegistry::instance().configure(codec_expr);
  options.correct_per_word = codec.capability().correct_guarantee;

  const fault::FaultVectorFile input = fault::FaultVectorFile::load(in_path);
  fault::FaultVectorFile output;
  core::Table table({"layer", "words", "corrected", "uncorrectable",
                     "faulty_bits_before", "faulty_bits_after"});
  for (const auto& entry : input.entries()) {
    fault::ResidualStats stats;
    fault::FaultVectorEntry scrubbed = entry;
    fault::apply_entry_residual(scrubbed, options, &stats);
    table.add(entry.layer_name, stats.words, stats.corrected_words,
              stats.uncorrectable_words, stats.faulty_bits_before,
              stats.faulty_bits_after);
    output.add(std::move(scrubbed));
  }
  output.save(out_path);
  core::print_table(
      std::cout,
      codec.canonical() + " scrub (w" + std::to_string(options.word_bits) +
          ", i" + std::to_string(options.interleave) + ")",
      table);
  std::cout << "wrote residual vectors to " << out_path << "\n";
  return 0;
}

namespace {

/// ';'-separated expression list. Codec and fault expressions contain
/// commas ("bch(d=64,t=2)"), so the generic comma-list accessor cannot
/// split them.
std::vector<std::string> split_exprs(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ';') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// Prints `table` and honors --csv / --json (the shared Table emission
/// path, same contract as emit_scenario_result).
void emit_table(const Args& args, const std::string& title,
                const core::Table& table) {
  core::print_table(std::cout, title, table);
  const std::string csv = args.get_string("csv");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
  const std::string json = args.get_string("json");
  if (!json.empty()) {
    table.write_json(json);
    std::cout << "wrote " << json << "\n";
  }
}

/// `ecc list` (and bare `ecc`): the registered code families, with the
/// capability/cost summary of each family's default configuration.
int cmd_ecc_list() {
  const reliability::ecc::CodecRegistry& registry =
      reliability::ecc::CodecRegistry::instance();
  core::Table table({"family", "params", "default", "n", "d", "correct",
                     "detect", "overhead_%", "summary"});
  for (const reliability::ecc::CodecFamily* family : registry.families()) {
    const reliability::ecc::CodecInfo& meta = family->info();
    std::string params;
    for (const reliability::ecc::ParamInfo& p : meta.params) {
      if (!params.empty()) params += ",";
      params += p.name;
    }
    if (params.empty()) params = "-";
    const reliability::ecc::Codec& codec = registry.configure(meta.name);
    const reliability::ecc::Capability& cap = codec.capability();
    table.add(meta.name, params, codec.canonical(), cap.code_bits,
              cap.data_bits, cap.correct_guarantee, cap.detect_guarantee,
              core::format_double(codec.cost().parity_overhead() * 100.0, 1),
              meta.summary);
  }
  core::print_table(std::cout, "registered ECC codec families", table);
  std::cout << "describe one with: flim_cli ecc --describe FAMILY\n"
            << "configure with an expression, e.g. \"bch(d=64,t=2)\" "
               "(no '+' composition: one code per codeword)\n";
  return 0;
}

/// `ecc --describe FAMILY`: parameter schema plus the default
/// configuration's capability and in-crossbar cost.
int cmd_ecc_describe(const std::string& name) {
  const reliability::ecc::CodecRegistry& registry =
      reliability::ecc::CodecRegistry::instance();
  const reliability::ecc::CodecFamily& family = registry.get(name);
  const reliability::ecc::CodecInfo& meta = family.info();
  std::cout << meta.name << ": " << meta.summary << "\n";
  core::Table params({"param", "default", "range", "doc"});
  for (const reliability::ecc::ParamInfo& p : meta.params) {
    const std::string lo = std::isinf(p.min_value)
                               ? std::string("-inf")
                               : core::format_double_shortest(p.min_value);
    const std::string hi = std::isinf(p.max_value)
                               ? std::string("inf")
                               : core::format_double_shortest(p.max_value);
    params.add(p.name, core::format_double_shortest(p.default_value),
               "[" + lo + ", " + hi + "]" + (p.integer ? " int" : ""), p.doc);
  }
  core::print_table(std::cout, "parameters of " + meta.name, params);

  const reliability::ecc::Codec& codec = registry.configure(name);
  const reliability::ecc::Capability& cap = codec.capability();
  const reliability::ecc::CostModel cost = codec.cost();
  core::Table caps({"metric", "value"});
  caps.add("canonical", codec.canonical());
  caps.add("codeword bits (n)", cap.code_bits);
  caps.add("data bits (d)", cap.data_bits);
  caps.add("parity bits (k)", cap.parity_bits);
  caps.add("corrects (errors/word)", cap.correct_guarantee);
  caps.add("detects (errors/word)", cap.detect_guarantee);
  caps.add("parity overhead %",
           core::format_double(cost.parity_overhead() * 100.0, 2));
  caps.add("extra columns @ 64-col crossbar", cost.extra_columns(64));
  caps.add("syndrome ops / word", cost.syndrome_ops_per_word);
  core::print_table(std::cout, "default configuration " + codec.canonical(),
                    caps);
  return 0;
}

/// `ecc exhaust`: walk EVERY error placement of the requested weights (or
/// burst windows) through a codec; durable, sharded, resumable.
int cmd_ecc_exhaust(const Args& args) {
  args.require_known({"codec", "weights", "burst", "chunk", "data-seed",
                      "store", "shard", "jobs", "csv", "json"},
                     1);
  reliability::ecc::ExhaustSpec spec;
  spec.codec_expr = args.get_string("codec", "secded");
  const std::vector<double> weights = args.get_double_list("weights");
  if (!weights.empty()) {
    spec.weights.clear();
    for (const double w : weights) spec.weights.push_back(static_cast<int>(w));
  }
  spec.burst = args.has("burst");
  spec.chunk = static_cast<std::uint64_t>(args.get_int("chunk", 4096));
  spec.data_seed = static_cast<std::uint64_t>(args.get_int("data-seed", 2023));

  exp::StoreOptions shard;
  parse_shard(args, shard);
  const std::string store = args.get_string("store");
  FLIM_REQUIRE(shard.shard_count == 1 || !store.empty(),
               "--shard needs --store so the slices can be merged later");

  const reliability::ecc::ExhaustResult result = reliability::ecc::run_exhaust(
      spec, store, shard.shard_index, shard.shard_count,
      static_cast<int>(args.get_int("jobs", 0)));

  std::string title = result.codec_expr +
                      (result.burst ? " burst" : " exhaustive") +
                      " enumeration (n=" + std::to_string(result.code_bits) +
                      ")";
  if (shard.shard_count > 1) {
    title += " [shard " + std::to_string(shard.shard_index) + "/" +
             std::to_string(shard.shard_count) + "]";
  }
  emit_table(args, title, result.to_table());
  if (!store.empty()) std::cout << "exhaust store: " << store << "\n";
  return 0;
}

/// `ecc merge`: fold shard exhaust stores into the complete enumeration.
int cmd_ecc_merge(const Args& args) {
  args.require_known({"inputs", "csv", "json"}, 1);
  const std::vector<std::string> inputs = args.get_list("inputs");
  FLIM_REQUIRE(!inputs.empty(),
               "--inputs is required (comma-separated exhaust stores)");
  const reliability::ecc::ExhaustResult result =
      reliability::ecc::merge_exhaust_files(inputs);
  emit_table(args,
             result.codec_expr + (result.burst ? " burst" : " exhaustive") +
                 " enumeration (merged " + std::to_string(inputs.size()) +
                 " shard files)",
             result.to_table());
  return 0;
}

/// `ecc pareto`: ECC-method x fault-expression sweep over a real workload --
/// accuracy retained against the parity/column/cycle overhead each codec
/// pays for it. Rides the scenario runner, so the codec axis, residual
/// scrub, and repetition protocol are exactly the campaign path's.
int cmd_ecc_pareto(const Args& args) {
  args.require_known({"model", "images", "epochs", "samples", "weights-dir",
                      "retrain", "verbose", "faults", "codecs", "engine",
                      "granularity", "grid", "reps", "seed", "jobs",
                      "word-bits", "interleave", "csv", "json"},
                     1);
  exp::ScenarioSpec spec;
  spec.name = "ecc-pareto";
  spec.workload = workload_from(args);
  spec.workload.measure_clean_accuracy = true;
  spec.engine.backend = exp::parse_backend(args.get_string("engine", "flim"));
  FLIM_REQUIRE(spec.engine.backend != exp::Backend::kReference,
               "--engine reference would inject nothing; pick flim|device|tmr");
  spec.fault.granularity =
      parse_granularity(args.get_string("granularity", "output"));
  spec.grid = parse_grid(args, "grid", "64x64");
  const std::vector<std::string> faults = split_exprs(args.get_string(
      "faults", "stuckat(rate=0.002,sa1=0.7);stuckat(rate=0.01,sa1=0.7)"));
  const std::vector<std::string> codecs = split_exprs(
      args.get_string("codecs", "none;secded;bch(d=64,t=2)"));
  FLIM_REQUIRE(!faults.empty(), "--faults needs >= 1 expression");
  FLIM_REQUIRE(!codecs.empty(), "--codecs needs >= 1 expression");
  spec.axes = {exp::fault_expr_axis(faults), exp::ecc_codec_axis(codecs)};
  spec.ecc_word_bits = static_cast<int>(args.get_int("word-bits", 64));
  spec.ecc_interleave = static_cast<int>(args.get_int("interleave", 1));
  spec.repetitions = static_cast<int>(args.get_int("reps", 3));
  spec.master_seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  spec.jobs = static_cast<int>(args.get_int("jobs", 1));

  exp::ScenarioRunner runner(spec);
  const exp::Workload loaded = exp::load_workload(spec.workload);
  const exp::ScenarioResult result = runner.run(loaded, exp::StoreOptions{});

  // The codec's geometric cost rides along each row so the CSV alone holds
  // the Pareto frontier: accuracy retained (y) vs overhead (x).
  const std::int64_t cells = spec.grid.rows * spec.grid.cols;
  core::Table table({"fault", "ecc", "accuracy_%", "retained_%",
                     "parity_overhead_%", "extra_cols", "scrub_ops"});
  for (const exp::ScenarioPoint& point : result.points) {
    const std::string& ecc_label = point.labels[1];
    double overhead = 0.0;
    std::int64_t extra_cols = 0;
    std::int64_t scrub_ops = 0;
    if (ecc_label != "none") {
      const reliability::ecc::CostModel cost =
          reliability::ecc::CodecRegistry::instance()
              .configure(ecc_label)
              .cost();
      overhead = cost.parity_overhead() * 100.0;
      extra_cols = cost.extra_columns(spec.grid.cols);
      scrub_ops = cost.scrub_cycles(cells);
    }
    const double retained = result.clean_accuracy > 0.0
                                ? point.metric.mean / result.clean_accuracy
                                : 0.0;
    table.add(point.labels[0], ecc_label,
              core::format_double(point.metric.mean * 100.0, 2),
              core::format_double(retained * 100.0, 2),
              core::format_double(overhead, 2), extra_cols, scrub_ops);
  }
  std::cout << "clean accuracy: "
            << core::format_double(result.clean_accuracy * 100.0, 2) << "%\n";
  emit_table(args,
             loaded.model.name() + " ECC Pareto (" +
                 exp::to_string(spec.engine.backend) + ", w" +
                 std::to_string(spec.ecc_word_bits) + ", i" +
                 std::to_string(spec.ecc_interleave) + ")",
             table);
  return 0;
}

}  // namespace

int cmd_ecc(const Args& args) {
  if (args.has("describe")) {
    args.require_known({"describe"}, 1);
    return cmd_ecc_describe(args.get_string("describe"));
  }
  if (args.positionals().empty()) return cmd_ecc_list();
  const std::string& sub = args.positionals().front();
  if (sub == "list") {
    args.require_known({}, 1);
    return cmd_ecc_list();
  }
  if (sub == "exhaust") return cmd_ecc_exhaust(args);
  if (sub == "merge") return cmd_ecc_merge(args);
  if (sub == "pareto") return cmd_ecc_pareto(args);
  FLIM_REQUIRE(false, "unknown ecc subcommand: " + sub +
                          " (expected list|exhaust|merge|pareto, or "
                          "--describe FAMILY)");
  return 2;
}

int cmd_monitor(const Args& args) {
  args.require_known({"vectors", "layer", "period", "slots", "policy",
                      "reps", "seed", "max-inferences"});
  const std::string vectors_path = args.get_string("vectors");
  FLIM_REQUIRE(!vectors_path.empty(), "--vectors is required");
  const std::string layer = args.get_string("layer");
  FLIM_REQUIRE(!layer.empty(), "--layer is required");
  const fault::FaultVectorFile vectors =
      fault::FaultVectorFile::load(vectors_path);
  const fault::FaultVectorEntry* entry = vectors.find(layer);
  FLIM_REQUIRE(entry != nullptr, "no entry for layer " + layer);
  // The union of all planes is the static defect footprint the canary
  // monitor probes (composable entries carry one mask per component).
  const fault::FaultMask defects = entry->combined_mask();

  reliability::MonitorConfig cfg;
  cfg.grid = {defects.rows(), defects.cols()};
  cfg.test_period = static_cast<int>(args.get_int("period", 8));
  cfg.slots_per_round = static_cast<int>(args.get_int("slots", 16));
  const std::string policy = args.get_string("policy", "roundrobin");
  if (policy == "roundrobin") {
    cfg.policy = reliability::CanaryPolicy::kRoundRobin;
  } else if (policy == "random") {
    cfg.policy = reliability::CanaryPolicy::kRandom;
  } else {
    FLIM_REQUIRE(false, "unknown policy: " + policy +
                            " (expected roundrobin|random)");
  }

  const int reps = static_cast<int>(args.get_int("reps", 10));
  FLIM_REQUIRE(reps > 0, "--reps must be positive");
  const std::int64_t horizon = args.get_int("max-inferences", 1 << 22);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  double latency_total = 0.0;
  int detected = 0;
  for (int rep = 0; rep < reps; ++rep) {
    cfg.seed = seed + static_cast<std::uint64_t>(rep);
    const reliability::OnlineMonitor monitor(cfg);
    const reliability::DetectionOutcome outcome =
        monitor.run_until_detection(defects, horizon);
    if (outcome.detected) {
      ++detected;
      latency_total += static_cast<double>(outcome.inferences_elapsed);
    }
  }
  core::Table table({"metric", "value"});
  table.add("grid", std::to_string(cfg.grid.rows) + "x" +
                        std::to_string(cfg.grid.cols));
  table.add("overhead_ops_per_inference",
            core::format_double(
                reliability::OnlineMonitor(cfg).overhead_ops_per_inference(),
                2));
  table.add("detected_runs", std::to_string(detected) + "/" +
                                 std::to_string(reps));
  table.add("mean_latency_inferences",
            detected > 0 ? core::format_double(latency_total / detected, 1)
                         : std::string("n/a"));
  core::print_table(std::cout, "canary monitor on " + layer + " (" + policy
                                   + ")",
                    table);
  return 0;
}

int cmd_lifetime(const Args& args) {
  args.require_known({"model", "mitigation", "horizon", "step",
                      "wearout-scale", "wearout-shape", "upsets-per-hour",
                      "grid", "images", "weights-dir", "epochs", "samples",
                      "retrain", "verbose", "seed", "csv"});

  reliability::LifetimeConfig cfg;
  cfg.grid = parse_grid(args, "grid", "64x64");
  cfg.horizon_hours = args.get_double("horizon", 20000.0);
  cfg.step_hours = args.get_double("step", 2000.0);
  cfg.wearout.scale_hours = args.get_double("wearout-scale", 16000.0);
  cfg.wearout.shape = args.get_double("wearout-shape", 2.2);
  cfg.transients.upsets_per_grid_hour =
      args.get_double("upsets-per-hour", 0.05);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));

  reliability::MitigationStack stack;
  const std::string mitigation = args.get_string("mitigation", "none");
  if (mitigation == "scrub") {
    stack.scrub = true;
  } else if (mitigation == "scrub+ecc") {
    stack.scrub = true;
    stack.ecc = true;
  } else if (mitigation == "scrub+ecc+tmr") {
    stack.scrub = true;
    stack.ecc = true;
    stack.modular_redundancy = 3;
  } else {
    FLIM_REQUIRE(mitigation == "none",
                 "unknown mitigation: " + mitigation +
                     " (expected none|scrub|scrub+ecc|scrub+ecc+tmr)");
  }
  stack.scrub_period_hours = cfg.step_hours;

  // Validate the whole configuration before the (expensive) model load.
  const reliability::LifetimeSimulator sim(cfg);
  const exp::Workload loaded = exp::load_workload(workload_from(args));
  const reliability::LifetimeCurve curve =
      sim.simulate(loaded.model, loaded.eval_batch, loaded.layers, stack);

  core::Table table({"hours", "accuracy_%", "transient_flips",
                     "stuck_raw", "stuck_effective"});
  for (const reliability::LifetimePoint& p : curve.points) {
    table.add(core::format_double(p.hours, 0),
              core::format_double(p.accuracy * 100.0, 1), p.transient_flips,
              p.stuck_cells_raw, p.stuck_cells_effective);
  }
  core::print_table(std::cout,
                    loaded.model.name() + " lifetime (" + stack.name() + ")",
                    table);
  const std::string csv = args.get_string("csv");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

int run(const Args& args) {
  if (args.command().empty() || args.command() == "help" ||
      args.command() == "--help") {
    print_usage();
    return args.command().empty() ? 1 : 0;
  }
  if (args.command() == "generate") return cmd_generate(args);
  if (args.command() == "inspect") return cmd_inspect(args);
  if (args.command() == "faults") return cmd_faults(args);
  if (args.command() == "train") return cmd_train(args);
  if (args.command() == "evaluate") return cmd_evaluate(args);
  if (args.command() == "eval") return cmd_eval(args);
  if (args.command() == "serve") return cmd_serve(args);
  if (args.command() == "campaign") return cmd_campaign(args);
  if (args.command() == "merge") return cmd_merge(args);
  if (args.command() == "march") return cmd_march(args);
  if (args.command() == "scrub") return cmd_scrub(args);
  if (args.command() == "ecc") return cmd_ecc(args);
  if (args.command() == "monitor") return cmd_monitor(args);
  if (args.command() == "lifetime") return cmd_lifetime(args);
  std::cerr << "unknown command: " << args.command() << "\n";
  print_usage();
  return 1;
}

}  // namespace flim::cli

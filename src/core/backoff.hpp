// Exponential backoff with jitter for retry loops.
//
// Fleet workers reconnect to a coordinator that may not be up yet (or is
// restarting); hammering it on a fixed period synchronizes every worker into
// thundering-herd retries. The standard fix is exponential growth capped at
// a ceiling, with multiplicative jitter so independent retriers decorrelate.
// Randomness flows from the caller's seeded core::Rng -- never an ambient
// entropy source -- so retry schedules are reproducible in tests.
#pragma once

/// \file
/// Deterministic exponential backoff with jitter; the shared retry policy
/// for fleet connect/reconnect loops (and future remote engines).

#include <cstdint>

#include "core/rng.hpp"

namespace flim::core {

/// Shape of an exponential backoff schedule. The default policy retries at
/// ~50ms growing 2x per attempt up to 2s, each delay jittered +-20%.
struct BackoffPolicy {
  /// Delay before the first retry (attempt 0), in milliseconds (>= 1).
  std::int64_t initial_delay_ms = 50;
  /// Ceiling the exponential growth saturates at (>= initial_delay_ms).
  std::int64_t max_delay_ms = 2000;
  /// Per-attempt growth factor (>= 1).
  double multiplier = 2.0;
  /// Multiplicative jitter: the delay is scaled by a uniform draw from
  /// [1 - jitter_fraction, 1 + jitter_fraction]. Must be in [0, 1).
  double jitter_fraction = 0.2;
};

/// Throws std::invalid_argument when a policy field is out of range.
void validate(const BackoffPolicy& policy);

/// Delay in milliseconds before retry number `attempt` (0-based): the
/// capped exponential initial * multiplier^attempt, jittered by a uniform
/// draw from `rng`. Deterministic given (policy, attempt, rng state); the
/// result is always >= 1.
std::int64_t backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                              Rng& rng);

}  // namespace flim::core

// Clang thread-safety-analysis annotations, compiled away elsewhere.
//
// Clang's -Wthread-safety turns lock discipline into a compile-time
// property: members declare which mutex guards them (FLIM_GUARDED_BY),
// functions declare which locks they need (FLIM_REQUIRES) or take
// (FLIM_ACQUIRE/FLIM_RELEASE), and any access that cannot be proven to hold
// the right lock is a hard error under -Werror. The static-analysis CI job
// builds the tree with Clang and -Wthread-safety -Werror; GCC and MSVC see
// empty macros, so the annotations cost nothing off Clang.
//
// Conventions (see docs/static-analysis.md#thread-safety-annotations):
// * every mutex-protected member is annotated FLIM_GUARDED_BY(its mutex) --
//   tools/flim_lint.py's `mutex-annotation` rule enforces this for new code;
// * private helpers called under a lock are annotated FLIM_REQUIRES(...) so
//   the analysis follows them instead of stopping at the call;
// * FLIM_NO_THREAD_SAFETY_ANALYSIS is a last resort for patterns the
//   analysis cannot express (conditional locking); prefer restructuring.
#pragma once

#if defined(__clang__)
#define FLIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FLIM_THREAD_ANNOTATION(x)
#endif

/// Declares that the annotated type is a lockable capability (mutexes from
/// <mutex> are pre-annotated by libc++/libstdc++ on Clang; this is for
/// wrapper types).
#define FLIM_CAPABILITY(x) FLIM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability for its lifetime.
#define FLIM_SCOPED_CAPABILITY FLIM_THREAD_ANNOTATION(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define FLIM_GUARDED_BY(x) FLIM_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer member's *pointee* is protected by `x` (the pointer
/// itself is not).
#define FLIM_PT_GUARDED_BY(x) FLIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Callers must hold the listed capabilities (exclusively) before calling.
#define FLIM_REQUIRES(...) \
  FLIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Callers must hold the listed capabilities at least shared.
#define FLIM_REQUIRES_SHARED(...) \
  FLIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release them.
#define FLIM_ACQUIRE(...) \
  FLIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function acquires the listed capabilities shared.
#define FLIM_ACQUIRE_SHARED(...) \
  FLIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define FLIM_RELEASE(...) \
  FLIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Callers must NOT hold the listed capabilities (deadlock prevention).
#define FLIM_EXCLUDES(...) FLIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding its result.
#define FLIM_RETURN_CAPABILITY(x) FLIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the definition is exempt from the analysis. Use only for
/// patterns the analysis cannot model, with a comment saying why.
#define FLIM_NO_THREAD_SAFETY_ANALYSIS \
  FLIM_THREAD_ANNOTATION(no_thread_safety_analysis)

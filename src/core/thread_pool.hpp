// Minimal work-stealing-free thread pool used to parallelize inference over
// a batch of images. This is the library's stand-in for the GPU acceleration
// the paper reports in Fig 4f (see DESIGN.md, substitution table).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flim::core {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Submits a nullary task; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit per-task overhead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace flim::core

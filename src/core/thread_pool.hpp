// Minimal work-stealing-free thread pool used to parallelize inference over
// a batch of images. This is the library's stand-in for the GPU acceleration
// the paper reports in Fig 4f (see docs/architecture.md, substitution table).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"

namespace flim::core {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Submits a nullary task; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const MutexLock lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit per-task overhead. Safe to call from one of
  /// this pool's own workers (e.g. batch-level parallel_for whose tasks
  /// shard their GEMMs on the same pool): the nested call runs inline
  /// instead of enqueueing tasks the blocked workers could never drain.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but also hands each invocation a worker slot id in
  /// [0, size()): at any instant no two concurrently running invocations
  /// share a slot. Callers use the slot to index per-worker state (e.g. one
  /// inference Workspace per worker) without locking or thread-locals.
  void parallel_for_slotted(
      std::size_t n,
      const std::function<void(std::size_t index, std::size_t slot)>& fn);

 private:
  void worker_loop();

  /// Waits for every future; rethrows the first captured exception only
  /// after all tasks completed (tasks reference caller-stack state).
  static void drain(std::vector<std::future<void>>& futures);

  /// Immutable after the constructor returns (read by on_worker_thread()
  /// from arbitrary threads without a lock).
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ FLIM_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  bool stop_ FLIM_GUARDED_BY(mutex_) = false;
};

}  // namespace flim::core

// Monotonic wall-time for lease/heartbeat bookkeeping.
//
// The determinism lint bans ad-hoc clock reads in library code because
// wall time must never leak into campaign *numbers*. Fleet coordination is
// the one place time is genuinely part of the model -- lease TTLs and
// heartbeat deadlines are wall-clock by nature -- so this header is the
// single sanctioned monotonic time source (vetted in the lint allowlist).
// Everything that consumes time takes explicit millisecond values, so tests
// drive lease logic with fake clocks and stay deterministic.
#pragma once

/// \file
/// The sanctioned monotonic clock: steady milliseconds and sleeping. Time
/// never feeds campaign numbers; it only drives fleet lease bookkeeping.

#include <cstdint>

namespace flim::core {

/// Milliseconds elapsed on the process-wide monotonic (steady) clock.
/// Only differences are meaningful; the epoch is unspecified.
std::int64_t steady_now_ms();

/// Blocks the calling thread for at least `ms` milliseconds (no-op for
/// values <= 0).
void sleep_ms(std::int64_t ms);

}  // namespace flim::core

// Contract-checking macros.
//
// FLIM_REQUIRE  -- validates API preconditions (user-facing configuration /
//                  construction); throws std::invalid_argument on violation.
// FLIM_ASSERT   -- internal invariants on hot paths; aborts in debug builds,
//                  compiled out in release unless FLIM_FORCE_ASSERTS is set.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace flim::detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "FLIM requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace flim::detail

#define FLIM_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::flim::detail::throw_requirement(#expr, __FILE__, __LINE__,   \
                                        std::string(msg));           \
    }                                                                \
  } while (false)

#if defined(NDEBUG) && !defined(FLIM_FORCE_ASSERTS)
#define FLIM_ASSERT(expr) ((void)0)
#else
#define FLIM_ASSERT(expr) assert(expr)
#endif

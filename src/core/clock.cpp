#include "core/clock.hpp"

#include <chrono>
#include <thread>

namespace flim::core {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(std::int64_t ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace flim::core

// Minimal JSON parsing for line-delimited protocols and run files.
//
// The durable store (exp/store) and the fleet wire protocol (fleet/wire)
// both speak one-object-per-line JSON restricted to numbers, strings, and
// arrays of either -- small enough that a dependency-free recursive parser
// is simpler and more auditable than any third-party library. Parse
// failures throw JsonError, a plain struct (not a std::exception), so
// callers are forced to decide explicitly what a malformed line means in
// their domain: the store maps it to "corrupt tail", the wire layer to a
// protocol violation.
#pragma once

/// \file
/// Minimal JSON values and the one-line object parser shared by the durable
/// campaign store and the fleet wire protocol.

#include <map>
#include <string>
#include <vector>

namespace flim::core {

/// Thrown (by value) on malformed JSON. Deliberately not a std::exception:
/// a catch(...) or catch(const std::exception&) handler must not silently
/// swallow protocol/format violations.
struct JsonError {
  std::string what;
};

/// One parsed JSON value: a number, a string, or an array of values.
/// Objects only appear at the top level (one per line) and are returned as
/// maps by parse_json_object_line.
struct JsonValue {
  enum class Kind { kNumber, kString, kArray };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
};

/// Parses one line holding exactly one JSON object of string keys to
/// number/string/array values. Trailing non-whitespace content after the
/// object is an error. Throws JsonError on malformed input.
std::map<std::string, JsonValue> parse_json_object_line(
    const std::string& line);

/// Field accessors for parsed objects; each throws JsonError when the key
/// is missing or holds the wrong kind.
const JsonValue& json_field(const std::map<std::string, JsonValue>& obj,
                            const char* key);
double json_number(const std::map<std::string, JsonValue>& obj,
                   const char* key);
std::string json_string(const std::map<std::string, JsonValue>& obj,
                        const char* key);
const std::vector<JsonValue>& json_array(
    const std::map<std::string, JsonValue>& obj, const char* key);

}  // namespace flim::core

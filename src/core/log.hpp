// Lightweight leveled logging to stderr.
//
// Benches and examples use INFO-level progress lines; the library itself only
// logs at WARN and above so that embedding applications stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace flim::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits a message at `level` (thread-safe, single write per call).
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds a message from stream operands then forwards to log_message.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace flim::core

#define FLIM_LOG_DEBUG ::flim::core::detail::LogLine(::flim::core::LogLevel::kDebug)
#define FLIM_LOG_INFO ::flim::core::detail::LogLine(::flim::core::LogLevel::kInfo)
#define FLIM_LOG_WARN ::flim::core::detail::LogLine(::flim::core::LogLevel::kWarn)
#define FLIM_LOG_ERROR ::flim::core::detail::LogLine(::flim::core::LogLevel::kError)

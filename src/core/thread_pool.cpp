#include "core/thread_pool.hpp"

#include <algorithm>

namespace flim::core {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace flim::core

#include "core/thread_pool.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace flim::core {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Explicit predicate loop (not the cv_.wait(lock, pred) overload):
      // thread-safety analysis cannot see that the predicate lambda runs
      // under the lock, so the guarded reads live in this scope instead.
      CondLock lock(mutex_);
      while (!stop_ && tasks_.empty()) lock.wait(cv_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Nested use from inside a pool task: enqueued chunks would wait behind
    // the very workers blocked on them (deadlock). Degrade to inline.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  drain(futures);
}

void ThreadPool::drain(std::vector<std::future<void>>& futures) {
  // Every task must finish before the caller's stack frame (fn, slot state)
  // goes away, even when one throws: collect the first exception and
  // rethrow only after all futures completed.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::parallel_for_slotted(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Nested slotted use cannot degrade to inline: the calling task already
  // holds a slot, and handing out another would collide with per-slot
  // state. Fail loudly instead of deadlocking.
  FLIM_REQUIRE(!on_worker_thread(),
               "parallel_for_slotted cannot be nested on its own pool");
  // At most size() chunk tasks run concurrently (one per worker thread), so
  // a free-list of size() slot ids never runs dry.
  std::vector<std::size_t> free_slots(size());
  for (std::size_t s = 0; s < free_slots.size(); ++s) free_slots[s] = s;
  Mutex slots_mutex;

  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([begin, end, &fn, &free_slots, &slots_mutex] {
      std::size_t slot;
      {
        const MutexLock lock(slots_mutex);
        slot = free_slots.back();
        free_slots.pop_back();
      }
      // Return the slot even when fn throws, or a later chunk task would
      // pop from an empty free-list.
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i, slot);
      } catch (...) {
        const MutexLock lock(slots_mutex);
        free_slots.push_back(slot);
        throw;
      }
      {
        const MutexLock lock(slots_mutex);
        free_slots.push_back(slot);
      }
    }));
  }
  drain(futures);
}

}  // namespace flim::core

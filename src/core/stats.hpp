// Streaming statistics used to aggregate repeated experiment runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace flim::core {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation seen; 0 when empty.
  double min() const { return n_ > 0 ? min_ : 0.0; }

  /// Largest observation seen; 0 when empty.
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point summary of a set of repeated runs.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  /// Formats as "mean ± stddev" with the given precision.
  std::string to_string(int precision = 2) const;
};

/// Collapses an accumulator into a Summary value.
Summary summarize(const RunningStats& s);

/// Computes the median of a (copied) sample. Empty input yields 0.
double median(std::vector<double> values);

/// Computes the q-th quantile (0 <= q <= 1) by linear interpolation.
double quantile(std::vector<double> values, double q);

}  // namespace flim::core

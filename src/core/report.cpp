#include "core/report.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/check.hpp"

namespace flim::core {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  FLIM_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FLIM_REQUIRE(cells.size() == columns_.size(),
               "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) { return format_double(v, 4); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << '\n';
  };
  emit_rule();
  emit_row(columns_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  FLIM_REQUIRE(out.good(),
               "cannot open " + std::string(what) + " output file: " + path);
  out << text;
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ", ";
      os << '"' << json_escape(columns_[c]) << "\": \""
         << json_escape(rows_[r][c]) << '"';
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  write_text_file(path, to_csv(), "CSV");
}

void Table::write_json(const std::string& path) const {
  write_text_file(path, to_json(), "JSON");
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string format_double_roundtrip(double v) {
  // 17 significant digits are sufficient (and necessary) for binary64 ->
  // decimal -> binary64 to be the identity under correct rounding. Prefer
  // std::to_chars: it is locale-independent, where %.17g would render a
  // decimal comma under e.g. LC_NUMERIC=de_DE and corrupt run files and
  // spec fingerprints of an embedding application that calls setlocale.
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v,
                                    std::chars_format::general, 17);
  FLIM_REQUIRE(result.ec == std::errc(), "to_chars failed on a double");
  return std::string(buf, result.ptr);
#else
  // Pre-C++17-FP-charconv toolchains (GCC 10): printf-compatible output;
  // only locale-correct when LC_NUMERIC stays "C".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
#endif
}

std::string format_double_shortest(double v) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  // Plain to_chars is the shortest representation that parses back to the
  // exact same binary64 value (and is locale-independent).
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  FLIM_REQUIRE(result.ec == std::errc(), "to_chars failed on a double");
  return std::string(buf, result.ptr);
#else
  return format_double_roundtrip(v);
#endif
}

void print_table(std::ostream& os, const std::string& title, const Table& t) {
  os << "== " << title << " ==\n" << t.to_ascii();
}

std::string results_dir() {
  if (const char* env = std::getenv("FLIM_RESULTS_DIR")) {
    return env;
  }
  return "results";
}

}  // namespace flim::core

#include "core/minijson.hpp"

#include <charconv>
#include <cstdlib>

namespace flim::core {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& line)
      : p_(line.c_str()), end_(line.c_str() + line.size()) {}

  std::map<std::string, JsonValue> parse_object_line() {
    expect('{');
    std::map<std::string, JsonValue> out;
    skip_ws();
    if (!eat('}')) {
      while (true) {
        std::string key = parse_string();
        expect(':');
        out.emplace(std::move(key), parse_value());
        if (eat('}')) break;
        expect(',');
      }
    }
    skip_ws();
    if (p_ != end_) fail("trailing content after object");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) { throw JsonError{what}; }

  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }

  bool eat(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    skip_ws();
    if (p_ >= end_ || *p_ != '"') fail("expected string");
    ++p_;
    std::string out;
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ >= end_) fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only emit \u00xx for control bytes; decode the BMP
          // anyway so hand-edited files stay loadable.
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xC0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (v & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    if (p_ >= end_) fail("unterminated string");
    ++p_;
    return out;
  }

  double parse_number() {
    skip_ws();
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    // Locale-independent (strtod honors LC_NUMERIC, which would make an
    // embedding app's setlocale() call silently reject every stored point
    // as a corrupt tail) and bounded by the line end.
    double v = 0.0;
    const auto result = std::from_chars(p_, end_, v);
    if (result.ec != std::errc() || result.ptr == p_) fail("expected number");
    p_ = result.ptr;
    return v;
#else
    char* num_end = nullptr;
    const double v = std::strtod(p_, &num_end);
    if (num_end == p_) fail("expected number");
    p_ = num_end;
    return v;
#endif
  }

  JsonValue parse_value() {
    skip_ws();
    if (p_ >= end_) fail("unexpected end of line");
    JsonValue v;
    if (*p_ == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (*p_ == '[') {
      ++p_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      while (true) {
        v.items.push_back(parse_value());
        if (eat(']')) break;
        expect(',');
      }
      return v;
    }
    v.kind = JsonValue::Kind::kNumber;
    v.number = parse_number();
    return v;
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::map<std::string, JsonValue> parse_json_object_line(
    const std::string& line) {
  return Parser(line).parse_object_line();
}

const JsonValue& json_field(const std::map<std::string, JsonValue>& obj,
                            const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError{std::string("missing field ") + key};
  return it->second;
}

double json_number(const std::map<std::string, JsonValue>& obj,
                   const char* key) {
  const JsonValue& v = json_field(obj, key);
  if (v.kind != JsonValue::Kind::kNumber) {
    throw JsonError{std::string("field ") + key + " is not a number"};
  }
  return v.number;
}

std::string json_string(const std::map<std::string, JsonValue>& obj,
                        const char* key) {
  const JsonValue& v = json_field(obj, key);
  if (v.kind != JsonValue::Kind::kString) {
    throw JsonError{std::string("field ") + key + " is not a string"};
  }
  return v.text;
}

const std::vector<JsonValue>& json_array(
    const std::map<std::string, JsonValue>& obj, const char* key) {
  const JsonValue& v = json_field(obj, key);
  if (v.kind != JsonValue::Kind::kArray) {
    throw JsonError{std::string("field ") + key + " is not an array"};
  }
  return v.items;
}

}  // namespace flim::core

// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that experiment repetitions are reproducible: the paper re-seeds
// the generator for each of its 100 repetitions, and the campaign runner
// (campaign.hpp) does the same through derive().
#pragma once

#include <cstdint>
#include <vector>

namespace flim::core {

/// SplitMix64 -- used to expand a single 64-bit seed into a full generator
/// state and to derive statistically independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Fast, high-quality, and with an explicit, copyable state -- properties we
/// need for fault-mask generation where masks must be regenerable from
/// (seed, spec) alone. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 pseudo-random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Standard normal draw (Box-Muller, no cached spare for determinism).
  double normal();

  /// Normal draw with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Poisson draw with the given mean (Knuth's method below mean 32, the
  /// rounded-normal approximation above). mean must be >= 0.
  std::uint64_t poisson(double mean);

  /// Derives an independent child generator; `stream` selects the child.
  /// derive(i) for distinct i give statistically independent streams.
  Rng derive(std::uint64_t stream) const;

  /// Samples `k` distinct indices from [0, n) (partial Fisher-Yates).
  /// Requires k <= n. Result order is unspecified but deterministic.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  /// The seed this generator was constructed from.
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_ = 0;
};

}  // namespace flim::core

#include "core/campaign.hpp"

#include "core/check.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace flim::core {

void for_each_grid_index(
    const std::vector<std::size_t>& sizes,
    const std::function<void(const std::vector<std::size_t>&)>& fn) {
  std::size_t cells = 1;
  for (const std::size_t s : sizes) cells *= s;
  std::vector<std::size_t> index(sizes.size(), 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    fn(index);
    // Row-major advance: bump the last axis, carrying leftwards.
    for (std::size_t a = sizes.size(); a-- > 0;) {
      if (++index[a] < sizes[a]) break;
      index[a] = 0;
    }
  }
}

Summary run_repeated(
    const CampaignConfig& config,
    const std::function<double(std::uint64_t seed, std::size_t worker)>&
        metric) {
  FLIM_REQUIRE(config.repetitions > 0, "campaign needs >= 1 repetition");
  // Derive one independent seed per repetition, mirroring the paper's
  // "reinitialized the random generator with a new seed value".
  Rng master(config.master_seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(config.repetitions));
  for (auto& s : seeds) s = master();

  // Collect per-repetition values by index and fold them in index order:
  // floating-point accumulation then matches the serial run regardless of
  // pool completion order.
  std::vector<double> values(seeds.size());
  if (config.pool != nullptr && config.pool->size() > 1) {
    config.pool->parallel_for_slotted(
        seeds.size(), [&](std::size_t i, std::size_t worker) {
          values[i] = metric(seeds[i], worker);
        });
  } else {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      values[i] = metric(seeds[i], 0);
    }
  }
  RunningStats stats;
  for (const double v : values) stats.add(v);
  return summarize(stats);
}

Summary run_repeated(const CampaignConfig& config,
                     const std::function<double(std::uint64_t seed)>& metric) {
  return run_repeated(config, [&](std::uint64_t seed, std::size_t /*worker*/) {
    return metric(seed);
  });
}

std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const std::function<std::string(double)>& label_fn) {
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (const double x : xs) {
    points.push_back({x, label_fn ? label_fn(x) : format_double(x, 2)});
  }
  return run_sweep(config, points, metric);
}

std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<SweepPoint>& points,
    const std::function<double(double x, std::uint64_t seed)>& metric) {
  std::vector<CampaignPoint> out;
  out.reserve(points.size());
  for (const SweepPoint& sp : points) {
    CampaignPoint p;
    p.x = sp.x;
    p.label = sp.label;
    p.metric = run_repeated(
        config, [&](std::uint64_t seed) { return metric(sp.x, seed); });
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<GridPoint> run_grid_sweep(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed)>& metric,
    const std::function<void(const GridPoint&)>& on_point) {
  return run_grid_sweep(
      config, axes,
      [&](const std::vector<double>& xs, std::uint64_t seed,
          std::size_t /*worker*/) { return metric(xs, seed); },
      on_point);
}

std::vector<GridPoint> run_grid_sweep(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed, std::size_t worker)>&
        metric,
    const std::function<void(const GridPoint&)>& on_point) {
  FLIM_REQUIRE(!axes.empty(), "grid sweep needs at least one axis");
  std::function<void(const SelectedGridPoint&)> on_cell;
  if (on_point) {
    on_cell = [&](const SelectedGridPoint& sp) { on_point(sp.point); };
  }
  std::vector<SelectedGridPoint> cells =
      run_grid_sweep_selected(config, axes, nullptr, metric, on_cell);
  std::vector<GridPoint> out;
  out.reserve(cells.size());
  for (SelectedGridPoint& sp : cells) out.push_back(std::move(sp.point));
  return out;
}

std::vector<SelectedGridPoint> run_grid_sweep_selected(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<bool(std::size_t flat_index)>& selector,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed, std::size_t worker)>&
        metric,
    const std::function<void(const SelectedGridPoint&)>& on_point) {
  std::vector<std::size_t> sizes;
  sizes.reserve(axes.size());
  for (const SweepAxis& axis : axes) {
    FLIM_REQUIRE(!axis.points.empty(),
                 "grid axis '" + axis.name + "' has no points");
    sizes.push_back(axis.points.size());
  }

  std::vector<SelectedGridPoint> out;
  std::size_t flat = 0;
  for_each_grid_index(sizes, [&](const std::vector<std::size_t>& index) {
    const std::size_t cell = flat++;
    if (selector && !selector(cell)) return;
    SelectedGridPoint sp;
    sp.flat_index = cell;
    sp.point.coords.reserve(axes.size());
    sp.point.labels.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const SweepPoint& axis_point = axes[a].points[index[a]];
      sp.point.coords.push_back(axis_point.x);
      sp.point.labels.push_back(axis_point.label);
    }
    sp.point.metric =
        run_repeated(config, [&](std::uint64_t seed, std::size_t worker) {
          return metric(sp.point.coords, seed, worker);
        });
    if (on_point) on_point(sp);
    out.push_back(std::move(sp));
  });
  return out;
}

}  // namespace flim::core

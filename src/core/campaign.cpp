#include "core/campaign.hpp"

#include <mutex>

#include "core/check.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace flim::core {

Summary run_repeated(const CampaignConfig& config,
                     const std::function<double(std::uint64_t seed)>& metric) {
  FLIM_REQUIRE(config.repetitions > 0, "campaign needs >= 1 repetition");
  // Derive one independent seed per repetition, mirroring the paper's
  // "reinitialized the random generator with a new seed value".
  Rng master(config.master_seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(config.repetitions));
  for (auto& s : seeds) s = master();

  RunningStats stats;
  if (config.pool != nullptr && config.pool->size() > 1) {
    std::mutex m;
    config.pool->parallel_for(seeds.size(), [&](std::size_t i) {
      const double v = metric(seeds[i]);
      std::lock_guard<std::mutex> lock(m);
      stats.add(v);
    });
  } else {
    for (const auto s : seeds) stats.add(metric(s));
  }
  return summarize(stats);
}

std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const std::function<std::string(double)>& label_fn) {
  std::vector<CampaignPoint> points;
  points.reserve(xs.size());
  for (const double x : xs) {
    CampaignPoint p;
    p.x = x;
    p.label = label_fn ? label_fn(x) : format_double(x, 2);
    p.metric = run_repeated(
        config, [&](std::uint64_t seed) { return metric(x, seed); });
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace flim::core

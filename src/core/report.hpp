// Tabular result reporting: pretty-printed tables for the terminal and CSV
// files for downstream plotting. Every bench binary emits its figure/table
// through this facility so the output format is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flim::core {

/// A rectangular table of string cells with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly one cell per column.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format_cell(values)), ...);
    add_row(std::move(cells));
  }

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Renders a JSON array of row objects keyed by column name; every cell
  /// value is emitted as a JSON string (cells are untyped text).
  std::string to_json() const;

  /// Writes CSV to `path`, creating parent directories if needed.
  void write_csv(const std::string& path) const;

  /// Writes to_json() to `path`, creating parent directories if needed.
  void write_json(const std::string& path) const;

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(float v) { return format_cell(double{v}); }
  static std::string format_cell(int v) { return std::to_string(v); }
  static std::string format_cell(long v) { return std::to_string(v); }
  static std::string format_cell(long long v) { return std::to_string(v); }
  static std::string format_cell(unsigned v) { return std::to_string(v); }
  static std::string format_cell(unsigned long v) { return std::to_string(v); }
  static std::string format_cell(unsigned long long v) {
    return std::to_string(v);
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string format_double(double v, int precision = 2);

/// Formats a double with enough significant digits (17) that a
/// correctly-rounded strtod reproduces the exact IEEE-754 bits. Campaign run
/// files persist summaries through this so a resumed or merged campaign
/// emits byte-identical CSV to an uninterrupted run.
std::string format_double_roundtrip(double v);

/// Shortest decimal that round-trips to the exact IEEE-754 bits ("0.05",
/// not "0.050000000000000003"). Used where exact values must stay
/// human-readable: canonical fault expressions and their fingerprints.
std::string format_double_shortest(double v);

/// Escapes `s` for embedding inside a JSON string literal (the surrounding
/// quotes are not added).
std::string json_escape(const std::string& s);

/// Prints a banner line ("== title ==") followed by the table.
void print_table(std::ostream& os, const std::string& title, const Table& t);

/// Resolves the directory benches write CSV results into.
/// Honors $FLIM_RESULTS_DIR, defaulting to "results".
std::string results_dir();

}  // namespace flim::core

// Annotated mutex wrappers for Clang thread-safety analysis.
//
// -Wthread-safety can only verify lock discipline when the lock types
// themselves carry capability annotations. libstdc++'s std::mutex and
// std::lock_guard carry none, so code locking them is invisible to the
// analysis and every FLIM_GUARDED_BY access would be flagged. These thin
// wrappers (zero overhead: one std::mutex member, all calls inline) are the
// annotated vocabulary the analysis understands; all mutex-protected state
// in the library uses them. See docs/static-analysis.md.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/annotations.hpp"

namespace flim::core {

/// std::mutex with capability annotations. Lock through MutexLock (or
/// CondLock when a condition variable must wait on it).
class FLIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLIM_ACQUIRE() { m_.lock(); }
  void unlock() FLIM_RELEASE() { m_.unlock(); }

  /// The wrapped mutex, for std::condition_variable waits (CondLock).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent the analysis can follow.
class FLIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) FLIM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() FLIM_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Scoped lock that a std::condition_variable can wait on. wait() releases
/// and reacquires the wrapped mutex internally; from the caller's view the
/// capability is held for the whole scope, which is how annotated condition
/// variables are conventionally modelled.
class FLIM_SCOPED_CAPABILITY CondLock {
 public:
  explicit CondLock(Mutex& m) FLIM_ACQUIRE(m) : lock_(m.native()) {}
  ~CondLock() FLIM_RELEASE() {}

  CondLock(const CondLock&) = delete;
  CondLock& operator=(const CondLock&) = delete;

  /// Blocks until notified. Spurious wakeups apply; callers re-check their
  /// predicate in a loop.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace flim::core

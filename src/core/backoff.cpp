#include "core/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace flim::core {

void validate(const BackoffPolicy& policy) {
  FLIM_REQUIRE(policy.initial_delay_ms >= 1,
               "backoff initial_delay_ms must be >= 1");
  FLIM_REQUIRE(policy.max_delay_ms >= policy.initial_delay_ms,
               "backoff max_delay_ms must be >= initial_delay_ms");
  FLIM_REQUIRE(policy.multiplier >= 1.0, "backoff multiplier must be >= 1");
  FLIM_REQUIRE(policy.jitter_fraction >= 0.0 && policy.jitter_fraction < 1.0,
               "backoff jitter_fraction must be in [0, 1)");
}

std::int64_t backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                              Rng& rng) {
  validate(policy);
  FLIM_REQUIRE(attempt >= 0, "backoff attempt must be >= 0");
  // Saturating exponential in double space: attempt counts stay small, but
  // pow() overflow must clamp to the ceiling rather than wrap.
  const double grown = static_cast<double>(policy.initial_delay_ms) *
                       std::pow(policy.multiplier, attempt);
  const double capped =
      std::min(grown, static_cast<double>(policy.max_delay_ms));
  const double scale = 1.0 - policy.jitter_fraction +
                       2.0 * policy.jitter_fraction * rng.uniform_double();
  const double jittered = capped * scale;
  return std::max<std::int64_t>(1, std::llround(jittered));
}

}  // namespace flim::core

// Library version constants.
#pragma once

namespace flim {

/// Semantic version of the FLIM C++ library.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// Human-readable version string.
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace flim

// Generic experiment campaign runner.
//
// The paper runs every fault-injection experiment one hundred times,
// re-seeding the random generator each time, and reports the mean accuracy.
// Campaign encapsulates exactly that protocol: a metric function is invoked
// once per repetition with a derived, independent seed, and the results are
// aggregated into a Summary. Repetitions can optionally run on a thread pool;
// aggregation order is fixed by repetition index, so pooled and serial runs
// of the same campaign produce bit-identical summaries.
#pragma once

/// \file
/// Generic experiment campaign runner: repeated-seed protocols, 1-D and
/// N-D grid sweeps, and the selected-cell sweep variant that campaign
/// resume and sharding build on.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"

/// Cross-cutting infrastructure shared by every module: RNG, campaigns,
/// statistics, reporting, hashing, logging, threading.
namespace flim::core {

/// Work-stealing-free fixed pool (thread_pool.hpp); forward-declared here so
/// campaign configs can reference one without the header.
class ThreadPool;

/// Configuration of a repeated-trial experiment.
struct CampaignConfig {
  /// Number of repetitions (the paper uses 100).
  int repetitions = 100;
  /// Master seed; repetition i receives an independent seed derived from it.
  std::uint64_t master_seed = 42;
  /// Optional pool; when set, repetitions run in parallel.
  ThreadPool* pool = nullptr;
};

/// A single swept point: label -> aggregated metric.
struct CampaignPoint {
  /// Report label of the swept value.
  std::string label;
  /// The swept numeric value.
  double x = 0.0;
  /// Aggregated repetition summary.
  Summary metric;
};

/// One pre-labeled value of a sweep axis.
struct SweepPoint {
  /// The swept numeric value.
  double x = 0.0;
  /// Report label of the value.
  std::string label;
};

/// A named axis of an N-dimensional grid sweep.
struct SweepAxis {
  /// Axis/column name in reports.
  std::string name;
  /// The axis values, in sweep order.
  std::vector<SweepPoint> points;
};

/// One evaluated cell of a grid sweep; coords/labels hold one entry per
/// axis, in axis order.
struct GridPoint {
  /// Numeric value per axis.
  std::vector<double> coords;
  /// Report label per axis.
  std::vector<std::string> labels;
  /// Aggregated repetition summary.
  Summary metric;
};

/// Calls `fn(indices)` for every cell of a grid with the given per-axis
/// sizes, in row-major order (last axis fastest). Zero axes produce one call
/// with an empty index vector; a zero-sized axis produces no calls.
void for_each_grid_index(
    const std::vector<std::size_t>& sizes,
    const std::function<void(const std::vector<std::size_t>&)>& fn);

/// Runs `metric(seed)` for `config.repetitions` derived seeds and aggregates.
Summary run_repeated(const CampaignConfig& config,
                     const std::function<double(std::uint64_t seed)>& metric);

/// Worker-slot variant: `metric(seed, worker)` additionally receives a slot
/// id in [0, pool size) (always 0 when serial) such that no two concurrent
/// invocations share a slot. This is how campaign code reuses expensive
/// per-worker state -- e.g. one inference Workspace per worker across every
/// repetition and grid point -- without locking. Aggregation stays
/// index-ordered, so results are bit-identical to the serial run.
Summary run_repeated(
    const CampaignConfig& config,
    const std::function<double(std::uint64_t seed, std::size_t worker)>&
        metric);

/// Runs a 1-D sweep: for each x value, run_repeated() on metric(x, seed).
/// `label_fn` names the point; a null label_fn (the default) falls back to
/// the numeric value formatted with two decimals.
std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const std::function<std::string(double)>& label_fn = nullptr);

/// 1-D sweep over pre-labeled points, so callers stop formatting labels by
/// hand at every call site.
std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<SweepPoint>& points,
    const std::function<double(double x, std::uint64_t seed)>& metric);

/// Runs the full cartesian product of `axes` in row-major order (the last
/// axis varies fastest); every cell is aggregated with run_repeated() under
/// the same campaign config, so each cell's repetition seeds are identical
/// regardless of grid shape or evaluation order. `on_point` (optional) fires
/// after each cell completes, in emission order.
std::vector<GridPoint> run_grid_sweep(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed)>& metric,
    const std::function<void(const GridPoint&)>& on_point = nullptr);

/// Worker-slot variant of run_grid_sweep (see the run_repeated overload):
/// the metric receives a per-worker slot id that is stable across every
/// cell and repetition of the sweep, enabling one compiled plan + one
/// workspace per worker for the whole grid.
std::vector<GridPoint> run_grid_sweep(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed, std::size_t worker)>&
        metric,
    const std::function<void(const GridPoint&)>& on_point = nullptr);

/// A grid cell tagged with its row-major flat index (last axis fastest).
struct SelectedGridPoint {
  /// Row-major flat index of the cell within the full grid.
  std::size_t flat_index = 0;
  /// The evaluated cell.
  GridPoint point;
};

/// Sparse variant of run_grid_sweep: `selector(flat_index)` decides per cell
/// whether it is evaluated; skipped cells produce no output. Because every
/// cell's repetition seeds derive only from `config.master_seed` (never from
/// grid position or evaluation order), evaluating any subset yields
/// bit-identical per-cell summaries to a full sweep -- the property campaign
/// resume and sharding are built on. Unlike run_grid_sweep, zero axes are
/// allowed and evaluate one cell with flat index 0. A null selector
/// evaluates every cell.
std::vector<SelectedGridPoint> run_grid_sweep_selected(
    const CampaignConfig& config, const std::vector<SweepAxis>& axes,
    const std::function<bool(std::size_t flat_index)>& selector,
    const std::function<double(const std::vector<double>& xs,
                               std::uint64_t seed, std::size_t worker)>&
        metric,
    const std::function<void(const SelectedGridPoint&)>& on_point = nullptr);

}  // namespace flim::core

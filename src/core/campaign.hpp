// Generic experiment campaign runner.
//
// The paper runs every fault-injection experiment one hundred times,
// re-seeding the random generator each time, and reports the mean accuracy.
// Campaign encapsulates exactly that protocol: a metric function is invoked
// once per repetition with a derived, independent seed, and the results are
// aggregated into a Summary. Repetitions can optionally run on a thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"

namespace flim::core {

class ThreadPool;

/// Configuration of a repeated-trial experiment.
struct CampaignConfig {
  /// Number of repetitions (the paper uses 100).
  int repetitions = 100;
  /// Master seed; repetition i receives an independent seed derived from it.
  std::uint64_t master_seed = 42;
  /// Optional pool; when set, repetitions run in parallel.
  ThreadPool* pool = nullptr;
};

/// A single swept point: label -> aggregated metric.
struct CampaignPoint {
  std::string label;
  double x = 0.0;
  Summary metric;
};

/// Runs `metric(seed)` for `config.repetitions` derived seeds and aggregates.
Summary run_repeated(const CampaignConfig& config,
                     const std::function<double(std::uint64_t seed)>& metric);

/// Runs a 1-D sweep: for each x value, run_repeated() on metric(x, seed).
/// `label_fn` names the point (defaults to the numeric value).
std::vector<CampaignPoint> run_sweep(
    const CampaignConfig& config, const std::vector<double>& xs,
    const std::function<double(double x, std::uint64_t seed)>& metric,
    const std::function<std::string(double)>& label_fn = nullptr);

}  // namespace flim::core

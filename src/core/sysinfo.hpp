// Host introspection used to regenerate Table I (experimental setup).
#pragma once

#include <cstdint>
#include <string>

namespace flim::core {

/// Snapshot of the machine and build configuration the experiments ran on.
struct SystemInfo {
  std::string cpu_model;
  int logical_cores = 0;
  std::uint64_t total_ram_bytes = 0;
  std::string os;
  std::string compiler;
  std::string build_type;
  std::string library_version;
};

/// Collects the current host's information (best effort; fields that cannot
/// be determined are left as "unknown"/0).
SystemInfo collect_system_info();

/// Renders the Table-I-shaped report.
std::string format_system_info(const SystemInfo& info);

}  // namespace flim::core

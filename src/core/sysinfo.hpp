// Host introspection used to regenerate Table I (experimental setup), plus
// the stable hashing / code-fingerprint helpers campaign run files embed so
// a resumed or merged campaign can prove it was produced by a compatible
// spec and library revision.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace flim::core {

/// Snapshot of the machine and build configuration the experiments ran on.
struct SystemInfo {
  std::string cpu_model;
  int logical_cores = 0;
  std::uint64_t total_ram_bytes = 0;
  std::string os;
  std::string compiler;
  std::string build_type;
  std::string library_version;
};

/// Collects the current host's information (best effort; fields that cannot
/// be determined are left as "unknown"/0).
SystemInfo collect_system_info();

/// Renders the Table-I-shaped report.
std::string format_system_info(const SystemInfo& info);

/// 64-bit FNV-1a hash of `data`. The result depends only on the bytes, not
/// on platform, compiler, or build flags, so it is safe to persist (run-file
/// spec fingerprints) and compare across machines.
std::uint64_t fnv1a64(std::string_view data);

/// Formats `hash` as a fixed-width 16-digit lowercase hex string.
std::string hash_hex(std::uint64_t hash);

/// Fingerprint of the code that produces campaign numbers: the library
/// version (campaign outputs are only guaranteed comparable within one
/// version). Embedded in run-file headers; resume and merge refuse files
/// whose spec fingerprint (which mixes this in) does not match.
std::string code_fingerprint();

}  // namespace flim::core

#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/check.hpp"

namespace flim::core {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  FLIM_ASSERT(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::normal() {
  // Box-Muller. Draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform_double();
  } while (u1 <= 0.0);
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double mean) {
  FLIM_REQUIRE(mean >= 0.0, "Poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 32.0) {
    // Knuth: multiply uniforms until falling below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform_double();
    while (product > limit) {
      ++k;
      product *= uniform_double();
    }
    return k;
  }
  // Rounded-normal approximation; adequate for the arrival-count use case.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::derive(std::uint64_t stream) const {
  SplitMix64 sm(seed_ ^ (0xd1b54a32d192ed03ull * (stream + 1)));
  return Rng(sm.next());
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  FLIM_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Partial Fisher-Yates over an index vector. For the mask sizes used in
  // fault generation (<= a few million cells) this is fast and exact.
  std::vector<std::uint64_t> idx(n);
  for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + uniform(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace flim::core

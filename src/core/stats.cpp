#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/check.hpp"

namespace flim::core {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string Summary::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean << " ± " << stddev;
  return os.str();
}

Summary summarize(const RunningStats& s) {
  return Summary{s.mean(), s.stddev(), s.min(), s.max(), s.count()};
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  FLIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace flim::core

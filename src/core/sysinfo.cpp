#include "core/sysinfo.hpp"

#include <fstream>
#include <sstream>
#include <thread>

#include "core/version.hpp"

namespace flim::core {

namespace {

std::string read_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        auto value = line.substr(colon + 1);
        const auto first = value.find_first_not_of(" \t");
        return first == std::string::npos ? value : value.substr(first);
      }
    }
  }
  return "unknown";
}

std::uint64_t read_total_ram() {
  std::ifstream in("/proc/meminfo");
  std::string key;
  std::uint64_t kb = 0;
  std::string unit;
  while (in >> key >> kb >> unit) {
    if (key == "MemTotal:") return kb * 1024ull;
  }
  return 0;
}

std::string read_os() {
  std::ifstream in("/etc/os-release");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("PRETTY_NAME=", 0) == 0) {
      auto value = line.substr(12);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      return value;
    }
  }
  return "unknown";
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  std::ostringstream os;
  os << "gcc " << __GNUC__ << '.' << __GNUC_MINOR__ << '.'
     << __GNUC_PATCHLEVEL__;
  return os.str();
#else
  return "unknown";
#endif
}

std::string build_type_string() {
#if defined(NDEBUG)
  return "Release (NDEBUG)";
#else
  return "Debug (asserts on)";
#endif
}

}  // namespace

SystemInfo collect_system_info() {
  SystemInfo info;
  info.cpu_model = read_cpu_model();
  info.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  info.total_ram_bytes = read_total_ram();
  info.os = read_os();
  info.compiler = compiler_string();
  info.build_type = build_type_string();
  info.library_version = kVersionString;
  return info;
}

std::uint64_t fnv1a64(std::string_view data) {
  // FNV-1a, 64-bit: offset basis / prime from the reference specification.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::string code_fingerprint() {
  return std::string("flim-") + kVersionString;
}

std::string format_system_info(const SystemInfo& info) {
  std::ostringstream os;
  os << "Hardware\n"
     << "  CPU            " << info.cpu_model << "\n"
     << "  Logical cores  " << info.logical_cores << "\n"
     << "  RAM            "
     << (info.total_ram_bytes / (1024ull * 1024ull)) << " MiB\n"
     << "Software\n"
     << "  OS             " << info.os << "\n"
     << "  Compiler       " << info.compiler << "\n"
     << "  Build type     " << info.build_type << "\n"
     << "  FLIM library   " << info.library_version << "\n";
  return os.str();
}

}  // namespace flim::core

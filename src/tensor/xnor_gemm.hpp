// Packed XNOR-popcount matrix multiply -- the arithmetic core of binary
// layers executed as logic-in-memory.
//
// Given activations A (rows = output positions, cols = K product terms) and
// weights W (rows = output channels, cols = K), each output element is the
// ±1 dot product dot(A_i, W_j) = 2 * popcount(XNOR(A_i, W_j)) - K, i.e. the
// accumulate-over-XNOR the crossbar performs gate-by-gate.
//
// Every entry point takes an optional core::ThreadPool*: when given (and the
// row range is large enough to amortize task overhead) output rows are
// sharded into contiguous blocks across the pool. Output rows are disjoint
// and the accumulators are integers, so pooled and serial runs are
// bit-identical.
#pragma once

#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::core {
class ThreadPool;
}

namespace flim::tensor {

/// out[i, j] = ±1 dot product of activations row i with weights row j.
/// Shapes: activations [M, K], weights [N, K], out [M, N].
void xnor_gemm(const BitMatrix& activations, const BitMatrix& weights,
               IntTensor& out, core::ThreadPool* pool = nullptr);

/// Computes only output rows [row_begin, row_end); `out` must already have
/// shape [M, N]. Used for per-image fault scheduling.
void xnor_gemm_rows(const BitMatrix& activations, const BitMatrix& weights,
                    IntTensor& out, std::int64_t row_begin,
                    std::int64_t row_end, core::ThreadPool* pool = nullptr);

/// Variant with a per-output-element bit-flip applied to `flips` positions:
/// before accumulation, the product terms of output (i, j) whose indices are
/// set in `term_flips` row j are negated. Used by the product-term fault
/// granularity. `term_flips` has shape [N, K] (per output channel).
void xnor_gemm_term_faults(const BitMatrix& activations,
                           const BitMatrix& weights,
                           const BitMatrix& term_flip_mask,
                           const BitMatrix& term_sa0_mask,
                           const BitMatrix& term_sa1_mask, IntTensor& out,
                           core::ThreadPool* pool = nullptr);

/// Row-range variant of xnor_gemm_term_faults; `out` must be pre-shaped.
void xnor_gemm_term_faults_rows(const BitMatrix& activations,
                                const BitMatrix& weights,
                                const BitMatrix& term_flip_mask,
                                const BitMatrix& term_sa0_mask,
                                const BitMatrix& term_sa1_mask, IntTensor& out,
                                std::int64_t row_begin, std::int64_t row_end,
                                core::ThreadPool* pool = nullptr);

}  // namespace flim::tensor

#include "tensor/bit_matrix.hpp"

#include <algorithm>
#include <bit>

namespace flim::tensor {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  FLIM_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  words_per_row_ = (cols + 63) / 64;
  const int tail_bits = static_cast<int>(cols % 64);
  tail_mask_ = tail_bits == 0 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << tail_bits) - 1);
  words_.assign(static_cast<std::size_t>(rows_ * words_per_row_), 0);
}

bool BitMatrix::resize(std::int64_t rows, std::int64_t cols) {
  FLIM_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  rows_ = rows;
  cols_ = cols;
  words_per_row_ = (cols + 63) / 64;
  const int tail_bits = static_cast<int>(cols % 64);
  tail_mask_ = tail_bits == 0 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << tail_bits) - 1);
  const auto n = static_cast<std::size_t>(rows_ * words_per_row_);
  const bool grew = n > words_.capacity();
  words_.resize(n);
  return grew;
}

void BitMatrix::pack_rows_from_float(const float* values) {
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float* in = values + r * cols_;
    std::uint64_t* words = row_words(r);
    for (std::int64_t base = 0; base < cols_; base += 64) {
      const std::int64_t limit = std::min<std::int64_t>(64, cols_ - base);
      std::uint64_t word = 0;
      for (std::int64_t j = 0; j < limit; ++j) {
        if (in[base + j] >= 0.0f) word |= std::uint64_t{1} << j;
      }
      words[base / 64] = word;
    }
  }
}

int BitMatrix::get(std::int64_t r, std::int64_t c) const {
  FLIM_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const std::uint64_t word = row_words(r)[c / 64];
  return ((word >> (c % 64)) & 1u) ? +1 : -1;
}

void BitMatrix::set(std::int64_t r, std::int64_t c, int value) {
  FLIM_ASSERT(value == 1 || value == -1);
  set_bit(r, c, value > 0);
}

void BitMatrix::set_bit(std::int64_t r, std::int64_t c, bool bit) {
  FLIM_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  std::uint64_t& word = row_words(r)[c / 64];
  const std::uint64_t mask = std::uint64_t{1} << (c % 64);
  if (bit) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

void BitMatrix::flip(std::int64_t r, std::int64_t c) {
  FLIM_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  row_words(r)[c / 64] ^= std::uint64_t{1} << (c % 64);
}

std::int32_t BitMatrix::dot_row(std::int64_t r, const BitMatrix& other,
                                std::int64_t s) const {
  FLIM_ASSERT(cols_ == other.cols_);
  const std::uint64_t* a = row_words(r);
  const std::uint64_t* b = other.row_words(s);
  std::int64_t match = 0;
  const std::int64_t full = cols_ / 64;
  for (std::int64_t w = 0; w < full; ++w) {
    match += std::popcount(~(a[w] ^ b[w]));
  }
  if (full < words_per_row_) {
    match += std::popcount(~(a[full] ^ b[full]) & tail_mask_);
  }
  return static_cast<std::int32_t>(2 * match - cols_);
}

BitMatrix BitMatrix::from_float(const FloatTensor& m) {
  FLIM_REQUIRE(m.shape().rank() == 2, "from_float expects a rank-2 tensor");
  BitMatrix out(m.shape()[0], m.shape()[1]);
  out.pack_rows_from_float(m.data());
  return out;
}

FloatTensor BitMatrix::to_float() const {
  FloatTensor out(Shape{rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      out.at2(r, c) = static_cast<float>(get(r, c));
    }
  }
  return out;
}

}  // namespace flim::tensor

// Tensor shapes (row-major, up to rank 4 in practice: NCHW).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace flim::tensor {

/// Dimension sizes of a dense row-major tensor.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  /// Number of dimensions.
  std::size_t rank() const { return dims_.size(); }

  /// Size of dimension `i` (bounds-checked).
  std::int64_t dim(std::size_t i) const;

  /// Same as dim() but unchecked for hot paths.
  std::int64_t operator[](std::size_t i) const { return dims_[i]; }

  /// Total number of elements (1 for rank-0).
  std::int64_t numel() const;

  /// All dimensions.
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Row-major strides (elements, not bytes).
  std::vector<std::int64_t> strides() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 28, 28]" style rendering.
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace flim::tensor

#include "tensor/gemm.hpp"

#include "core/check.hpp"

namespace flim::tensor {

namespace {

void require_matrix(const FloatTensor& t, const char* name) {
  FLIM_REQUIRE(t.shape().rank() == 2,
               std::string(name) + " must be a rank-2 tensor");
}

/// Gives c shape [m, n], comparing dimensions directly so the hot path
/// (the compiled plan calls in with a pre-shaped c) builds no Shape
/// temporary.
void ensure_out(FloatTensor& c, std::int64_t m, std::int64_t n) {
  if (c.shape().rank() != 2 || c.shape()[0] != m || c.shape()[1] != n) {
    c = FloatTensor(Shape{m, n});
  }
}

}  // namespace

void gemm(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
          bool accumulate) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  FLIM_REQUIRE(b.shape()[0] == k, "inner dimensions must agree");
  ensure_out(c, m, n);
  if (!accumulate) c.fill(0.0f);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: streams B and C rows, good locality without tiling.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_at(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
             bool accumulate) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  const std::int64_t k = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  FLIM_REQUIRE(b.shape()[0] == k, "inner dimensions must agree");
  ensure_out(c, m, n);
  if (!accumulate) c.fill(0.0f);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_bt(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
             bool accumulate) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[0];
  FLIM_REQUIRE(b.shape()[1] == k, "inner dimensions must agree");
  ensure_out(c, m, n);
  if (!accumulate) c.fill(0.0f);

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Four B rows per pass: each A row element is loaded once per quad. The
  // four accumulators are independent and each still folds over kk in
  // order, so results are bit-identical to the plain loop.
  const std::int64_t n4 = n - (n % 4);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    std::int64_t j = 0;
    for (; j < n4; j += 4) {
      const float* b0 = pb + j * k;
      const float* b1 = pb + (j + 1) * k;
      const float* b2 = pb + (j + 2) * k;
      const float* b3 = pb + (j + 3) * k;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        a0 += av * b0[kk];
        a1 += av * b1[kk];
        a2 += av * b2[kk];
        a3 += av * b3[kk];
      }
      crow[j] += a0;
      crow[j + 1] += a1;
      crow[j + 2] += a2;
      crow[j + 3] += a3;
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] += acc;
    }
  }
}

}  // namespace flim::tensor

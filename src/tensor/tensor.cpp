#include "tensor/tensor.hpp"

namespace flim::tensor {

// Explicit instantiations for the element types used across the library;
// keeps template code paths compiled once and catches errors early.
template class Tensor<float>;
template class Tensor<std::int32_t>;
template class Tensor<std::uint8_t>;

}  // namespace flim::tensor

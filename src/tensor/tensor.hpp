// Dense row-major tensor over a trivially copyable element type.
//
// The library uses Tensor<float> for real-valued activations/weights (first
// layer, batch-norm parameters, training) and Tensor<std::int32_t> for
// popcount accumulators. Binarized operands use BitMatrix (bit_matrix.hpp).
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/check.hpp"
#include "tensor/shape.hpp"

namespace flim::tensor {

template <typename T>
class Tensor {
  static_assert(std::is_trivially_copyable_v<T>,
                "Tensor requires trivially copyable elements");

 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel())) {}

  /// Allocates and fills with `fill`.
  Tensor(Shape shape, T fill)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}

  /// Wraps existing data (copied); size must match the shape.
  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    FLIM_REQUIRE(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                 "data size must match shape");
  }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  /// Flat element access (unchecked in release builds).
  T& operator[](std::int64_t i) {
    FLIM_ASSERT(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  const T& operator[](std::int64_t i) const {
    FLIM_ASSERT(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D access for matrices shaped [rows, cols].
  T& at2(std::int64_t r, std::int64_t c) {
    FLIM_ASSERT(shape_.rank() == 2);
    return (*this)[r * shape_[1] + c];
  }
  const T& at2(std::int64_t r, std::int64_t c) const {
    FLIM_ASSERT(shape_.rank() == 2);
    return (*this)[r * shape_[1] + c];
  }

  /// 4-D access for NCHW tensors.
  T& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    FLIM_ASSERT(shape_.rank() == 4);
    return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  const T& at4(std::int64_t n, std::int64_t c, std::int64_t h,
               std::int64_t w) const {
    FLIM_ASSERT(shape_.rank() == 4);
    return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Sets every element to `value`.
  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes in place, resizing storage to the new element count. Returns
  /// true when the underlying storage had to grow (i.e. an allocation
  /// happened); shrinking or resizing within capacity is allocation-free,
  /// which is what lets Workspace buffers reach a zero-allocation steady
  /// state (the shape copy-assignment likewise reuses its dims capacity).
  /// Elements are NOT reset: callers must overwrite every element.
  bool resize(const Shape& new_shape) {
    const auto n = static_cast<std::size_t>(new_shape.numel());
    const bool grew = n > data_.capacity();
    shape_ = new_shape;
    data_.resize(n);
    return grew;
  }

  /// Returns a copy with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const {
    FLIM_REQUIRE(new_shape.numel() == shape_.numel(),
                 "reshape must preserve element count");
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
  }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using FloatTensor = Tensor<float>;
using IntTensor = Tensor<std::int32_t>;

}  // namespace flim::tensor

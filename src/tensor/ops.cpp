#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace flim::tensor {

FloatTensor sign(const FloatTensor& x) {
  FloatTensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] >= 0.0f ? 1.0f : -1.0f;
  }
  return out;
}

void add_inplace(FloatTensor& y, const FloatTensor& x) {
  FLIM_REQUIRE(y.shape() == x.shape(), "add_inplace shape mismatch");
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] += x[i];
}

void scale_inplace(FloatTensor& y, float s) {
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] *= s;
}

FloatTensor softmax_rows(const FloatTensor& logits) {
  FLIM_REQUIRE(logits.shape().rank() == 2, "softmax expects a matrix");
  const std::int64_t rows = logits.shape()[0];
  const std::int64_t cols = logits.shape()[1];
  FloatTensor out(logits.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const FloatTensor& m) {
  FLIM_REQUIRE(m.shape().rank() == 2, "argmax_rows expects a matrix");
  const std::int64_t rows = m.shape()[0];
  const std::int64_t cols = m.shape()[1];
  FLIM_REQUIRE(cols > 0, "argmax over empty rows");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

FloatTensor to_float(const IntTensor& m) {
  FloatTensor out(m.shape());
  for (std::int64_t i = 0; i < m.numel(); ++i) {
    out[i] = static_cast<float>(m[i]);
  }
  return out;
}

double accuracy(const FloatTensor& logits,
                const std::vector<std::int64_t>& labels) {
  FLIM_REQUIRE(logits.shape().rank() == 2, "accuracy expects logit matrix");
  FLIM_REQUIRE(static_cast<std::size_t>(logits.shape()[0]) == labels.size(),
               "one label per logits row required");
  if (labels.empty()) return 0.0;
  const auto preds = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace flim::tensor

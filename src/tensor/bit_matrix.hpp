// 64-bit packed matrices over the binary domain {-1, +1}.
//
// Encoding: bit 1 represents +1, bit 0 represents -1. Each row is padded to
// a whole number of 64-bit words; padding bits are kept at zero so popcount
// based reductions can mask only once per row tail.
//
// This packing is what makes the FLIM fast path fast: an XNOR between 64
// operand pairs is a single word operation, matching how the paper's
// TensorFlow implementation amortizes the XNOR over vectorized kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "tensor/tensor.hpp"

namespace flim::tensor {

/// Row-major packed binary matrix.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Creates rows x cols matrix with every element -1 (all bits clear).
  BitMatrix(std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t words_per_row() const { return words_per_row_; }

  /// Element access in the ±1 domain.
  int get(std::int64_t r, std::int64_t c) const;

  /// Sets element (r, c); `value` must be +1 or -1.
  void set(std::int64_t r, std::int64_t c, int value);

  /// Sets element (r, c) from a raw bit (true => +1).
  void set_bit(std::int64_t r, std::int64_t c, bool bit);

  /// Flips element (r, c).
  void flip(std::int64_t r, std::int64_t c);

  /// Resizes in place to rows x cols. Returns true when the word storage had
  /// to grow (an allocation happened); resizing within capacity is
  /// allocation-free. Word contents are NOT reset: callers must rewrite every
  /// word of every row they read (fill helpers such as im2col_binary_gather
  /// and pack_rows_from_float do), keeping the padding-bits-zero invariant.
  bool resize(std::int64_t rows, std::int64_t cols);

  /// Packs the rows of a [rows() x cols()] float matrix into this matrix
  /// (value >= 0 maps to +1), exactly like from_float but into existing
  /// storage. `values` must hold rows()*cols() floats, row-major.
  void pack_rows_from_float(const float* values);

  /// Raw word access for kernels.
  const std::uint64_t* row_words(std::int64_t r) const {
    FLIM_ASSERT(r >= 0 && r < rows_);
    return words_.data() + static_cast<std::size_t>(r * words_per_row_);
  }
  std::uint64_t* row_words(std::int64_t r) {
    FLIM_ASSERT(r >= 0 && r < rows_);
    return words_.data() + static_cast<std::size_t>(r * words_per_row_);
  }

  /// Mask of valid bits in the final word of each row (all-ones when the
  /// column count is a multiple of 64).
  std::uint64_t tail_mask() const { return tail_mask_; }

  /// ±1 dot product of row `r` with row `s` of `other`; both matrices must
  /// share the column count. Computed as 2*popcount(XNOR) - cols.
  std::int32_t dot_row(std::int64_t r, const BitMatrix& other,
                       std::int64_t s) const;

  /// Converts a ±1 float matrix (values must be exactly ±1 after sign()).
  /// Zero maps to +1 to mirror sign(0) = +1 used across the BNN literature.
  static BitMatrix from_float(const FloatTensor& m);

  /// Expands back to a ±1 float matrix (mainly for tests).
  FloatTensor to_float() const;

  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           words_ == other.words_;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t words_per_row_ = 0;
  std::uint64_t tail_mask_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace flim::tensor

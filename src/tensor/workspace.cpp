#include "tensor/workspace.hpp"

namespace flim::tensor {

namespace {

template <typename T>
T& slot_at(std::deque<T>& slots, std::size_t i, std::uint64_t& allocations) {
  while (slots.size() <= i) {
    slots.emplace_back();
    ++allocations;  // slot bookkeeping itself allocates on first use
  }
  return slots[i];
}

}  // namespace

FloatTensor& Workspace::float_slot(std::size_t i) {
  return slot_at(floats_, i, allocations_);
}

IntTensor& Workspace::int_slot(std::size_t i) {
  return slot_at(ints_, i, allocations_);
}

BitMatrix& Workspace::bit_slot(std::size_t i) {
  return slot_at(bits_, i, allocations_);
}

void Workspace::reshape(FloatTensor& t, const Shape& shape) {
  if (t.resize(shape)) ++allocations_;
}

void Workspace::reshape(IntTensor& t, const Shape& shape) {
  if (t.resize(shape)) ++allocations_;
}

void Workspace::reshape(BitMatrix& m, std::int64_t rows, std::int64_t cols) {
  if (m.resize(rows, cols)) ++allocations_;
}

}  // namespace flim::tensor

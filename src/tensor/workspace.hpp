// Workspace: a reusable scratch-buffer arena for compiled forward plans.
//
// A ForwardPlan (bnn/plan.hpp) assigns every scratch buffer it needs --
// ping-pong activation tensors, packed im2col activations, integer
// accumulators -- a stable slot index at plan time. A Workspace owns the
// storage behind those slots and hands it back call after call, so
// steady-state inference performs zero heap allocations: buffers grow to
// their high-water mark on the first execution and are only reshaped (never
// reallocated) afterwards.
//
// Thread-safety contract: a Workspace is NOT thread-safe. One Workspace per
// worker; a plan may be shared read-only by any number of workers, each
// executing through its own arena.
#pragma once

#include <cstdint>
#include <deque>

#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::tensor {

/// Slot-indexed arena of reusable tensors with an allocation counter.
class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Storage behind slot `i`; slots are created empty on first use.
  /// References stay valid while the Workspace lives (deque-backed).
  FloatTensor& float_slot(std::size_t i);
  IntTensor& int_slot(std::size_t i);
  BitMatrix& bit_slot(std::size_t i);

  /// Reshapes a buffer, counting any storage growth as an allocation.
  /// Contents are not reset; callers overwrite every element they read.
  void reshape(FloatTensor& t, const Shape& shape);
  void reshape(IntTensor& t, const Shape& shape);
  void reshape(BitMatrix& m, std::int64_t rows, std::int64_t cols);

  /// Cumulative count of buffer allocations (storage growth events)
  /// observed through this arena. Flat across repeated executions of the
  /// same plan <=> the steady state is allocation-free.
  std::uint64_t allocation_count() const { return allocations_; }

  std::size_t num_float_slots() const { return floats_.size(); }
  std::size_t num_int_slots() const { return ints_.size(); }
  std::size_t num_bit_slots() const { return bits_.size(); }

 private:
  // Deques keep slot references stable while later slots are created.
  std::deque<FloatTensor> floats_;
  std::deque<IntTensor> ints_;
  std::deque<BitMatrix> bits_;
  std::uint64_t allocations_ = 0;
};

}  // namespace flim::tensor

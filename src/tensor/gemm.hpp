// Real-valued GEMM kernels for the training substrate and the real first
// layer. Simple cache-blocked loops; the library's throughput-critical path
// is the packed XNOR GEMM (xnor_gemm.hpp), not these.
#pragma once

#include "tensor/tensor.hpp"

namespace flim::tensor {

/// C[M,N] = A[M,K] * B[K,N] (+ C when accumulate). All row-major.
void gemm(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
          bool accumulate = false);

/// C[M,N] = A[K,M]^T * B[K,N].
void gemm_at(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
             bool accumulate = false);

/// C[M,N] = A[M,K] * B[N,K]^T.
void gemm_bt(const FloatTensor& a, const FloatTensor& b, FloatTensor& c,
             bool accumulate = false);

}  // namespace flim::tensor

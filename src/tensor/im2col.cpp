#include "tensor/im2col.hpp"

#include <algorithm>
#include <limits>

#include "core/check.hpp"

namespace flim::tensor {

namespace {

void require_input(const FloatTensor& input, const ConvGeometry& g) {
  FLIM_REQUIRE(input.shape().rank() == 4, "conv input must be NCHW");
  FLIM_REQUIRE(input.shape()[1] == g.in_channels &&
                   input.shape()[2] == g.in_h && input.shape()[3] == g.in_w,
               "input shape must match conv geometry");
  FLIM_REQUIRE(g.stride >= 1, "stride must be >= 1");
  FLIM_REQUIRE(g.out_h() > 0 && g.out_w() > 0,
               "conv output would be empty; check geometry");
}

}  // namespace

FloatTensor im2col(const FloatTensor& input, const ConvGeometry& g,
                   float pad_value) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  FloatTensor out(Shape{n * oh * ow, k});

  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        float* dst = out.data() + row * k;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
                dst[idx] = pad_value;
              } else {
                dst[idx] = input.at4(b, c, iy, ix);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

FloatTensor col2im(const FloatTensor& patches, std::int64_t batch,
                   const ConvGeometry& g) {
  FLIM_REQUIRE(patches.shape().rank() == 2, "patches must be rank-2");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  FLIM_REQUIRE(patches.shape()[0] == batch * oh * ow,
               "patch row count must equal batch * out_h * out_w");
  FLIM_REQUIRE(patches.shape()[1] == k, "patch width must equal C*kh*kw");

  FloatTensor out(Shape{batch, g.in_channels, g.in_h, g.in_w});
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        const float* src = patches.data() + row * k;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                out.at4(b, c, iy, ix) += src[idx];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<std::int32_t> make_im2col_gather(const ConvGeometry& g) {
  FLIM_REQUIRE(g.stride >= 1, "stride must be >= 1");
  FLIM_REQUIRE(g.out_h() > 0 && g.out_w() > 0,
               "conv output would be empty; check geometry");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  FLIM_REQUIRE(g.in_channels * g.in_h * g.in_w <
                   std::numeric_limits<std::int32_t>::max(),
               "image block too large for 32-bit gather offsets");
  std::vector<std::int32_t> gather(static_cast<std::size_t>(oh * ow * k));

  std::int64_t pos = 0;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox, ++pos) {
      std::int32_t* dst = gather.data() + pos * k;
      std::int64_t idx = 0;
      for (std::int64_t c = 0; c < g.in_channels; ++c) {
        for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
          const std::int64_t iy = oy * g.stride + ky - g.pad;
          for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
            const std::int64_t ix = ox * g.stride + kx - g.pad;
            dst[idx] =
                (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w)
                    ? -1
                    : static_cast<std::int32_t>((c * g.in_h + iy) * g.in_w +
                                                ix);
          }
        }
      }
    }
  }
  return gather;
}

void im2col_binary_gather(const FloatTensor& input, const ConvGeometry& g,
                          const std::vector<std::int32_t>& gather,
                          BitMatrix& out) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t positions = g.out_h() * g.out_w();
  const std::int64_t k = g.patch_size();
  FLIM_REQUIRE(static_cast<std::int64_t>(gather.size()) == positions * k,
               "gather map does not match conv geometry");
  FLIM_REQUIRE(out.rows() == n * positions && out.cols() == k,
               "out must be pre-sized [N*out_h*out_w, patch_size]");

  const std::int64_t chw = g.in_channels * g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = input.data() + b * chw;
    for (std::int64_t p = 0; p < positions; ++p, ++row) {
      const std::int32_t* src = gather.data() + p * k;
      std::uint64_t* words = out.row_words(row);
      for (std::int64_t base = 0; base < k; base += 64) {
        const std::int64_t limit = std::min<std::int64_t>(64, k - base);
        std::uint64_t word = 0;
        for (std::int64_t j = 0; j < limit; ++j) {
          const std::int32_t off = src[base + j];
          // Padding (off < 0) stays bit 0 (-1), matching im2col_binary.
          if (off >= 0 && img[off] >= 0.0f) word |= std::uint64_t{1} << j;
        }
        words[base / 64] = word;
      }
    }
  }
}

void im2col_gather(const FloatTensor& input, const ConvGeometry& g,
                   const std::vector<std::int32_t>& gather, float pad_value,
                   FloatTensor& out) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t positions = g.out_h() * g.out_w();
  const std::int64_t k = g.patch_size();
  FLIM_REQUIRE(static_cast<std::int64_t>(gather.size()) == positions * k,
               "gather map does not match conv geometry");
  // Dimension check without a Shape temporary (hot path: called per plan
  // step with a pre-shaped out).
  FLIM_REQUIRE(out.shape().rank() == 2 && out.shape()[0] == n * positions &&
                   out.shape()[1] == k,
               "out must be pre-shaped [N*out_h*out_w, patch_size]");

  const std::int64_t chw = g.in_channels * g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = input.data() + b * chw;
    for (std::int64_t p = 0; p < positions; ++p, ++row) {
      const std::int32_t* src = gather.data() + p * k;
      float* dst = out.data() + row * k;
      for (std::int64_t j = 0; j < k; ++j) {
        const std::int32_t off = src[j];
        dst[j] = off >= 0 ? img[off] : pad_value;
      }
    }
  }
}

void im2col_binary_packed(const FloatTensor& input, const ConvGeometry& g,
                          BitMatrix& rows_scratch, BitMatrix& out) {
  require_input(input, g);
  FLIM_REQUIRE(g.kernel_w <= 64,
               "im2col_binary_packed supports kernel_w <= 64");
  const std::int64_t n = input.shape()[0];
  const std::int64_t c_in = g.in_channels;
  const std::int64_t h = g.in_h;
  const std::int64_t w = g.in_w;
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  const std::int64_t padded = w + 2 * g.pad;
  FLIM_REQUIRE(rows_scratch.rows() == n * c_in * h &&
                   rows_scratch.cols() == padded,
               "rows_scratch must be pre-sized [N*C*H, W + 2*pad]");
  FLIM_REQUIRE(out.rows() == n * oh * ow && out.cols() == k,
               "out must be pre-sized [N*out_h*out_w, patch_size]");

  // Phase 1: binarize every image row once, left-shifted by `pad` so window
  // offsets are never negative; flank bits stay 0 (-1), matching the
  // padding convention of im2col_binary.
  const std::int64_t row_words = rows_scratch.words_per_row();
  for (std::int64_t r = 0; r < rows_scratch.rows(); ++r) {
    const float* in = input.data() + r * w;
    std::uint64_t* words = rows_scratch.row_words(r);
    for (std::int64_t t = 0; t < row_words; ++t) words[t] = 0;
    for (std::int64_t x = 0; x < w; ++x) {
      if (in[x] >= 0.0f) {
        const std::int64_t bit = x + g.pad;
        words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    }
  }

  // Phase 2: each patch row is C*kh window extractions of kernel_w bits in
  // (channel, kernel-row) order -- the same bit order im2col_binary
  // produces one bit at a time.
  const std::uint64_t kw_mask =
      g.kernel_w == 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << g.kernel_w) - 1);
  const int seg_len = static_cast<int>(g.kernel_w);
  const std::int64_t out_words = out.words_per_row();

  if (padded <= 64) {
    // Fast path (every conv in the zoo: padded row fits one word). The
    // whole padded row stays in a register and the ox loop is innermost, so
    // placing one window is shift+mask+or with no loads but the output
    // read-modify-write. Output words are OR-accumulated, so zero the block
    // first.
    std::int64_t out_row = 0;
    for (std::int64_t b = 0; b < n; ++b) {
      const std::int64_t img_row0 = b * c_in * h;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        std::uint64_t* block = out.row_words(out_row);  // ow contiguous rows
        std::fill(block, block + ow * out_words, std::uint64_t{0});
        std::int64_t bitpos = 0;
        for (std::int64_t c = 0; c < c_in; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky, bitpos += seg_len) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= h) continue;  // padding row: bits stay 0
            const std::uint64_t row =
                rows_scratch.row_words(img_row0 + c * h + iy)[0];
            const std::int64_t wi = bitpos >> 6;
            const int off = static_cast<int>(bitpos & 63);
            std::uint64_t* dst = block + wi;
            if (off + seg_len <= 64) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const std::uint64_t v = (row >> (ox * g.stride)) & kw_mask;
                dst[ox * out_words] |= v << off;
              }
            } else {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const std::uint64_t v = (row >> (ox * g.stride)) & kw_mask;
                dst[ox * out_words] |= v << off;
                dst[ox * out_words + 1] |= v >> (64 - off);
              }
            }
          }
        }
        out_row += ow;
      }
    }
    return;
  }

  // General path: append kernel_w-bit windows left to right.
  std::int64_t out_row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    const std::int64_t img_row0 = b * c_in * h;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_row) {
        const std::int64_t off = ox * g.stride;
        const std::int64_t lo = off >> 6;
        const int sh = static_cast<int>(off & 63);
        std::uint64_t* ow_words = out.row_words(out_row);
        std::uint64_t cur = 0;
        int bpos = 0;
        std::int64_t wi = 0;
        for (std::int64_t c = 0; c < c_in; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            std::uint64_t v = 0;
            if (iy >= 0 && iy < h) {
              const std::uint64_t* pr =
                  rows_scratch.row_words(img_row0 + c * h + iy);
              v = pr[lo] >> sh;
              if (sh != 0 && lo + 1 < row_words) v |= pr[lo + 1] << (64 - sh);
              v &= kw_mask;
            }
            // Append seg_len bits.
            cur |= v << bpos;
            bpos += seg_len;
            if (bpos >= 64) {
              ow_words[wi++] = cur;
              bpos -= 64;
              cur = bpos == 0 ? 0 : v >> (seg_len - bpos);
            }
          }
        }
        if (bpos > 0) ow_words[wi] = cur;
      }
    }
  }
}

BitMatrix im2col_binary(const FloatTensor& input, const ConvGeometry& g) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  BitMatrix out(n * oh * ow, k);

  // Hot path of every binarized convolution: collect the patch into a byte
  // buffer first, then pack 64 bits per word -- several times faster than
  // per-bit masked writes.
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= g.in_h) {
              // Whole kernel row padded: contributes -1 (bit 0).
              for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
                bits[static_cast<std::size_t>(idx)] = 0;
              }
              continue;
            }
            const float* in_row =
                input.data() + ((b * g.in_channels + c) * g.in_h + iy) * g.in_w;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              bits[static_cast<std::size_t>(idx)] =
                  (ix >= 0 && ix < g.in_w && in_row[ix] >= 0.0f) ? 1 : 0;
            }
          }
        }
        std::uint64_t* words = out.row_words(row);
        for (std::int64_t base = 0; base < k; base += 64) {
          const std::int64_t limit = std::min<std::int64_t>(64, k - base);
          std::uint64_t word = 0;
          for (std::int64_t j = 0; j < limit; ++j) {
            word |= std::uint64_t{bits[static_cast<std::size_t>(base + j)]}
                    << j;
          }
          words[base / 64] = word;
        }
      }
    }
  }
  return out;
}

}  // namespace flim::tensor

#include "tensor/im2col.hpp"

#include "core/check.hpp"

namespace flim::tensor {

namespace {

void require_input(const FloatTensor& input, const ConvGeometry& g) {
  FLIM_REQUIRE(input.shape().rank() == 4, "conv input must be NCHW");
  FLIM_REQUIRE(input.shape()[1] == g.in_channels &&
                   input.shape()[2] == g.in_h && input.shape()[3] == g.in_w,
               "input shape must match conv geometry");
  FLIM_REQUIRE(g.stride >= 1, "stride must be >= 1");
  FLIM_REQUIRE(g.out_h() > 0 && g.out_w() > 0,
               "conv output would be empty; check geometry");
}

}  // namespace

FloatTensor im2col(const FloatTensor& input, const ConvGeometry& g,
                   float pad_value) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  FloatTensor out(Shape{n * oh * ow, k});

  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        float* dst = out.data() + row * k;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) {
                dst[idx] = pad_value;
              } else {
                dst[idx] = input.at4(b, c, iy, ix);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

FloatTensor col2im(const FloatTensor& patches, std::int64_t batch,
                   const ConvGeometry& g) {
  FLIM_REQUIRE(patches.shape().rank() == 2, "patches must be rank-2");
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  FLIM_REQUIRE(patches.shape()[0] == batch * oh * ow,
               "patch row count must equal batch * out_h * out_w");
  FLIM_REQUIRE(patches.shape()[1] == k, "patch width must equal C*kh*kw");

  FloatTensor out(Shape{batch, g.in_channels, g.in_h, g.in_w});
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        const float* src = patches.data() + row * k;
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                out.at4(b, c, iy, ix) += src[idx];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

BitMatrix im2col_binary(const FloatTensor& input, const ConvGeometry& g) {
  require_input(input, g);
  const std::int64_t n = input.shape()[0];
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t k = g.patch_size();
  BitMatrix out(n * oh * ow, k);

  // Hot path of every binarized convolution: collect the patch into a byte
  // buffer first, then pack 64 bits per word -- several times faster than
  // per-bit masked writes.
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        std::int64_t idx = 0;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= g.in_h) {
              // Whole kernel row padded: contributes -1 (bit 0).
              for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
                bits[static_cast<std::size_t>(idx)] = 0;
              }
              continue;
            }
            const float* in_row =
                input.data() + ((b * g.in_channels + c) * g.in_h + iy) * g.in_w;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              bits[static_cast<std::size_t>(idx)] =
                  (ix >= 0 && ix < g.in_w && in_row[ix] >= 0.0f) ? 1 : 0;
            }
          }
        }
        std::uint64_t* words = out.row_words(row);
        for (std::int64_t base = 0; base < k; base += 64) {
          const std::int64_t limit = std::min<std::int64_t>(64, k - base);
          std::uint64_t word = 0;
          for (std::int64_t j = 0; j < limit; ++j) {
            word |= std::uint64_t{bits[static_cast<std::size_t>(base + j)]}
                    << j;
          }
          words[base / 64] = word;
        }
      }
    }
  }
  return out;
}

}  // namespace flim::tensor

// im2col patch extraction lowering conv2d to GEMM / XNOR-GEMM.
//
// Input layout: NCHW. The produced patch matrix has one row per output
// spatial position (per batch element) and K = C*kh*kw columns ordered
// (channel, kernel-row, kernel-col) -- matching the weight matrix layout
// produced by the layers.
#pragma once

#include <cstdint>

#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::tensor {

/// Static geometry of a conv2d lowering.
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Extracts float patches from input[N,C,H,W] into [N*out_h*out_w, K].
/// Padding contributes `pad_value`.
FloatTensor im2col(const FloatTensor& input, const ConvGeometry& g,
                   float pad_value = 0.0f);

/// Scatters gradient patches [N*out_h*out_w, K] back onto [N,C,H,W]
/// (the adjoint of im2col); used by conv backward.
FloatTensor col2im(const FloatTensor& patches, std::int64_t batch,
                   const ConvGeometry& g);

/// Extracts ±1 patches directly into a packed BitMatrix. Elements >= 0 map to
/// +1. Padding contributes -1 (bit 0), matching sign(0-centered padding) in
/// binarized feature maps.
BitMatrix im2col_binary(const FloatTensor& input, const ConvGeometry& g);

}  // namespace flim::tensor

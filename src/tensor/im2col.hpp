// im2col patch extraction lowering conv2d to GEMM / XNOR-GEMM.
//
// Input layout: NCHW. The produced patch matrix has one row per output
// spatial position (per batch element) and K = C*kh*kw columns ordered
// (channel, kernel-row, kernel-col) -- matching the weight matrix layout
// produced by the layers.
#pragma once

#include <cstdint>

#include "tensor/bit_matrix.hpp"
#include "tensor/tensor.hpp"

namespace flim::tensor {

/// Static geometry of a conv2d lowering.
struct ConvGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Extracts float patches from input[N,C,H,W] into [N*out_h*out_w, K].
/// Padding contributes `pad_value`.
FloatTensor im2col(const FloatTensor& input, const ConvGeometry& g,
                   float pad_value = 0.0f);

/// Scatters gradient patches [N*out_h*out_w, K] back onto [N,C,H,W]
/// (the adjoint of im2col); used by conv backward.
FloatTensor col2im(const FloatTensor& patches, std::int64_t batch,
                   const ConvGeometry& g);

/// Extracts ±1 patches directly into a packed BitMatrix. Elements >= 0 map to
/// +1. Padding contributes -1 (bit 0), matching sign(0-centered padding) in
/// binarized feature maps.
BitMatrix im2col_binary(const FloatTensor& input, const ConvGeometry& g);

/// Precomputed per-image gather map for a conv lowering: entry
/// [p * patch_size + idx] is the flat offset into one image's C*H*W block
/// feeding patch column `idx` of output position `p` (row-major oy, ox), or
/// -1 for padding. Computed once at plan time so the per-batch patch
/// extraction is a straight indexed gather instead of re-derived geometry.
std::vector<std::int32_t> make_im2col_gather(const ConvGeometry& g);

/// Gather-based im2col_binary into existing storage: bit-identical to
/// im2col_binary. `out` must be pre-sized [N*out_h*out_w, patch_size] and
/// every word is rewritten (safe after a BitMatrix::resize).
void im2col_binary_gather(const FloatTensor& input, const ConvGeometry& g,
                          const std::vector<std::int32_t>& gather,
                          BitMatrix& out);

/// Gather-based float im2col into existing storage: value-identical to
/// im2col. `out` must be pre-shaped [N*out_h*out_w, patch_size].
void im2col_gather(const FloatTensor& input, const ConvGeometry& g,
                   const std::vector<std::int32_t>& gather, float pad_value,
                   FloatTensor& out);

/// Word-level im2col_binary, bit-identical to im2col_binary: binarizes each
/// image row once into `rows_scratch` (pre-sized [N*C*H, W + 2*pad], the
/// rows zero-padded on both flanks) and then assembles every patch row from
/// kernel_w-bit window extractions instead of per-bit float gathers -- the
/// compiled plan's fast path. Requires kernel_w <= 64 (wider kernels use
/// im2col_binary_gather). `out` must be pre-sized [N*out_h*out_w,
/// patch_size]; every word of both matrices is rewritten.
void im2col_binary_packed(const FloatTensor& input, const ConvGeometry& g,
                          BitMatrix& rows_scratch, BitMatrix& out);

}  // namespace flim::tensor

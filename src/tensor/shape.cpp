#include "tensor/shape.hpp"

#include <sstream>

#include "core/check.hpp"

namespace flim::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) {
    FLIM_REQUIRE(d >= 0, "shape dimensions must be non-negative");
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) {
    FLIM_REQUIRE(d >= 0, "shape dimensions must be non-negative");
  }
}

std::int64_t Shape::dim(std::size_t i) const {
  FLIM_REQUIRE(i < dims_.size(), "shape dimension index out of range");
  return dims_[i];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace flim::tensor

// Elementwise and reduction helpers shared by inference and training.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace flim::tensor {

/// out = sign(x) in ±1 (sign(0) = +1, the BNN convention).
FloatTensor sign(const FloatTensor& x);

/// In-place y += x (shapes must match).
void add_inplace(FloatTensor& y, const FloatTensor& x);

/// In-place y *= s.
void scale_inplace(FloatTensor& y, float s);

/// Row-wise softmax of a [rows, cols] matrix (numerically stabilized).
FloatTensor softmax_rows(const FloatTensor& logits);

/// Index of the maximum element in each row of a [rows, cols] matrix.
std::vector<std::int64_t> argmax_rows(const FloatTensor& m);

/// Converts an IntTensor to float elementwise.
FloatTensor to_float(const IntTensor& m);

/// Classification accuracy in [0, 1]: fraction of rows whose argmax equals
/// the label.
double accuracy(const FloatTensor& logits,
                const std::vector<std::int64_t>& labels);

}  // namespace flim::tensor

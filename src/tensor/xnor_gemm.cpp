#include "tensor/xnor_gemm.hpp"

#include <bit>

#include "core/check.hpp"

namespace flim::tensor {

namespace {

void require_shapes(const BitMatrix& activations, const BitMatrix& weights) {
  FLIM_REQUIRE(activations.cols() == weights.cols(),
               "activations and weights must agree on K");
}

void require_mask(const BitMatrix& mask, const BitMatrix& weights,
                  const char* name) {
  FLIM_REQUIRE(mask.rows() == weights.rows() && mask.cols() == weights.cols(),
               std::string(name) + " mask must match weight shape");
}

void ensure_out(IntTensor& out, std::int64_t m, std::int64_t n) {
  if (out.shape() != Shape{m, n}) out = IntTensor(Shape{m, n});
}

}  // namespace

void xnor_gemm_rows(const BitMatrix& activations, const BitMatrix& weights,
                    IntTensor& out, std::int64_t row_begin,
                    std::int64_t row_end) {
  require_shapes(activations, weights);
  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  FLIM_REQUIRE((out.shape() == Shape{m, n}), "out must be pre-shaped [M, N]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end && row_end <= m,
               "row range out of bounds");

  const std::int64_t words = activations.words_per_row();
  const std::uint64_t tail = activations.tail_mask();
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const std::uint64_t* a = activations.row_words(i);
    std::int32_t* orow = out.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::uint64_t* w = weights.row_words(j);
      std::int64_t match = 0;
      for (std::int64_t t = 0; t + 1 < words; ++t) {
        match += std::popcount(~(a[t] ^ w[t]));
      }
      if (words > 0) {
        match += std::popcount(~(a[words - 1] ^ w[words - 1]) & tail);
      }
      orow[j] = static_cast<std::int32_t>(2 * match - k);
    }
  }
}

void xnor_gemm(const BitMatrix& activations, const BitMatrix& weights,
               IntTensor& out) {
  require_shapes(activations, weights);
  ensure_out(out, activations.rows(), weights.rows());
  xnor_gemm_rows(activations, weights, out, 0, activations.rows());
}

void xnor_gemm_term_faults_rows(const BitMatrix& activations,
                                const BitMatrix& weights,
                                const BitMatrix& term_flip_mask,
                                const BitMatrix& term_sa0_mask,
                                const BitMatrix& term_sa1_mask, IntTensor& out,
                                std::int64_t row_begin, std::int64_t row_end) {
  require_shapes(activations, weights);
  require_mask(term_flip_mask, weights, "flip");
  require_mask(term_sa0_mask, weights, "sa0");
  require_mask(term_sa1_mask, weights, "sa1");

  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  FLIM_REQUIRE((out.shape() == Shape{m, n}), "out must be pre-shaped [M, N]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end && row_end <= m,
               "row range out of bounds");

  const std::int64_t words = activations.words_per_row();
  const std::uint64_t tail = activations.tail_mask();
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const std::uint64_t* a = activations.row_words(i);
    std::int32_t* orow = out.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::uint64_t* w = weights.row_words(j);
      const std::uint64_t* fl = term_flip_mask.row_words(j);
      const std::uint64_t* s0 = term_sa0_mask.row_words(j);
      const std::uint64_t* s1 = term_sa1_mask.row_words(j);
      std::int64_t match = 0;
      for (std::int64_t t = 0; t < words; ++t) {
        const std::uint64_t valid = (t + 1 == words) ? tail : ~std::uint64_t{0};
        // Correct products, then flips, then stuck-at overrides (a stuck
        // device cannot toggle, so stuck-at wins over flip).
        std::uint64_t prod = ~(a[t] ^ w[t]);
        prod ^= fl[t];
        prod &= ~s0[t];  // stuck-at-0 forces the product term to -1
        prod |= s1[t];   // stuck-at-1 forces the product term to +1
        match += std::popcount(prod & valid);
      }
      orow[j] = static_cast<std::int32_t>(2 * match - k);
    }
  }
}

void xnor_gemm_term_faults(const BitMatrix& activations,
                           const BitMatrix& weights,
                           const BitMatrix& term_flip_mask,
                           const BitMatrix& term_sa0_mask,
                           const BitMatrix& term_sa1_mask, IntTensor& out) {
  ensure_out(out, activations.rows(), weights.rows());
  xnor_gemm_term_faults_rows(activations, weights, term_flip_mask,
                             term_sa0_mask, term_sa1_mask, out, 0,
                             activations.rows());
}

}  // namespace flim::tensor

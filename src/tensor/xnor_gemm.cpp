#include "tensor/xnor_gemm.hpp"

#include <algorithm>
#include <bit>

#include "core/check.hpp"
#include "core/thread_pool.hpp"

namespace flim::tensor {

namespace {

// Below this many output rows a range runs serially even when a pool is
// given: task submission would cost more than the popcount work it moves.
constexpr std::int64_t kMinRowsPerShard = 32;

void require_shapes(const BitMatrix& activations, const BitMatrix& weights) {
  FLIM_REQUIRE(activations.cols() == weights.cols(),
               "activations and weights must agree on K");
}

void require_mask(const BitMatrix& mask, const BitMatrix& weights,
                  const char* name) {
  FLIM_REQUIRE(mask.rows() == weights.rows() && mask.cols() == weights.cols(),
               std::string(name) + " mask must match weight shape");
}

bool is_shaped(const IntTensor& out, std::int64_t m, std::int64_t n) {
  return out.shape().rank() == 2 && out.shape()[0] == m &&
         out.shape()[1] == n;
}

void ensure_out(IntTensor& out, std::int64_t m, std::int64_t n) {
  if (!is_shaped(out, m, n)) out = IntTensor(Shape{m, n});
}

/// Runs `kernel(begin, end)` over [row_begin, row_end), sharded into
/// contiguous row blocks on `pool` when the range is big enough. Blocks are
/// disjoint, so results are identical to the serial call in any case.
template <typename Kernel>
void shard_rows(std::int64_t row_begin, std::int64_t row_end,
                core::ThreadPool* pool, const Kernel& kernel) {
  const std::int64_t rows = row_end - row_begin;
  if (pool == nullptr || pool->size() <= 1 || rows < 2 * kMinRowsPerShard) {
    kernel(row_begin, row_end);
    return;
  }
  const std::int64_t max_shards =
      std::min<std::int64_t>(rows / kMinRowsPerShard,
                             static_cast<std::int64_t>(pool->size()) * 4);
  const std::int64_t shards = std::max<std::int64_t>(1, max_shards);
  const std::int64_t block = (rows + shards - 1) / shards;
  pool->parallel_for(static_cast<std::size_t>(shards), [&](std::size_t s) {
    const std::int64_t begin =
        row_begin + static_cast<std::int64_t>(s) * block;
    const std::int64_t end = std::min(begin + block, row_end);
    if (begin < end) kernel(begin, end);
  });
}

void xnor_gemm_rows_serial(const BitMatrix& activations,
                           const BitMatrix& weights, IntTensor& out,
                           std::int64_t row_begin, std::int64_t row_end) {
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  const std::int64_t words = activations.words_per_row();
  const std::uint64_t tail = activations.tail_mask();
  // Four weight rows per pass: each activation word is loaded once per
  // quad instead of once per output channel. Integer popcount sums are
  // associative, so the blocking is bit-identical to the plain loop.
  const std::int64_t n4 = n - (n % 4);
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const std::uint64_t* a = activations.row_words(i);
    std::int32_t* orow = out.data() + i * n;
    std::int64_t j = 0;
    for (; j < n4; j += 4) {
      const std::uint64_t* w0 = weights.row_words(j);
      const std::uint64_t* w1 = weights.row_words(j + 1);
      const std::uint64_t* w2 = weights.row_words(j + 2);
      const std::uint64_t* w3 = weights.row_words(j + 3);
      std::int64_t m0 = 0, m1 = 0, m2 = 0, m3 = 0;
      for (std::int64_t t = 0; t + 1 < words; ++t) {
        const std::uint64_t av = a[t];
        m0 += std::popcount(~(av ^ w0[t]));
        m1 += std::popcount(~(av ^ w1[t]));
        m2 += std::popcount(~(av ^ w2[t]));
        m3 += std::popcount(~(av ^ w3[t]));
      }
      if (words > 0) {
        const std::uint64_t av = a[words - 1];
        m0 += std::popcount(~(av ^ w0[words - 1]) & tail);
        m1 += std::popcount(~(av ^ w1[words - 1]) & tail);
        m2 += std::popcount(~(av ^ w2[words - 1]) & tail);
        m3 += std::popcount(~(av ^ w3[words - 1]) & tail);
      }
      orow[j] = static_cast<std::int32_t>(2 * m0 - k);
      orow[j + 1] = static_cast<std::int32_t>(2 * m1 - k);
      orow[j + 2] = static_cast<std::int32_t>(2 * m2 - k);
      orow[j + 3] = static_cast<std::int32_t>(2 * m3 - k);
    }
    for (; j < n; ++j) {
      const std::uint64_t* w = weights.row_words(j);
      std::int64_t match = 0;
      for (std::int64_t t = 0; t + 1 < words; ++t) {
        match += std::popcount(~(a[t] ^ w[t]));
      }
      if (words > 0) {
        match += std::popcount(~(a[words - 1] ^ w[words - 1]) & tail);
      }
      orow[j] = static_cast<std::int32_t>(2 * match - k);
    }
  }
}

void xnor_gemm_term_faults_rows_serial(
    const BitMatrix& activations, const BitMatrix& weights,
    const BitMatrix& term_flip_mask, const BitMatrix& term_sa0_mask,
    const BitMatrix& term_sa1_mask, IntTensor& out, std::int64_t row_begin,
    std::int64_t row_end) {
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  const std::int64_t words = activations.words_per_row();
  const std::uint64_t tail = activations.tail_mask();
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const std::uint64_t* a = activations.row_words(i);
    std::int32_t* orow = out.data() + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::uint64_t* w = weights.row_words(j);
      const std::uint64_t* fl = term_flip_mask.row_words(j);
      const std::uint64_t* s0 = term_sa0_mask.row_words(j);
      const std::uint64_t* s1 = term_sa1_mask.row_words(j);
      std::int64_t match = 0;
      for (std::int64_t t = 0; t < words; ++t) {
        const std::uint64_t valid = (t + 1 == words) ? tail : ~std::uint64_t{0};
        // Correct products, then flips, then stuck-at overrides (a stuck
        // device cannot toggle, so stuck-at wins over flip).
        std::uint64_t prod = ~(a[t] ^ w[t]);
        prod ^= fl[t];
        prod &= ~s0[t];  // stuck-at-0 forces the product term to -1
        prod |= s1[t];   // stuck-at-1 forces the product term to +1
        match += std::popcount(prod & valid);
      }
      orow[j] = static_cast<std::int32_t>(2 * match - k);
    }
  }
}

}  // namespace

void xnor_gemm_rows(const BitMatrix& activations, const BitMatrix& weights,
                    IntTensor& out, std::int64_t row_begin,
                    std::int64_t row_end, core::ThreadPool* pool) {
  require_shapes(activations, weights);
  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  FLIM_REQUIRE(is_shaped(out, m, n), "out must be pre-shaped [M, N]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end && row_end <= m,
               "row range out of bounds");
  shard_rows(row_begin, row_end, pool,
             [&](std::int64_t begin, std::int64_t end) {
               xnor_gemm_rows_serial(activations, weights, out, begin, end);
             });
}

void xnor_gemm(const BitMatrix& activations, const BitMatrix& weights,
               IntTensor& out, core::ThreadPool* pool) {
  require_shapes(activations, weights);
  ensure_out(out, activations.rows(), weights.rows());
  xnor_gemm_rows(activations, weights, out, 0, activations.rows(), pool);
}

void xnor_gemm_term_faults_rows(const BitMatrix& activations,
                                const BitMatrix& weights,
                                const BitMatrix& term_flip_mask,
                                const BitMatrix& term_sa0_mask,
                                const BitMatrix& term_sa1_mask, IntTensor& out,
                                std::int64_t row_begin, std::int64_t row_end,
                                core::ThreadPool* pool) {
  require_shapes(activations, weights);
  require_mask(term_flip_mask, weights, "flip");
  require_mask(term_sa0_mask, weights, "sa0");
  require_mask(term_sa1_mask, weights, "sa1");

  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  FLIM_REQUIRE(is_shaped(out, m, n), "out must be pre-shaped [M, N]");
  FLIM_REQUIRE(row_begin >= 0 && row_begin <= row_end && row_end <= m,
               "row range out of bounds");
  shard_rows(row_begin, row_end, pool,
             [&](std::int64_t begin, std::int64_t end) {
               xnor_gemm_term_faults_rows_serial(activations, weights,
                                                 term_flip_mask, term_sa0_mask,
                                                 term_sa1_mask, out, begin,
                                                 end);
             });
}

void xnor_gemm_term_faults(const BitMatrix& activations,
                           const BitMatrix& weights,
                           const BitMatrix& term_flip_mask,
                           const BitMatrix& term_sa0_mask,
                           const BitMatrix& term_sa1_mask, IntTensor& out,
                           core::ThreadPool* pool) {
  ensure_out(out, activations.rows(), weights.rows());
  xnor_gemm_term_faults_rows(activations, weights, term_flip_mask,
                             term_sa0_mask, term_sa1_mask, out, 0,
                             activations.rows(), pool);
}

}  // namespace flim::tensor

// X-Fault-style device-level execution engine.
//
// Reproduces the baseline the paper compares against: "X-Fault describes the
// most detailed end-to-end fault injection platform injecting different
// traditional faults at the device level. However, this approach limits the
// platform's performance." Every XNOR product term is executed as a full
// micro-op schedule (operand programming pulses, MAGIC/IMPLY gate steps with
// transient device integration, sense-amp read) on a simulated crossbar.
//
// Fault realization at device level is driven by the registered fault
// models of each entry's component stack (fault_registry.hpp): a
// component's flip plane corrupts the stored state of operand A before the
// gate evaluates (transient deviation, gated by the model's time
// semantics, e.g. the dynamic model's period), and its stuck-at planes
// plant stuck result-cell devices (kStuckAt0/1). Models whose effect does
// not reduce to that shape (drift, readdisturb) are rejected with a
// pointer to the FLIM engine. Legacy single-kind entries are adapted to
// the matching model, bit-identically to the old FaultKind switch.
//
// Gate assignment is weight-stationary and identical to the FLIM
// product-term mapping (gate = (channel*K + term) mod gates), so FLIM and
// the device engine are bit-equivalent on the same mask -- the
// cross-validation the paper performs between FLIM and X-Fault.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bnn/engine.hpp"
#include "fault/fault_vector_file.hpp"
#include "lim/crossbar.hpp"
#include "lim/logic_family.hpp"

namespace flim::xfault {

/// Configuration of the device platform.
struct DeviceEngineConfig {
  /// Electrical configuration; rows/cols give the default per-layer array
  /// geometry (gates = rows * (cols / kCellsPerGate)) used when a layer has
  /// no fault entry. Layers with an entry get an array sized to the entry's
  /// mask grid (rows = mask rows, cols = mask cols * kCellsPerGate).
  lim::CrossbarConfig crossbar;
  lim::LogicFamilyKind family = lim::LogicFamilyKind::kMagic;
};

/// Aggregate device-activity counters across all layer arrays.
struct DeviceEngineStats {
  std::uint64_t xnor_ops = 0;
  lim::CrossbarStats crossbar;
};

/// Engine routing every XNOR through the memristive crossbar simulation.
class DeviceEngine final : public bnn::XnorExecutionEngine {
 public:
  explicit DeviceEngine(DeviceEngineConfig config);

  /// Builds per-layer fault state from a fault vector file. Mask grids are
  /// interpreted at GATE granularity: slot (r, c) is the gate in row r,
  /// column group c.
  DeviceEngine(DeviceEngineConfig config,
               const fault::FaultVectorFile& vectors);

  /// Adds/replaces the fault entry of one layer.
  void set_layer_fault(const fault::FaultVectorEntry& entry);

  /// Plants an arbitrary device fault on one cell of `layer_name`'s array
  /// (created lazily; honoring any mask entry set before). This is how the
  /// extended taxonomy -- transition faults, read disturb, incorrect read,
  /// drift -- reaches end-to-end inference: mask entries only express the
  /// abstract flip/stuck-at planes.
  void inject_device_fault(const std::string& layer_name, std::int64_t row,
                           std::int64_t col, lim::DeviceFaultKind kind,
                           double severity = 1.0);

  void execute(const std::string& layer_name,
               const tensor::BitMatrix& activations,
               const tensor::BitMatrix& weights,
               std::int64_t positions_per_image,
               tensor::IntTensor& out) override;

  void reset_time() override;

  /// Aggregated counters (includes per-layer crossbar activity).
  DeviceEngineStats stats() const;

 private:
  /// One realized flip-plane component: transient operand corruption over
  /// the gate grid, sensitized per execution through the component's model.
  struct FlipComponent {
    const fault::FaultModel* model = nullptr;
    fault::RealizedFault fault;
    std::vector<std::uint8_t> gate;  // flip plane at gate granularity
  };

  struct LayerState {
    std::unique_ptr<lim::CrossbarArray> xbar;
    std::vector<FlipComponent> flips;
    std::int64_t execution_counter = 0;
    bool has_faults = false;
  };

  LayerState& state_for(const std::string& layer_name);
  LayerState make_state(const fault::FaultVectorEntry* entry) const;

  DeviceEngineConfig config_;
  std::unique_ptr<lim::LogicFamily> family_;
  std::map<std::string, LayerState> layers_;
  std::map<std::string, fault::FaultVectorEntry> pending_entries_;
  std::uint64_t xnor_ops_ = 0;
};

}  // namespace flim::xfault

#include "xfault/device_engine.hpp"

#include "core/check.hpp"

namespace flim::xfault {

DeviceEngine::DeviceEngine(DeviceEngineConfig config)
    : config_(config), family_(lim::make_logic_family(config.family)) {}

DeviceEngine::DeviceEngine(DeviceEngineConfig config,
                           const fault::FaultVectorFile& vectors)
    : DeviceEngine(config) {
  for (const auto& entry : vectors.entries()) {
    set_layer_fault(entry);
  }
}

void DeviceEngine::set_layer_fault(const fault::FaultVectorEntry& entry) {
  pending_entries_[entry.layer_name] = entry;
  layers_.erase(entry.layer_name);  // rebuild lazily with the new faults
}

void DeviceEngine::inject_device_fault(const std::string& layer_name,
                                       std::int64_t row, std::int64_t col,
                                       lim::DeviceFaultKind kind,
                                       double severity) {
  LayerState& state = state_for(layer_name);
  state.xbar->inject_device_fault(row, col, kind, severity);
  state.has_faults = true;
}

DeviceEngine::LayerState DeviceEngine::make_state(
    const fault::FaultVectorEntry* entry) const {
  LayerState state;
  lim::CrossbarConfig cfg = config_.crossbar;
  if (entry != nullptr) {
    // Mask grid at gate granularity: one slot per gate.
    cfg.rows = entry->mask.rows();
    cfg.cols = entry->mask.cols() * lim::kCellsPerGate;
  }
  state.xbar = std::make_unique<lim::CrossbarArray>(cfg);
  const std::int64_t gates = state.xbar->num_gates();
  state.flip_gate.assign(static_cast<std::size_t>(gates), 0);

  if (entry != nullptr) {
    state.kind = entry->kind;
    state.dynamic_period = entry->dynamic_period;
    const std::int64_t gates_per_row = state.xbar->gates_per_row();
    for (std::int64_t slot = 0; slot < entry->mask.num_slots(); ++slot) {
      const std::int64_t row = slot / gates_per_row;
      const std::int64_t base_col =
          (slot % gates_per_row) * lim::kCellsPerGate;
      if (entry->mask.flip(slot)) {
        state.flip_gate[static_cast<std::size_t>(slot)] = 1;
        state.has_faults = true;
      }
      const auto result_col =
          base_col + static_cast<int>(family_->result_cell());
      if (entry->mask.sa0(slot)) {
        state.xbar->inject_device_fault(row, result_col,
                                        lim::DeviceFaultKind::kStuckAt0);
        state.has_faults = true;
      }
      if (entry->mask.sa1(slot)) {
        state.xbar->inject_device_fault(row, result_col,
                                        lim::DeviceFaultKind::kStuckAt1);
        state.has_faults = true;
      }
    }
  }
  return state;
}

DeviceEngine::LayerState& DeviceEngine::state_for(
    const std::string& layer_name) {
  auto it = layers_.find(layer_name);
  if (it == layers_.end()) {
    const auto pending = pending_entries_.find(layer_name);
    const fault::FaultVectorEntry* entry =
        pending != pending_entries_.end() ? &pending->second : nullptr;
    it = layers_.emplace(layer_name, make_state(entry)).first;
  }
  return it->second;
}

void DeviceEngine::execute(const std::string& layer_name,
                           const tensor::BitMatrix& activations,
                           const tensor::BitMatrix& weights,
                           std::int64_t positions_per_image,
                           tensor::IntTensor& out) {
  FLIM_REQUIRE(activations.cols() == weights.cols(),
               "activations and weights must agree on K");
  FLIM_REQUIRE(positions_per_image > 0, "positions_per_image must be > 0");
  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  if (out.shape() != tensor::Shape{m, n}) {
    out = tensor::IntTensor(tensor::Shape{m, n});
  }

  LayerState& state = state_for(layer_name);
  const std::int64_t gates = state.xbar->num_gates();

  for (std::int64_t begin = 0; begin < m; begin += positions_per_image) {
    const std::int64_t end = std::min(begin + positions_per_image, m);
    // Dynamic faults fire only every n-th execution of the layer.
    bool flips_active = true;
    if (state.kind == fault::FaultKind::kDynamic) {
      const std::int64_t period =
          std::max(1, state.dynamic_period);
      flips_active = (state.execution_counter % period) == period - 1;
    }
    ++state.execution_counter;

    for (std::int64_t i = begin; i < end; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        std::int32_t acc = 0;
        for (std::int64_t t = 0; t < k; ++t) {
          // Weight-stationary gate assignment, identical to the FLIM
          // product-term mapping.
          const std::int64_t gate = (j * k + t) % gates;
          bool a = activations.get(i, t) > 0;
          const bool w = weights.get(j, t) > 0;
          if (flips_active &&
              state.flip_gate[static_cast<std::size_t>(gate)] != 0) {
            a = !a;  // transient deviation of the stored operand state
          }
          const bool r = state.xbar->execute_xnor_on_gate(*family_, gate, a, w);
          acc += r ? 1 : -1;
          ++xnor_ops_;
        }
        out.at2(i, j) = acc;
      }
    }
  }
}

void DeviceEngine::reset_time() {
  for (auto& [name, state] : layers_) {
    state.execution_counter = 0;
  }
}

DeviceEngineStats DeviceEngine::stats() const {
  DeviceEngineStats s;
  s.xnor_ops = xnor_ops_;
  for (const auto& [name, state] : layers_) {
    const auto& cs = state.xbar->stats();
    s.crossbar.set_pulses += cs.set_pulses;
    s.crossbar.reset_pulses += cs.reset_pulses;
    s.crossbar.gate_steps += cs.gate_steps;
    s.crossbar.reads += cs.reads;
    s.crossbar.switching_events += cs.switching_events;
    s.crossbar.energy_joules += cs.energy_joules;
    s.crossbar.sim_time_seconds += cs.sim_time_seconds;
  }
  return s;
}

}  // namespace flim::xfault

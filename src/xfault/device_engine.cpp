#include "xfault/device_engine.hpp"

#include "core/check.hpp"
#include "fault/fault_registry.hpp"

namespace flim::xfault {

DeviceEngine::DeviceEngine(DeviceEngineConfig config)
    : config_(config), family_(lim::make_logic_family(config.family)) {}

DeviceEngine::DeviceEngine(DeviceEngineConfig config,
                           const fault::FaultVectorFile& vectors)
    : DeviceEngine(config) {
  for (const auto& entry : vectors.entries()) {
    set_layer_fault(entry);
  }
}

void DeviceEngine::set_layer_fault(const fault::FaultVectorEntry& entry) {
  pending_entries_[entry.layer_name] = entry;
  layers_.erase(entry.layer_name);  // rebuild lazily with the new faults
}

void DeviceEngine::inject_device_fault(const std::string& layer_name,
                                       std::int64_t row, std::int64_t col,
                                       lim::DeviceFaultKind kind,
                                       double severity) {
  LayerState& state = state_for(layer_name);
  state.xbar->inject_device_fault(row, col, kind, severity);
  state.has_faults = true;
}

DeviceEngine::LayerState DeviceEngine::make_state(
    const fault::FaultVectorEntry* entry) const {
  // Resolve the entry's component stack (a legacy single-kind entry adapts
  // into the matching registered model, exactly like the FLIM injector).
  const fault::FaultRegistry& registry = fault::FaultRegistry::instance();
  std::vector<FlipComponent> components;
  if (entry != nullptr) {
    if (entry->components.empty()) {
      FlipComponent component;
      component.fault.model = fault::model_name_for(entry->kind);
      if (entry->kind == fault::FaultKind::kDynamic) {
        component.fault.params = {
            {"period", static_cast<double>(entry->dynamic_period)}};
      }
      component.fault.mask = entry->mask;
      component.model = &registry.get(component.fault.model);
      components.push_back(std::move(component));
    } else {
      for (const fault::RealizedFault& fault : entry->components) {
        FlipComponent component;
        component.model = &registry.get(fault.model);
        component.fault = fault;
        components.push_back(std::move(component));
      }
    }
    for (const FlipComponent& component : components) {
      const fault::ModelInfo& meta = component.model->info();
      FLIM_REQUIRE(meta.device_backend,
                   "fault model '" + meta.name +
                       "' is not supported by the device backend (it does "
                       "not reduce to per-gate flips plus static stuck "
                       "cells); use the flim engine");
      FLIM_REQUIRE(component.fault.mask.rows() ==
                           components.front().fault.mask.rows() &&
                       component.fault.mask.cols() ==
                           components.front().fault.mask.cols(),
                   "fault components of one layer must share a mask grid");
    }
  }

  LayerState state;
  lim::CrossbarConfig cfg = config_.crossbar;
  if (!components.empty()) {
    // Mask grid at gate granularity: one slot per gate.
    cfg.rows = components.front().fault.mask.rows();
    cfg.cols = components.front().fault.mask.cols() * lim::kCellsPerGate;
  }
  state.xbar = std::make_unique<lim::CrossbarArray>(cfg);
  const std::int64_t gates = state.xbar->num_gates();
  const std::int64_t gates_per_row = state.xbar->gates_per_row();

  for (FlipComponent& component : components) {
    const fault::FaultMask& mask = component.fault.mask;
    component.gate.assign(static_cast<std::size_t>(gates), 0);
    for (std::int64_t slot = 0; slot < mask.num_slots(); ++slot) {
      const std::int64_t row = slot / gates_per_row;
      const std::int64_t base_col =
          (slot % gates_per_row) * lim::kCellsPerGate;
      if (mask.flip(slot)) {
        component.gate[static_cast<std::size_t>(slot)] = 1;
        state.has_faults = true;
      }
      const auto result_col =
          base_col + static_cast<int>(family_->result_cell());
      if (mask.sa0(slot)) {
        state.xbar->inject_device_fault(row, result_col,
                                        lim::DeviceFaultKind::kStuckAt0);
        state.has_faults = true;
      }
      if (mask.sa1(slot)) {
        state.xbar->inject_device_fault(row, result_col,
                                        lim::DeviceFaultKind::kStuckAt1);
        state.has_faults = true;
      }
    }
  }
  state.flips = std::move(components);
  return state;
}

DeviceEngine::LayerState& DeviceEngine::state_for(
    const std::string& layer_name) {
  auto it = layers_.find(layer_name);
  if (it == layers_.end()) {
    const auto pending = pending_entries_.find(layer_name);
    const fault::FaultVectorEntry* entry =
        pending != pending_entries_.end() ? &pending->second : nullptr;
    it = layers_.emplace(layer_name, make_state(entry)).first;
  }
  return it->second;
}

void DeviceEngine::execute(const std::string& layer_name,
                           const tensor::BitMatrix& activations,
                           const tensor::BitMatrix& weights,
                           std::int64_t positions_per_image,
                           tensor::IntTensor& out) {
  FLIM_REQUIRE(activations.cols() == weights.cols(),
               "activations and weights must agree on K");
  FLIM_REQUIRE(positions_per_image > 0, "positions_per_image must be > 0");
  const std::int64_t m = activations.rows();
  const std::int64_t n = weights.rows();
  const std::int64_t k = activations.cols();
  if (out.shape() != tensor::Shape{m, n}) {
    out = tensor::IntTensor(tensor::Shape{m, n});
  }

  LayerState& state = state_for(layer_name);
  const std::int64_t gates = state.xbar->num_gates();

  std::vector<std::uint8_t> folded_flips;  // reused across images
  for (std::int64_t begin = 0; begin < m; begin += positions_per_image) {
    const std::int64_t end = std::min(begin + positions_per_image, m);
    // Each component's model decides whether its flips are sensitized on
    // this execution (e.g. the dynamic model fires every period-th one).
    // The active planes fold into one per-gate lookup outside the hot
    // product-term loop (XOR: stacked flip mechanisms cancel, matching
    // FaultModel::fold_term_planes).
    const std::int64_t exec = state.execution_counter++;
    const std::vector<std::uint8_t>* flip_plane = nullptr;
    std::size_t active_count = 0;
    for (const FlipComponent& component : state.flips) {
      if (!component.model->active(component.fault, exec)) continue;
      if (++active_count == 1) {
        flip_plane = &component.gate;
      } else {
        if (active_count == 2) folded_flips = *flip_plane;
        for (std::size_t g = 0; g < folded_flips.size(); ++g) {
          folded_flips[g] ^= component.gate[g];
        }
        flip_plane = &folded_flips;
      }
    }

    for (std::int64_t i = begin; i < end; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        std::int32_t acc = 0;
        for (std::int64_t t = 0; t < k; ++t) {
          // Weight-stationary gate assignment, identical to the FLIM
          // product-term mapping.
          const std::int64_t gate = (j * k + t) % gates;
          bool a = activations.get(i, t) > 0;
          const bool w = weights.get(j, t) > 0;
          if (flip_plane != nullptr &&
              (*flip_plane)[static_cast<std::size_t>(gate)] != 0) {
            a = !a;  // transient deviation of the stored operand state
          }
          const bool r = state.xbar->execute_xnor_on_gate(*family_, gate, a, w);
          acc += r ? 1 : -1;
          ++xnor_ops_;
        }
        out.at2(i, j) = acc;
      }
    }
  }
}

void DeviceEngine::reset_time() {
  for (auto& [name, state] : layers_) {
    state.execution_counter = 0;
  }
}

DeviceEngineStats DeviceEngine::stats() const {
  DeviceEngineStats s;
  s.xnor_ops = xnor_ops_;
  for (const auto& [name, state] : layers_) {
    const auto& cs = state.xbar->stats();
    s.crossbar.set_pulses += cs.set_pulses;
    s.crossbar.reset_pulses += cs.reset_pulses;
    s.crossbar.gate_steps += cs.gate_steps;
    s.crossbar.reads += cs.reads;
    s.crossbar.switching_events += cs.switching_events;
    s.crossbar.energy_joules += cs.energy_joules;
    s.crossbar.sim_time_seconds += cs.sim_time_seconds;
  }
  return s;
}

}  // namespace flim::xfault

// Crossbar mapping: how a layer's XNOR workload is laid out over arrays.
//
// The Fault Generator "has to be provided with the dimensions and the number
// of crossbars used during the simulation; first, the mapping tool
// calculates the number of parallel XNOR operations based on the crossbars"
// (paper, Section III). CrossbarMapper is that tool. It exposes two views:
//
// * device view -- gates of kCellsPerGate cells each, used by the X-Fault
//   style device engine and for latency/energy projections;
// * virtual view -- the paper's "virtual crossbar representation": an
//   R x C grid of XNOR-operation slots that fault masks are defined over.
//   Op i occupies slot (i / C mod R, i mod C) and wraps around in passes.
#pragma once

#include <cstdint>

#include "lim/crossbar.hpp"
#include "lim/logic_family.hpp"

namespace flim::lim {

/// Grid dimensions of one crossbar.
struct CrossbarGeometry {
  std::int64_t rows = 128;
  std::int64_t cols = 128;

  std::int64_t num_cells() const { return rows * cols; }
};

/// Result of mapping a workload of XNOR ops onto crossbars.
struct MappingResult {
  std::int64_t total_xnor_ops = 0;
  std::int64_t gates_per_crossbar = 0;
  std::int64_t num_crossbars = 1;
  std::int64_t parallel_ops = 0;   // gates available per pass
  std::int64_t passes = 0;         // sequential reuses of the arrays
  std::int64_t pulses_per_op = 0;  // schedule length + operand writes + read
  double latency_seconds = 0.0;    // modeled execution time of the workload
  double energy_joules = 0.0;      // projected from calibrated per-op cost
};

/// Maps XNOR workloads onto a bank of identical crossbars.
class CrossbarMapper {
 public:
  /// `num_crossbars` arrays of `geometry` run in parallel using `family`.
  CrossbarMapper(CrossbarGeometry geometry, std::int64_t num_crossbars,
                 LogicFamilyKind family, CrossbarConfig electrical = {});

  const CrossbarGeometry& geometry() const { return geometry_; }
  std::int64_t num_crossbars() const { return num_crossbars_; }
  LogicFamilyKind family_kind() const { return family_kind_; }

  /// Gate capacity of one array (device view).
  std::int64_t gates_per_crossbar() const;

  /// Virtual op-slot grid the fault masks are defined over (one slot per
  /// crossbar cell).
  std::int64_t virtual_rows() const { return geometry_.rows; }
  std::int64_t virtual_cols() const { return geometry_.cols; }
  std::int64_t virtual_slots() const { return geometry_.num_cells(); }

  /// Slot of op `i` in the virtual grid (row-major, wrapping in passes).
  std::int64_t slot_of_op(std::int64_t op_index) const {
    return op_index % virtual_slots();
  }

  /// Pass (array reuse count) op `i` lands in.
  std::int64_t pass_of_op(std::int64_t op_index) const {
    return op_index / virtual_slots();
  }

  /// Projects timing/energy for `total_xnor_ops` sequential-parallel ops.
  MappingResult map_ops(std::int64_t total_xnor_ops) const;

 private:
  CrossbarGeometry geometry_;
  std::int64_t num_crossbars_;
  LogicFamilyKind family_kind_;
  CrossbarConfig electrical_;
  XnorCost calibrated_;
  int schedule_pulses_ = 0;
};

}  // namespace flim::lim

#include "lim/crossbar.hpp"

#include <cmath>

#include "core/check.hpp"

namespace flim::lim {

CrossbarArray::CrossbarArray(CrossbarConfig config)
    : config_(config),
      cells_(static_cast<std::size_t>(config.rows * config.cols)),
      r_ref_(std::sqrt(config.device.r_on * config.device.r_off)) {
  FLIM_REQUIRE(config_.rows > 0 && config_.cols > 0,
               "crossbar must have positive dimensions");
  FLIM_REQUIRE(config_.device.r_on > 0 &&
                   config_.device.r_off > config_.device.r_on,
               "device resistances must satisfy 0 < Ron < Roff");
  FLIM_REQUIRE(config_.device.steps_per_pulse > 0,
               "steps_per_pulse must be positive");
}

Memristor& CrossbarArray::cell(std::int64_t r, std::int64_t c) {
  FLIM_REQUIRE(r >= 0 && r < rows() && c >= 0 && c < cols(),
               "cell index out of range");
  return cells_[static_cast<std::size_t>(flat(r, c))];
}

const Memristor& CrossbarArray::cell(std::int64_t r, std::int64_t c) const {
  FLIM_REQUIRE(r >= 0 && r < rows() && c >= 0 && c < cols(),
               "cell index out of range");
  return cells_[static_cast<std::size_t>(flat(r, c))];
}

void CrossbarArray::pulse(Memristor& m, double v, bool count_as_set) {
  const auto& dev = config_.device;
  for (int s = 0; s < dev.steps_per_pulse; ++s) {
    const double r = m.resistance(dev);
    stats_.energy_joules += v * v / r * dev.dt;
    if (m.apply_voltage(dev, v) > 0.0) ++stats_.switching_events;
  }
  stats_.sim_time_seconds += dev.dt * dev.steps_per_pulse;
  if (count_as_set) {
    ++stats_.set_pulses;
  } else {
    ++stats_.reset_pulses;
  }
}

void CrossbarArray::write_bit(std::int64_t r, std::int64_t c, bool bit) {
  Memristor& m = cell(r, c);
  pulse(m, bit ? config_.v_prog : -config_.v_prog, bit);
}

bool CrossbarArray::read_bit(std::int64_t r, std::int64_t c) {
  Memristor& m = cell(r, c);
  const auto& dev = config_.device;
  // Read-disturb acts during the read pulse, so the comparator sees the
  // post-disturb resistance (a severity-1.0 cell flips and misreads at once,
  // the classical RDF; lower severities wear over repeated reads).
  if (m.apply_read_disturb() > 0.0) ++stats_.switching_events;
  const double res = m.resistance(dev);
  stats_.energy_joules += config_.v_read * config_.v_read / res * dev.dt;
  stats_.sim_time_seconds += dev.dt;
  ++stats_.reads;
  return m.filter_sensed_bit(res < r_ref_);
}

void CrossbarArray::execute_micro_op(std::int64_t row, std::int64_t base_col,
                                     const MicroOp& op) {
  FLIM_REQUIRE(base_col + kCellsPerGate <= cols(),
               "gate slot exceeds crossbar width");
  auto cell_at = [&](GateCell role) -> Memristor& {
    return cell(row, base_col + static_cast<int>(role));
  };
  const auto& dev = config_.device;

  switch (op.kind) {
    case MicroOpKind::kSetPulse:
      pulse(cell_at(op.target), config_.v_prog, true);
      break;
    case MicroOpKind::kResetPulse:
      pulse(cell_at(op.target), -config_.v_prog, false);
      break;
    case MicroOpKind::kNorStep: {
      // Resistive divider: V0 -> inputs (parallel) -> node -> target -> gnd.
      // The target is oriented so the node voltage drives it toward RESET.
      // Quasi-static pulse model: node voltages are evaluated at pulse onset
      // and held for the pulse duration. Real stateful-logic drivers pick
      // pulse widths that complete the switching event decided by the
      // initial conditions; evaluating mid-pulse feedback instead would
      // stall SETs at a partial state (the known IMPLY degradation issue)
      // and is out of scope for this behavioural model.
      Memristor& target = cell_at(op.target);
      double g_par = 0.0;  // input conductance sum
      for (int i = 0; i < op.num_inputs; ++i) {
        g_par += 1.0 / cell_at(op.inputs[static_cast<std::size_t>(i)])
                           .resistance(dev);
      }
      const double r_par = g_par > 0.0 ? 1.0 / g_par : 1.0e12;
      const double r_t = target.resistance(dev);
      const double v_node = config_.v_apply * r_t / (r_par + r_t);
      const double v_in = config_.v_apply - v_node;
      for (int s = 0; s < dev.steps_per_pulse; ++s) {
        stats_.energy_joules +=
            (v_node * v_node / r_t + v_in * v_in * g_par) * dev.dt;
        if (target.apply_voltage(dev, -v_node) > 0.0) {
          ++stats_.switching_events;
        }
      }
      stats_.sim_time_seconds += dev.dt * dev.steps_per_pulse;
      ++stats_.gate_steps;
      break;
    }
    case MicroOpKind::kImplyStep: {
      // IMPLY circuit: Vcond on p, Vset on q, both into a common node with
      // load Rg to ground. Quasi-static pulse model (see kNorStep); both
      // devices are integrated -- the default voltage window is disturb-free
      // (see lim tests).
      FLIM_ASSERT(op.num_inputs == 1);
      Memristor& p = cell_at(op.inputs[0]);
      Memristor& q = cell_at(op.target);
      const double rp = p.resistance(dev);
      const double rq = q.resistance(dev);
      const double v_node = (config_.v_cond / rp + config_.v_set / rq) /
                            (1.0 / rp + 1.0 / rq + 1.0 / config_.r_load);
      const double v_p = config_.v_cond - v_node;
      const double v_q = config_.v_set - v_node;
      for (int s = 0; s < dev.steps_per_pulse; ++s) {
        stats_.energy_joules +=
            (v_p * v_p / rp + v_q * v_q / rq +
             v_node * v_node / config_.r_load) *
            dev.dt;
        if (p.apply_voltage(dev, v_p) > 0.0) ++stats_.switching_events;
        if (q.apply_voltage(dev, v_q) > 0.0) ++stats_.switching_events;
      }
      stats_.sim_time_seconds += dev.dt * dev.steps_per_pulse;
      ++stats_.gate_steps;
      break;
    }
  }
}

bool CrossbarArray::execute_xnor(const LogicFamily& family, std::int64_t row,
                                 std::int64_t base_col, bool a, bool b) {
  write_bit(row, base_col + static_cast<int>(GateCell::kInA), a);
  write_bit(row, base_col + static_cast<int>(GateCell::kInB), b);
  for (const MicroOp& op : family.xnor_schedule()) {
    execute_micro_op(row, base_col, op);
  }
  return read_bit(row, base_col + static_cast<int>(family.result_cell()));
}

bool CrossbarArray::execute_xnor_on_gate(const LogicFamily& family,
                                         std::int64_t gate, bool a, bool b) {
  FLIM_REQUIRE(gate >= 0 && gate < num_gates(), "gate index out of range");
  const std::int64_t row = gate / gates_per_row();
  const std::int64_t base_col = (gate % gates_per_row()) * kCellsPerGate;
  return execute_xnor(family, row, base_col, a, b);
}

void CrossbarArray::inject_device_fault(std::int64_t r, std::int64_t c,
                                        DeviceFaultKind kind,
                                        double severity) {
  cell(r, c).set_fault(kind, severity);
}

void CrossbarArray::clear_device_faults() {
  for (auto& m : cells_) m.set_fault(DeviceFaultKind::kNone);
}

XnorCost calibrate_xnor_cost(const CrossbarConfig& config,
                             const LogicFamily& family) {
  CrossbarConfig scratch = config;
  scratch.rows = 1;
  scratch.cols = kCellsPerGate;
  XnorCost cost;
  cost.pulses = family.xnor_pulse_count();
  double energy = 0.0;
  double latency = 0.0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      CrossbarArray xbar(scratch);
      xbar.execute_xnor(family, 0, 0, a != 0, b != 0);
      energy += xbar.stats().energy_joules;
      latency += xbar.stats().sim_time_seconds;
    }
  }
  cost.avg_energy_joules = energy / 4.0;
  cost.latency_seconds = latency / 4.0;
  return cost;
}

}  // namespace flim::lim

// IMPLY XNOR schedule.
//
// IMPLY(p, q): q <- p' + q; FALSE(q): q <- 0. Derivation over {a, b, w, out}
// (destroys input b):
//   FALSE(w); FALSE(out)
//   IMPLY(a, w)     w   = a'
//   IMPLY(b, out)   out = b'
//   IMPLY(w, out)   out = a + b'
//   IMPLY(a, b)     b   = a' + b
//   FALSE(w)
//   IMPLY(b, w)     w   = (a' + b)' = ab'
//   IMPLY(out, w)   w   = (a + b')' + ab' = a'b + ab' = XOR(a, b)
//   FALSE(out)
//   IMPLY(w, out)   out = XOR' = XNOR(a, b)
// 11 pulses -- longer than MAGIC's 8, matching the literature's observation
// that IMPLY sequences are serial-heavy. Result lands in the out cell.
#include "lim/logic_family.hpp"

namespace flim::lim {

namespace {

class ImplyFamily final : public LogicFamily {
 public:
  ImplyFamily() {
    using K = MicroOpKind;
    using C = GateCell;
    auto false_op = [](C target) {
      MicroOp op;
      op.kind = K::kResetPulse;
      op.num_inputs = 0;
      op.target = target;
      return op;
    };
    auto imply = [](C p, C q) {
      MicroOp op;
      op.kind = K::kImplyStep;
      op.inputs = {p, p};
      op.num_inputs = 1;
      op.target = q;
      return op;
    };
    schedule_ = {
        false_op(C::kWork),
        false_op(C::kOut),
        imply(C::kInA, C::kWork),   // w = a'
        imply(C::kInB, C::kOut),    // out = b'
        imply(C::kWork, C::kOut),   // out = a + b'
        imply(C::kInA, C::kInB),    // b = a' + b
        false_op(C::kWork),
        imply(C::kInB, C::kWork),   // w = ab'
        imply(C::kOut, C::kWork),   // w = XOR(a, b)
        false_op(C::kOut),
        imply(C::kWork, C::kOut),   // out = XNOR(a, b)
    };
  }

  std::string name() const override { return "IMPLY"; }

  const std::vector<MicroOp>& xnor_schedule() const override {
    return schedule_;
  }

  GateCell result_cell() const override { return GateCell::kOut; }

 private:
  std::vector<MicroOp> schedule_;
};

}  // namespace

std::unique_ptr<LogicFamily> make_imply_family() {
  return std::make_unique<ImplyFamily>();
}

}  // namespace flim::lim

// MAGIC XNOR schedule.
//
// Derivation over cells {a, b, w, out} using only NOR (with SET init of the
// target before each NOR, as MAGIC requires):
//   w   = NOR(a, b)   = a'b'
//   out = NOR(a, w)   = (a + a'b')' = (a + b')' = a'b
//   a   = NOR(b, w)   = (b + a'b')' = (b + a')' = ab'    (destroys input a)
//   w   = NOR(out, a) = (a'b + ab')' = XNOR(a, b)
// Result lands in the work cell. 8 pulses total (4 SET inits + 4 NOR).
#include "lim/logic_family.hpp"

namespace flim::lim {

namespace {

class MagicFamily final : public LogicFamily {
 public:
  MagicFamily() {
    using K = MicroOpKind;
    using C = GateCell;
    auto set = [](C target) {
      MicroOp op;
      op.kind = K::kSetPulse;
      op.num_inputs = 0;
      op.target = target;
      return op;
    };
    auto nor2 = [](C in0, C in1, C target) {
      MicroOp op;
      op.kind = K::kNorStep;
      op.inputs = {in0, in1};
      op.num_inputs = 2;
      op.target = target;
      return op;
    };
    schedule_ = {
        set(C::kWork),
        set(C::kOut),
        nor2(C::kInA, C::kInB, C::kWork),   // w = a'b'
        nor2(C::kInA, C::kWork, C::kOut),   // out = a'b
        set(C::kInA),
        nor2(C::kInB, C::kWork, C::kInA),   // a = ab'
        set(C::kWork),
        nor2(C::kOut, C::kInA, C::kWork),   // w = XNOR(a, b)
    };
  }

  std::string name() const override { return "MAGIC"; }

  const std::vector<MicroOp>& xnor_schedule() const override {
    return schedule_;
  }

  GateCell result_cell() const override { return GateCell::kWork; }

 private:
  std::vector<MicroOp> schedule_;
};

}  // namespace

std::unique_ptr<LogicFamily> make_magic_family() {
  return std::make_unique<MagicFamily>();
}

}  // namespace flim::lim

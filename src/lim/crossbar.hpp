// Memristive crossbar array with device-accurate micro-op execution.
//
// The array hosts rows x cols memristor cells. XNOR gates occupy
// kCellsPerGate adjacent cells of one row (operand A, operand B, work, out),
// mirroring Fig. 1 of the paper where each row computes one XNOR between
// word lines. Micro-ops (programming pulses, MAGIC NOR steps, IMPLY steps)
// are integrated over several device timesteps with the nonlinear resistive
// divider recomputed each sub-step, so partial switching, drifted devices
// and stuck cells all behave physically.
//
// Simplification (documented): during a NOR step only the target cell's
// state is integrated -- we assume the driver engineering window that keeps
// half-selected input cells below threshold. IMPLY steps integrate both
// cells; the default voltage set was chosen inside the disturb-free window
// (see imply tests).
#pragma once

#include <cstdint>
#include <vector>

#include "lim/logic_family.hpp"
#include "lim/memristor.hpp"

namespace flim::lim {

/// Electrical and geometric configuration of one crossbar array.
struct CrossbarConfig {
  std::int64_t rows = 128;
  std::int64_t cols = 128;
  MemristorParams device;

  double v_prog = 2.0;   // programming pulse amplitude [V]
  double v_apply = 2.0;  // MAGIC NOR operating voltage V0 [V]
  double v_cond = 1.0;   // IMPLY conditioning voltage [V]
  double v_set = 1.8;    // IMPLY set voltage [V]
  double r_load = 1.0e4; // IMPLY common-node load resistor Rg [ohm]
  double v_read = 0.3;   // sense-amp read voltage [V]
};

/// Accumulated activity counters (reset with reset_stats()).
struct CrossbarStats {
  std::uint64_t set_pulses = 0;
  std::uint64_t reset_pulses = 0;
  std::uint64_t gate_steps = 0;
  std::uint64_t reads = 0;
  std::uint64_t switching_events = 0;  // sub-steps with state movement
  double energy_joules = 0.0;
  double sim_time_seconds = 0.0;  // modeled (device) time, not wall clock
};

/// A memristive crossbar executing stateful logic.
class CrossbarArray {
 public:
  explicit CrossbarArray(CrossbarConfig config);

  std::int64_t rows() const { return config_.rows; }
  std::int64_t cols() const { return config_.cols; }
  const CrossbarConfig& config() const { return config_; }

  /// Gate capacity: gates per row and total.
  std::int64_t gates_per_row() const { return config_.cols / kCellsPerGate; }
  std::int64_t num_gates() const { return rows() * gates_per_row(); }

  /// Cell access.
  Memristor& cell(std::int64_t r, std::int64_t c);
  const Memristor& cell(std::int64_t r, std::int64_t c) const;

  /// Programs a cell to a logic value via SET/RESET pulses.
  void write_bit(std::int64_t r, std::int64_t c, bool bit);

  /// Sense-amplifier read: compares cell resistance with the geometric mean
  /// of Ron and Roff.
  bool read_bit(std::int64_t r, std::int64_t c);

  /// Executes one micro-op on the gate at (row, base_col .. base_col+3).
  void execute_micro_op(std::int64_t row, std::int64_t base_col,
                        const MicroOp& op);

  /// Full XNOR: programs operands, runs the family schedule, reads result.
  bool execute_xnor(const LogicFamily& family, std::int64_t row,
                    std::int64_t base_col, bool a, bool b);

  /// Convenience: XNOR on flat gate index g (row = g / gates_per_row,
  /// base_col = (g % gates_per_row) * kCellsPerGate).
  bool execute_xnor_on_gate(const LogicFamily& family, std::int64_t gate,
                            bool a, bool b);

  /// Attaches a device fault to a cell.
  void inject_device_fault(std::int64_t r, std::int64_t c,
                           DeviceFaultKind kind, double severity = 0.5);

  /// Clears all device faults.
  void clear_device_faults();

  const CrossbarStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CrossbarStats{}; }

 private:
  std::int64_t flat(std::int64_t r, std::int64_t c) const {
    return r * config_.cols + c;
  }
  void pulse(Memristor& m, double v, bool count_as_set);

  CrossbarConfig config_;
  std::vector<Memristor> cells_;
  CrossbarStats stats_;
  double r_ref_;  // sense-amp reference resistance
};

/// Per-XNOR cost calibrated by executing all four operand combinations on a
/// scratch crossbar.
struct XnorCost {
  int pulses = 0;              // schedule length (excl. operand writes)
  double avg_energy_joules = 0.0;
  double latency_seconds = 0.0;  // modeled time per XNOR (incl. writes)
};

/// Runs the four input combinations and averages energy/latency.
XnorCost calibrate_xnor_cost(const CrossbarConfig& config,
                             const LogicFamily& family);

}  // namespace flim::lim

#include "lim/memristor.hpp"

#include <algorithm>
#include <cmath>

namespace flim::lim {

const std::vector<DeviceFaultKind>& all_device_fault_kinds() {
  static const std::vector<DeviceFaultKind> kinds{
      DeviceFaultKind::kStuckAt0,      DeviceFaultKind::kStuckAt1,
      DeviceFaultKind::kStuckCurrent,  DeviceFaultKind::kDrift,
      DeviceFaultKind::kSlowSet,       DeviceFaultKind::kSlowReset,
      DeviceFaultKind::kReadDisturb,   DeviceFaultKind::kIncorrectRead,
  };
  return kinds;
}

std::string to_string(DeviceFaultKind kind) {
  switch (kind) {
    case DeviceFaultKind::kNone: return "none";
    case DeviceFaultKind::kStuckAt0: return "stuck-at-0";
    case DeviceFaultKind::kStuckAt1: return "stuck-at-1";
    case DeviceFaultKind::kStuckCurrent: return "stuck-current";
    case DeviceFaultKind::kDrift: return "drift";
    case DeviceFaultKind::kSlowSet: return "slow-set";
    case DeviceFaultKind::kSlowReset: return "slow-reset";
    case DeviceFaultKind::kReadDisturb: return "read-disturb";
    case DeviceFaultKind::kIncorrectRead: return "incorrect-read";
  }
  return "unknown";
}

void Memristor::set_state(double w, bool force_even_if_stuck) {
  if (!force_even_if_stuck &&
      (fault_ == DeviceFaultKind::kStuckAt0 ||
       fault_ == DeviceFaultKind::kStuckAt1 ||
       fault_ == DeviceFaultKind::kStuckCurrent)) {
    return;
  }
  w_ = std::clamp(w, 0.0, 1.0);
}

double Memristor::effective_state() const {
  switch (fault_) {
    case DeviceFaultKind::kStuckAt0: return 0.0;
    case DeviceFaultKind::kStuckAt1: return 1.0;
    default: return w_;
  }
}

double Memristor::resistance(const MemristorParams& p) const {
  // R(w) = Roff * (Ron/Roff)^w: exponential interpolation keeps the
  // logarithmic resistance spacing real filamentary devices show.
  const double ratio = p.r_on / p.r_off;
  return p.r_off * std::pow(ratio, effective_state());
}

double Memristor::apply_voltage(const MemristorParams& p, double v) {
  switch (fault_) {
    case DeviceFaultKind::kStuckAt0:
    case DeviceFaultKind::kStuckAt1:
    case DeviceFaultKind::kStuckCurrent:
      return 0.0;
    default:
      break;
  }
  double dw = 0.0;
  if (v >= p.v_on && p.v_on > 0.0) {
    dw = p.k_on * (v / p.v_on - 1.0) * p.dt;
    if (fault_ == DeviceFaultKind::kSlowSet) dw *= (1.0 - severity_);
  } else if (v <= p.v_off && p.v_off < 0.0) {
    dw = -p.k_off * (v / p.v_off - 1.0) * p.dt;
    if (fault_ == DeviceFaultKind::kSlowReset) dw *= (1.0 - severity_);
  } else {
    return 0.0;
  }
  if (fault_ == DeviceFaultKind::kDrift) {
    dw *= (1.0 - severity_);
  }
  const double before = w_;
  w_ = std::clamp(w_ + dw, 0.0, 1.0);
  return std::abs(w_ - before);
}

double Memristor::apply_read_disturb() {
  if (fault_ != DeviceFaultKind::kReadDisturb) return 0.0;
  const double before = w_;
  w_ = std::clamp(w_ + severity_, 0.0, 1.0);
  return std::abs(w_ - before);
}

void Memristor::set_fault(DeviceFaultKind kind, double severity) {
  fault_ = kind;
  severity_ = std::clamp(severity, 0.0, 1.0);
}

}  // namespace flim::lim

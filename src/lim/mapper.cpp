#include "lim/mapper.hpp"

#include "core/check.hpp"

namespace flim::lim {

CrossbarMapper::CrossbarMapper(CrossbarGeometry geometry,
                               std::int64_t num_crossbars,
                               LogicFamilyKind family,
                               CrossbarConfig electrical)
    : geometry_(geometry),
      num_crossbars_(num_crossbars),
      family_kind_(family),
      electrical_(electrical) {
  FLIM_REQUIRE(geometry_.rows > 0 && geometry_.cols > 0,
               "crossbar geometry must be positive");
  FLIM_REQUIRE(num_crossbars_ > 0, "need at least one crossbar");
  const auto fam = make_logic_family(family_kind_);
  schedule_pulses_ = fam->xnor_pulse_count();
  calibrated_ = calibrate_xnor_cost(electrical_, *fam);
}

std::int64_t CrossbarMapper::gates_per_crossbar() const {
  return geometry_.rows * (geometry_.cols / kCellsPerGate);
}

MappingResult CrossbarMapper::map_ops(std::int64_t total_xnor_ops) const {
  FLIM_REQUIRE(total_xnor_ops >= 0, "op count must be non-negative");
  MappingResult r;
  r.total_xnor_ops = total_xnor_ops;
  r.gates_per_crossbar = gates_per_crossbar();
  r.num_crossbars = num_crossbars_;
  r.parallel_ops = r.gates_per_crossbar * num_crossbars_;
  FLIM_REQUIRE(r.parallel_ops > 0,
               "crossbar too narrow to host a single gate");
  r.passes = (total_xnor_ops + r.parallel_ops - 1) / r.parallel_ops;
  // operand writes (2) + schedule + result read (1)
  r.pulses_per_op = schedule_pulses_ + 3;
  r.latency_seconds =
      static_cast<double>(r.passes) * calibrated_.latency_seconds;
  r.energy_joules =
      static_cast<double>(total_xnor_ops) * calibrated_.avg_energy_joules;
  return r;
}

}  // namespace flim::lim

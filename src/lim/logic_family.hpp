// Stateful logic families (MAGIC, IMPLY) expressed as micro-op schedules.
//
// Following the paper we assume a logic family implementing XNOR over four
// memristors per gate (two operands + two work cells). The family defines
// the micro-op sequence; the crossbar executes it with full device dynamics.
// MAGIC (Kvatinsky et al., TCAS-II 2014) composes XNOR from NOR steps;
// IMPLY (Kvatinsky et al., TVLSI 2014) from material-implication steps.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace flim::lim {

/// Number of memristors per XNOR gate (paper, Section III: "four memristors
/// are required to facilitate one XNOR operation").
inline constexpr int kCellsPerGate = 4;

/// Cell roles within a gate slot.
enum class GateCell : std::uint8_t { kInA = 0, kInB = 1, kWork = 2, kOut = 3 };

/// One primitive pulse applied to a gate slot.
enum class MicroOpKind : std::uint8_t {
  kSetPulse,    // program target toward LRS (logic 1)
  kResetPulse,  // program target toward HRS (logic 0); IMPLY's FALSE
  kNorStep,     // MAGIC NOR of the input cells into the (pre-SET) target
  kImplyStep,   // IMPLY(input0, target): target <- NOT(input0) OR target
};

/// A scheduled primitive: which cells participate and which receives the
/// result. `num_inputs` is 0 for programming pulses, 1 for IMPLY, and up to
/// 2 for NOR.
struct MicroOp {
  MicroOpKind kind = MicroOpKind::kSetPulse;
  std::array<GateCell, 2> inputs{GateCell::kInA, GateCell::kInB};
  int num_inputs = 0;
  GateCell target = GateCell::kOut;
};

/// Interface of a stateful logic family able to compute XNOR.
class LogicFamily {
 public:
  virtual ~LogicFamily() = default;

  /// Family name for reports ("MAGIC", "IMPLY").
  virtual std::string name() const = 0;

  /// Micro-op schedule computing out <- XNOR(inA, inB). Operand cells are
  /// assumed already programmed; the schedule may destroy them.
  virtual const std::vector<MicroOp>& xnor_schedule() const = 0;

  /// Cell holding the XNOR result after the schedule completes.
  virtual GateCell result_cell() const = 0;

  /// Total pulse count of one XNOR (schedule length); the latency metric
  /// used by the logic-family ablation bench.
  int xnor_pulse_count() const {
    return static_cast<int>(xnor_schedule().size());
  }
};

/// Factory helpers.
std::unique_ptr<LogicFamily> make_magic_family();
std::unique_ptr<LogicFamily> make_imply_family();

/// Selector used in configuration structs.
enum class LogicFamilyKind : std::uint8_t { kMagic, kImply };

std::unique_ptr<LogicFamily> make_logic_family(LogicFamilyKind kind);

/// Human-readable kind name.
std::string to_string(LogicFamilyKind kind);

}  // namespace flim::lim

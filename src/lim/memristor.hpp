// Behavioural memristor device model.
//
// A VTEAM-style threshold-switching model (Kvatinsky et al.): the internal
// state variable w in [0, 1] only moves while the applied voltage magnitude
// exceeds the polarity's threshold, with a rate proportional to the
// overdrive. Resistance interpolates exponentially between Roff (w = 0,
// logic 0) and Ron (w = 1, logic 1). This is the "memristor model from the
// literature" level of detail the reproduction band calls for -- enough to
// make MAGIC/IMPLY gate execution and device-level fault injection
// physically meaningful without transistor-level SPICE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flim::lim {

/// Device-level fault attached to a single memristor cell.
///
/// The taxonomy follows the ReRAM test literature the paper builds on
/// (Kannan et al. TCAD'15, Chen et al. VTS'15): stuck-at and stuck-current
/// faults, degraded switching dynamics, transition faults (the cell fails
/// one switching direction), read-disturb faults (the read pulse itself
/// moves the state toward SET) and incorrect-read faults (the sense path
/// inverts, the cell state is untouched).
///
/// `severity` semantics per kind (set_fault):
///   kDrift          fraction of switching rate lost (1 = frozen)
///   kSlowSet        fraction of SET-direction movement lost (1 = complete
///                   0->1 transition fault)
///   kSlowReset      fraction of RESET-direction movement lost (1 = complete
///                   1->0 transition fault)
///   kReadDisturb    state increment toward LRS per read (1 = a single read
///                   fully SETs the cell, the classical RDF)
///   others          ignored
enum class DeviceFaultKind : std::uint8_t {
  kNone = 0,
  kStuckAt0,       // state pinned at HRS (logic 0)
  kStuckAt1,       // state pinned at LRS (logic 1)
  kStuckCurrent,   // cannot switch; keeps whatever state it has
  kDrift,          // degraded dynamics: switching rate scaled down
  kSlowSet,        // transition fault 0->1: SET movement suppressed
  kSlowReset,      // transition fault 1->0: RESET movement suppressed
  kReadDisturb,    // each read pulse drives the state toward LRS
  kIncorrectRead,  // sense comparator inverted; state is correct
};

/// All injectable kinds (excludes kNone), e.g. for coverage sweeps.
const std::vector<DeviceFaultKind>& all_device_fault_kinds();

/// Human-readable fault-kind name for reports.
std::string to_string(DeviceFaultKind kind);

/// Static device parameters shared by all cells of an array.
struct MemristorParams {
  double r_on = 1.0e3;     // LRS resistance [ohm]
  double r_off = 1.0e6;    // HRS resistance [ohm]
  double v_on = 1.1;       // SET threshold (positive polarity) [V]
  double v_off = -0.9;     // RESET threshold (negative polarity) [V]
  // Rates are chosen so that one programming pulse (steps_per_pulse sub-
  // steps) completes a SET/RESET with margin, and a MAGIC NOR step drives
  // the output cell across the read threshold within one pulse.
  double k_on = 5.0e8;     // SET rate coefficient [1/(V s)]
  double k_off = 5.0e8;    // RESET rate coefficient [1/(V s)]
  double dt = 1.0e-9;      // integration timestep [s]
  int steps_per_pulse = 16;  // integration sub-steps per micro-op pulse

  /// State threshold above which a read returns logic 1.
  double read_threshold = 0.5;
};

/// One memristive cell: state plus an optional device fault.
class Memristor {
 public:
  Memristor() = default;

  /// Current internal state in [0, 1].
  double state() const { return w_; }

  /// Forces the state (respects stuck faults unless `force_even_if_stuck`).
  void set_state(double w, bool force_even_if_stuck = false);

  /// Resistance at the current state (exponential interpolation).
  double resistance(const MemristorParams& p) const;

  /// Logic value under the read threshold.
  bool read_bit(const MemristorParams& p) const {
    return effective_state() > p.read_threshold;
  }

  /// Integrates the state under voltage `v` for one timestep. Returns the
  /// absolute state change (0 when thresholds are not exceeded or the cell
  /// is stuck). Positive v drives toward LRS (SET).
  double apply_voltage(const MemristorParams& p, double v);

  /// Attaches a device fault; see DeviceFaultKind for the per-kind
  /// `severity` semantics.
  void set_fault(DeviceFaultKind kind, double severity = 0.5);

  DeviceFaultKind fault() const { return fault_; }

  /// Read-path fault hook, called by the array's sense amplifier once per
  /// read pulse *before* the comparator evaluates: a kReadDisturb cell moves
  /// toward LRS by `severity`. Returns the state change magnitude.
  double apply_read_disturb();

  /// Sense-path fault hook, called on the comparator verdict: a
  /// kIncorrectRead cell inverts the sensed bit.
  bool filter_sensed_bit(bool comparator_bit) const {
    return fault_ == DeviceFaultKind::kIncorrectRead ? !comparator_bit
                                                     : comparator_bit;
  }

 private:
  double effective_state() const;

  double w_ = 0.0;
  DeviceFaultKind fault_ = DeviceFaultKind::kNone;
  double severity_ = 0.0;
};

}  // namespace flim::lim

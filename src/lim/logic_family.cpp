#include "lim/logic_family.hpp"

#include "core/check.hpp"

namespace flim::lim {

std::unique_ptr<LogicFamily> make_logic_family(LogicFamilyKind kind) {
  switch (kind) {
    case LogicFamilyKind::kMagic: return make_magic_family();
    case LogicFamilyKind::kImply: return make_imply_family();
  }
  FLIM_REQUIRE(false, "unknown logic family kind");
  return nullptr;
}

std::string to_string(LogicFamilyKind kind) {
  switch (kind) {
    case LogicFamilyKind::kMagic: return "MAGIC";
    case LogicFamilyKind::kImply: return "IMPLY";
  }
  return "?";
}

}  // namespace flim::lim

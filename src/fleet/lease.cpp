#include "fleet/lease.hpp"

#include "core/check.hpp"

namespace flim::fleet {

LeaseTable::LeaseTable(int shard_count, std::int64_t ttl_ms)
    : ttl_ms_(ttl_ms) {
  FLIM_REQUIRE(shard_count >= 1, "lease table needs at least one shard");
  FLIM_REQUIRE(ttl_ms >= 1, "lease TTL must be >= 1 ms");
  leases_.resize(static_cast<std::size_t>(shard_count));
}

std::optional<LeaseTable::Grant> LeaseTable::acquire(const std::string& worker,
                                                     std::int64_t now_ms) {
  const core::MutexLock lock(mutex_);
  // Fresh shards first so a cold fleet spreads out; expired leases only
  // when nothing fresh remains, so a slow-but-alive worker is not raced
  // until it has actually missed its TTL.
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    LeaseInfo& lease = leases_[i];
    if (lease.state != LeaseState::kUnleased) continue;
    lease.state = LeaseState::kLeased;
    lease.worker = worker;
    lease.token = next_token_++;
    lease.deadline_ms = now_ms + ttl_ms_;
    return Grant{static_cast<int>(i), lease.token};
  }
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    LeaseInfo& lease = leases_[i];
    if (lease.state != LeaseState::kLeased || lease.deadline_ms > now_ms) {
      continue;
    }
    ++expired_count_;
    lease.worker = worker;
    lease.token = next_token_++;
    lease.deadline_ms = now_ms + ttl_ms_;
    return Grant{static_cast<int>(i), lease.token};
  }
  return std::nullopt;
}

bool LeaseTable::heartbeat(int shard_index, std::uint64_t token,
                           std::size_t completed, std::size_t owned,
                           std::int64_t now_ms) {
  const core::MutexLock lock(mutex_);
  FLIM_REQUIRE(shard_index >= 0 &&
                   static_cast<std::size_t>(shard_index) < leases_.size(),
               "heartbeat shard index out of range");
  LeaseInfo& lease = leases_[static_cast<std::size_t>(shard_index)];
  if (lease.state != LeaseState::kLeased || lease.token != token) return false;
  lease.deadline_ms = now_ms + ttl_ms_;
  lease.completed = completed;
  lease.owned = owned;
  return true;
}

bool LeaseTable::complete(int shard_index, std::uint64_t token) {
  const core::MutexLock lock(mutex_);
  FLIM_REQUIRE(shard_index >= 0 &&
                   static_cast<std::size_t>(shard_index) < leases_.size(),
               "complete shard index out of range");
  LeaseInfo& lease = leases_[static_cast<std::size_t>(shard_index)];
  if (lease.state != LeaseState::kLeased || lease.token != token) return false;
  lease.state = LeaseState::kDone;
  lease.completed = lease.owned;
  return true;
}

bool LeaseTable::all_done() const {
  const core::MutexLock lock(mutex_);
  for (const LeaseInfo& lease : leases_) {
    if (lease.state != LeaseState::kDone) return false;
  }
  return true;
}

int LeaseTable::done_count() const {
  const core::MutexLock lock(mutex_);
  int done = 0;
  for (const LeaseInfo& lease : leases_) {
    if (lease.state == LeaseState::kDone) ++done;
  }
  return done;
}

std::size_t LeaseTable::expired_releases() const {
  const core::MutexLock lock(mutex_);
  return expired_count_;
}

std::vector<LeaseInfo> LeaseTable::snapshot() const {
  const core::MutexLock lock(mutex_);
  return leases_;
}

}  // namespace flim::fleet

#include "fleet/protocol.hpp"

#include <sstream>

#include "core/report.hpp"

namespace flim::fleet {

namespace {

std::string quote(const std::string& s) {
  return '"' + core::json_escape(s) + '"';
}

}  // namespace

Message parse_message(const std::string& line) {
  Message msg;
  msg.fields = core::parse_json_object_line(line);
  msg.type = core::json_string(msg.fields, "type");
  return msg;
}

std::string encode_hello(const std::string& worker,
                         const std::string& fingerprint) {
  std::ostringstream os;
  os << "{\"type\": \"hello\", \"protocol\": " << kProtocolVersion
     << ", \"worker\": " << quote(worker)
     << ", \"fingerprint\": " << quote(fingerprint) << "}";
  return os.str();
}

std::string encode_lease_request(const std::string& worker) {
  return "{\"type\": \"lease_request\", \"worker\": " + quote(worker) + "}";
}

std::string encode_heartbeat(int shard_index, std::uint64_t token,
                             std::size_t completed, std::size_t owned) {
  std::ostringstream os;
  os << "{\"type\": \"heartbeat\", \"shard_index\": " << shard_index
     << ", \"token\": " << token << ", \"completed\": " << completed
     << ", \"owned\": " << owned << "}";
  return os.str();
}

std::string encode_upload(int shard_index, std::uint64_t token,
                          const std::string& file_bytes) {
  std::ostringstream os;
  os << "{\"type\": \"upload\", \"shard_index\": " << shard_index
     << ", \"token\": " << token << ", \"bytes\": " << quote(file_bytes)
     << "}";
  return os.str();
}

std::string encode_hello_ok(int shard_count) {
  std::ostringstream os;
  os << "{\"type\": \"hello_ok\", \"protocol\": " << kProtocolVersion
     << ", \"shard_count\": " << shard_count << "}";
  return os.str();
}

std::string encode_lease_grant(int shard_index, int shard_count,
                               std::uint64_t token,
                               std::int64_t heartbeat_ms) {
  std::ostringstream os;
  os << "{\"type\": \"lease_grant\", \"shard_index\": " << shard_index
     << ", \"shard_count\": " << shard_count << ", \"token\": " << token
     << ", \"heartbeat_ms\": " << heartbeat_ms << "}";
  return os.str();
}

std::string encode_wait(std::int64_t retry_ms) {
  std::ostringstream os;
  os << "{\"type\": \"wait\", \"retry_ms\": " << retry_ms << "}";
  return os.str();
}

std::string encode_done() { return "{\"type\": \"done\"}"; }

std::string encode_heartbeat_ok() { return "{\"type\": \"heartbeat_ok\"}"; }

std::string encode_upload_ok() { return "{\"type\": \"upload_ok\"}"; }

std::string encode_lease_lost() { return "{\"type\": \"lease_lost\"}"; }

std::string encode_error(const std::string& what) {
  return "{\"type\": \"error\", \"what\": " + quote(what) + "}";
}

}  // namespace flim::fleet

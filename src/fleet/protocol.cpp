#include "fleet/protocol.hpp"

#include <sstream>

#include "core/report.hpp"

namespace flim::fleet {

namespace {

std::string quote(const std::string& s) {
  return '"' + core::json_escape(s) + '"';
}

}  // namespace

Message parse_message(const std::string& line) {
  Message msg;
  msg.fields = core::parse_json_object_line(line);
  msg.type = core::json_string(msg.fields, "type");
  return msg;
}

std::string encode_hello(const std::string& worker,
                         const std::string& fingerprint) {
  std::ostringstream os;
  os << "{\"type\": \"hello\", \"protocol\": " << kProtocolVersion
     << ", \"worker\": " << quote(worker)
     << ", \"fingerprint\": " << quote(fingerprint) << "}";
  return os.str();
}

std::string encode_lease_request(const std::string& worker) {
  return "{\"type\": \"lease_request\", \"worker\": " + quote(worker) + "}";
}

std::string encode_heartbeat(int shard_index, std::uint64_t token,
                             std::size_t completed, std::size_t owned) {
  std::ostringstream os;
  os << "{\"type\": \"heartbeat\", \"shard_index\": " << shard_index
     << ", \"token\": " << token << ", \"completed\": " << completed
     << ", \"owned\": " << owned << "}";
  return os.str();
}

std::string encode_upload(int shard_index, std::uint64_t token,
                          const std::string& file_bytes) {
  std::ostringstream os;
  os << "{\"type\": \"upload\", \"shard_index\": " << shard_index
     << ", \"token\": " << token << ", \"bytes\": " << quote(file_bytes)
     << "}";
  return os.str();
}

std::string encode_hello_ok(int shard_count) {
  std::ostringstream os;
  os << "{\"type\": \"hello_ok\", \"protocol\": " << kProtocolVersion
     << ", \"shard_count\": " << shard_count << "}";
  return os.str();
}

std::string encode_lease_grant(int shard_index, int shard_count,
                               std::uint64_t token,
                               std::int64_t heartbeat_ms) {
  std::ostringstream os;
  os << "{\"type\": \"lease_grant\", \"shard_index\": " << shard_index
     << ", \"shard_count\": " << shard_count << ", \"token\": " << token
     << ", \"heartbeat_ms\": " << heartbeat_ms << "}";
  return os.str();
}

std::string encode_wait(std::int64_t retry_ms) {
  std::ostringstream os;
  os << "{\"type\": \"wait\", \"retry_ms\": " << retry_ms << "}";
  return os.str();
}

std::string encode_done() { return "{\"type\": \"done\"}"; }

std::string encode_heartbeat_ok() { return "{\"type\": \"heartbeat_ok\"}"; }

std::string encode_upload_ok() { return "{\"type\": \"upload_ok\"}"; }

std::string encode_lease_lost() { return "{\"type\": \"lease_lost\"}"; }

std::string encode_error(const std::string& what) {
  return "{\"type\": \"error\", \"what\": " + quote(what) + "}";
}

std::string encode_eval_request(const EvalRequest& req) {
  std::ostringstream os;
  os << "{\"type\": \"eval_request\", \"protocol\": " << kProtocolVersion
     << ", \"model\": " << quote(req.model)
     << ", \"backend\": " << quote(req.backend)
     << ", \"tmr_replicas\": " << req.tmr_replicas
     << ", \"fault\": " << quote(req.fault_expr)
     << ", \"granularity\": " << quote(req.granularity)
     << ", \"grid\": " << quote(req.grid)
     << ", \"reps\": " << req.repetitions << ", \"seed\": " << req.master_seed
     << ", \"deadline_ms\": " << req.deadline_ms << "}";
  return os.str();
}

EvalRequest decode_eval_request(const Message& msg) {
  EvalRequest req;
  req.model = core::json_string(msg.fields, "model");
  req.backend = core::json_string(msg.fields, "backend");
  req.tmr_replicas =
      static_cast<int>(core::json_number(msg.fields, "tmr_replicas"));
  req.fault_expr = core::json_string(msg.fields, "fault");
  req.granularity = core::json_string(msg.fields, "granularity");
  req.grid = core::json_string(msg.fields, "grid");
  req.repetitions = static_cast<int>(core::json_number(msg.fields, "reps"));
  req.master_seed =
      static_cast<std::uint64_t>(core::json_number(msg.fields, "seed"));
  req.deadline_ms =
      static_cast<std::int64_t>(core::json_number(msg.fields, "deadline_ms"));
  return req;
}

std::string encode_eval_result(const std::string& payload) {
  return "{\"type\": \"eval_result\", \"payload\": " + quote(payload) + "}";
}

std::string decode_eval_result(const Message& msg) {
  return core::json_string(msg.fields, "payload");
}

std::string encode_busy(std::int64_t retry_ms) {
  std::ostringstream os;
  os << "{\"type\": \"busy\", \"retry_ms\": " << retry_ms << "}";
  return os.str();
}

std::string encode_stats_request() { return "{\"type\": \"stats\"}"; }

std::string encode_stats_ok(const ServeStats& stats) {
  std::ostringstream os;
  os << "{\"type\": \"stats_ok\", \"cache_hits\": " << stats.cache_hits
     << ", \"cache_misses\": " << stats.cache_misses
     << ", \"cache_evictions\": " << stats.cache_evictions
     << ", \"cache_entries\": " << stats.cache_entries
     << ", \"requests_completed\": " << stats.requests_completed
     << ", \"requests_expired\": " << stats.requests_expired
     << ", \"requests_rejected\": " << stats.requests_rejected
     << ", \"batches\": " << stats.batches
     << ", \"coalesced\": " << stats.coalesced << "}";
  return os.str();
}

ServeStats decode_stats_ok(const Message& msg) {
  const auto u64 = [&](const char* key) {
    return static_cast<std::uint64_t>(core::json_number(msg.fields, key));
  };
  ServeStats stats;
  stats.cache_hits = u64("cache_hits");
  stats.cache_misses = u64("cache_misses");
  stats.cache_evictions = u64("cache_evictions");
  stats.cache_entries = u64("cache_entries");
  stats.requests_completed = u64("requests_completed");
  stats.requests_expired = u64("requests_expired");
  stats.requests_rejected = u64("requests_rejected");
  stats.batches = u64("batches");
  stats.coalesced = u64("coalesced");
  return stats;
}

}  // namespace flim::fleet

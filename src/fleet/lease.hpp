// Shard lease table: who owns which slice of the grid, until when.
//
// The coordinator partitions a campaign into shard_count interleaved shards
// (exp::shard_owns) and leases each to at most one worker at a time. A
// lease is (shard, worker, fencing token, deadline): heartbeats refresh the
// deadline, silence past the TTL makes the shard grantable again, and the
// monotonically increasing token fences zombies -- a worker that went
// silent and comes back heartbeats with a stale token, is told the lease is
// lost, and abandons the shard instead of double-reporting it. Expiry is
// lazy (checked at acquire time), so the table needs no timer thread.
// State machine: docs/fleet.md#lease-state-machine.
#pragma once

/// \file
/// The coordinator's mutex-guarded shard lease table: grant, heartbeat,
/// expiry, re-lease, and completion under fencing tokens.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"

namespace flim::fleet {

/// Lifecycle of one shard's lease.
enum class LeaseState : std::uint8_t {
  kUnleased = 0,  ///< Never granted, or forfeited before completion.
  kLeased = 1,    ///< Held by a worker; expires at `deadline_ms`.
  kDone = 2,      ///< Shard uploaded and validated; terminal.
};

/// Point-in-time view of one shard's lease (LeaseTable::snapshot).
struct LeaseInfo {
  LeaseState state = LeaseState::kUnleased;
  /// Name of the holding (or last holding) worker.
  std::string worker;
  /// Fencing token of the current grant (0 before the first grant).
  std::uint64_t token = 0;
  /// core::steady_now_ms deadline after which the lease is expired.
  std::int64_t deadline_ms = 0;
  /// Completed points reported by the last heartbeat.
  std::size_t completed = 0;
  /// Owned points reported by the last heartbeat (0 until the first one).
  std::size_t owned = 0;
};

/// Thread-safe lease bookkeeping for one campaign's shards. All calls take
/// the current time explicitly (core::steady_now_ms in production, a fake
/// clock in tests), so expiry logic is deterministic under test.
class LeaseTable {
 public:
  /// A successful grant: the shard to run and its fencing token.
  struct Grant {
    int shard_index = 0;
    std::uint64_t token = 0;
  };

  /// `shard_count` shards, each lease expiring `ttl_ms` after its grant or
  /// last heartbeat. Throws std::invalid_argument on non-positive values.
  LeaseTable(int shard_count, std::int64_t ttl_ms);

  /// Grants the lowest-indexed grantable shard to `worker`: first shards
  /// never leased, then shards whose lease expired before `now_ms` (counted
  /// as a re-lease). Returns nullopt when every incomplete shard is held by
  /// a live lease (caller tells the worker to wait) or all shards are done.
  std::optional<Grant> acquire(const std::string& worker, std::int64_t now_ms);

  /// Refreshes the lease deadline and records progress. Returns false when
  /// the token is stale (lease expired and re-granted, or shard already
  /// done) -- the caller answers lease_lost and the worker abandons.
  bool heartbeat(int shard_index, std::uint64_t token, std::size_t completed,
                 std::size_t owned, std::int64_t now_ms);

  /// Marks a shard done. Returns false on a stale token; completion is
  /// first-writer-wins and terminal.
  bool complete(int shard_index, std::uint64_t token);

  /// True when every shard is done.
  bool all_done() const;

  /// Number of shards marked done so far.
  int done_count() const;

  /// Times an expired lease was re-granted to another acquire call.
  std::size_t expired_releases() const;

  /// Copies the per-shard lease states (for status logging and tests).
  std::vector<LeaseInfo> snapshot() const;

 private:
  mutable core::Mutex mutex_;
  std::vector<LeaseInfo> leases_ FLIM_GUARDED_BY(mutex_);
  std::uint64_t next_token_ FLIM_GUARDED_BY(mutex_) = 1;
  std::size_t expired_count_ FLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t ttl_ms_ = 0;
};

}  // namespace flim::fleet

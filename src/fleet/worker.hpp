// Fleet worker: runs leased shards and uploads their run files.
//
// A worker is a plain loop around the existing durable runner: connect
// (with shared exponential backoff), prove the spec fingerprint on hello,
// then lease shards until the coordinator says done. Each leased shard runs
// through exp::ScenarioRunner with StoreOptions pointing at a *partial*
// run file in the shared work directory -- resume-in-place, so a shard that
// was abandoned (by this worker or a dead one) continues from its last
// durable point instead of starting over. Heartbeats ride the same
// connection between grid points; a lease_lost answer makes the worker
// abandon mid-shard (the partial file stays for the new lessee). On
// completion the worker uploads the file bytes and asks for the next lease.
// Docs: docs/fleet.md.
#pragma once

/// \file
/// The fleet worker loop: lease, run-with-resume, heartbeat, upload.

#include <cstdint>
#include <string>

#include "core/backoff.hpp"
#include "exp/scenario.hpp"

namespace flim::fleet {

/// Tuning for one worker process (or in-process worker thread).
struct WorkerOptions {
  /// Coordinator address.
  std::string host = "127.0.0.1";
  /// Coordinator port.
  int port = 0;
  /// Name reported in hello/lease messages (log readability only).
  std::string name = "worker";
  /// Directory holding the shared shard-<i>-of-<n>.partial.jsonl files.
  /// Must be the same filesystem location for every worker that should be
  /// able to resume another's abandoned shard.
  std::string work_dir = "fleet-work";
  /// Heartbeat cadence; 0 adopts the cadence advertised in the lease grant.
  std::int64_t heartbeat_ms = 0;
  /// Timeout for every awaited coordinator response.
  std::int64_t io_timeout_ms = 30000;
  /// Backoff schedule for connect retries.
  core::BackoffPolicy connect_backoff;
  /// Connection attempts before giving up (>= 1).
  int max_connect_attempts = 8;
  /// Seed for the backoff jitter stream (worker-local; never touches
  /// campaign numbers).
  std::uint64_t backoff_seed = 7;
  /// Overrides ScenarioSpec::jobs when >= 1 (execution-only; outside the
  /// spec fingerprint, so workers may differ freely).
  int jobs = 0;
  /// fsync each stored point (durable progress markers). Disable only in
  /// tests on throwaway files.
  bool fsync_each_point = true;
  /// Test hook simulating a crash: after this many freshly evaluated
  /// points the worker abandons everything mid-shard -- no upload, no
  /// further heartbeats, partial file left behind. 0 disables.
  std::size_t max_points = 0;
};

/// What a worker did before exiting (test assertions and CLI logging).
struct WorkerReport {
  /// Shards this worker completed and uploaded.
  int shards_completed = 0;
  /// Grid points this worker freshly evaluated (excludes resumed points).
  std::size_t points_evaluated = 0;
  /// Leases granted to this worker.
  int leases_granted = 0;
  /// Leases lost to expiry/fencing (abandoned mid-shard).
  int leases_lost = 0;
  /// True when the coordinator reported campaign completion.
  bool saw_done = false;
  /// True when the max_points crash hook fired.
  bool aborted = false;
};

/// Runs the worker loop against a caller-provided workload until the
/// coordinator reports done (or the max_points crash hook fires). Throws
/// std::runtime_error on connection failure after retries, fingerprint
/// rejection, or protocol violations.
WorkerReport run_worker(const exp::ScenarioSpec& spec,
                        const exp::Workload& workload,
                        const WorkerOptions& options);

/// Convenience overload that loads the spec's workload first.
WorkerReport run_worker(const exp::ScenarioSpec& spec,
                        const WorkerOptions& options);

}  // namespace flim::fleet

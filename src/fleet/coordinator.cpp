#include "fleet/coordinator.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/check.hpp"
#include "core/clock.hpp"
#include "core/log.hpp"
#include "core/minijson.hpp"
#include "exp/store.hpp"
#include "fleet/protocol.hpp"

namespace flim::fleet {

namespace {

/// How often blocked accept/recv calls wake up to check the stop flag.
constexpr std::int64_t kPollMs = 200;

}  // namespace

Coordinator::Coordinator(exp::ScenarioSpec spec, CoordinatorOptions options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      leases_(options_.shard_count, options_.lease_ttl_ms) {
  exp::validate(spec_);
  FLIM_REQUIRE(options_.heartbeat_ms >= 1, "heartbeat_ms must be >= 1");
  FLIM_REQUIRE(options_.heartbeat_ms < options_.lease_ttl_ms,
               "heartbeat_ms must be below lease_ttl_ms or every lease "
               "expires between heartbeats");
  FLIM_REQUIRE(options_.wait_retry_ms >= 1, "wait_retry_ms must be >= 1");
  FLIM_REQUIRE(!options_.work_dir.empty(), "work_dir must be set");
  fingerprint_ = exp::spec_fingerprint(spec_);
}

Coordinator::~Coordinator() { stop(); }

std::string Coordinator::shard_path(int shard_index) const {
  return options_.work_dir + "/shard-" + std::to_string(shard_index) +
         "-of-" + std::to_string(options_.shard_count) + ".run.jsonl";
}

void Coordinator::start() {
  {
    const core::MutexLock lock(mutex_);
    FLIM_REQUIRE(!started_, "coordinator already started");
    started_ = true;
  }
  std::filesystem::create_directories(options_.work_dir);
  listener_ = listen_on(options_.host, options_.port);
  port_ = local_port(listener_);
  accept_thread_ = std::thread(&Coordinator::accept_loop, this);
  FLIM_LOG_INFO << "fleet: coordinating " << options_.shard_count
                << " shard(s) of '" << spec_.name << "' on " << options_.host
                << ":" << port_ << " (fingerprint " << fingerprint_ << ")";
}

exp::ScenarioResult Coordinator::wait() {
  {
    core::CondLock lock(mutex_);
    while (!stop_.load() && !leases_.all_done()) lock.wait(done_cv_);
  }
  if (!leases_.all_done()) {
    throw std::runtime_error("fleet: coordinator stopped before completion");
  }
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(options_.shard_count));
  for (int i = 0; i < options_.shard_count; ++i) {
    paths.push_back(shard_path(i));
  }
  return exp::merge_run_files(paths);
}

void Coordinator::stop() {
  stop_.store(true);
  {
    // Taking the lock orders the flag store before any waiter's re-check,
    // so the notify below cannot be lost.
    const core::MutexLock lock(mutex_);
  }
  done_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::thread> handlers;
  {
    const core::MutexLock lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) t.join();
}

void Coordinator::accept_loop() {
  while (!stop_.load()) {
    std::optional<Socket> conn;
    try {
      conn = accept_with_timeout(listener_, kPollMs);
    } catch (const std::runtime_error& e) {
      if (stop_.load()) return;
      FLIM_LOG_WARN << "fleet: accept failed: " << e.what();
      continue;
    }
    if (!conn) continue;
    const core::MutexLock lock(mutex_);
    handlers_.emplace_back(&Coordinator::handle_connection, this,
                           std::move(*conn));
  }
}

void Coordinator::handle_connection(Socket socket) {
  LineChannel chan(std::move(socket));
  bool greeted = false;
  try {
    while (true) {
      const RecvResult recv = chan.recv_line(kPollMs);
      if (recv.status == RecvStatus::kEof) return;
      if (recv.status == RecvStatus::kTimeout) {
        if (!stop_.load()) continue;
        // Shutting down: a worker blocked on its next lease_request would
        // otherwise see a bare EOF and burn reconnect attempts; when the
        // campaign is finished, tell it so first.
        if (leases_.all_done()) chan.send_line(encode_done());
        return;
      }
      Message msg;
      try {
        msg = parse_message(recv.line);
        if (msg.type == "hello") {
          const int protocol =
              static_cast<int>(core::json_number(msg.fields, "protocol"));
          if (protocol != kProtocolVersion) {
            chan.send_line(encode_error(
                "protocol version mismatch: coordinator speaks v" +
                std::to_string(kProtocolVersion)));
            return;
          }
          const std::string fp = core::json_string(msg.fields, "fingerprint");
          if (fp != fingerprint_) {
            // Different spec or different binary (the fingerprint mixes in
            // the code fingerprint); either way this worker's numbers could
            // differ from ours, so it contributes nothing.
            chan.send_line(encode_error(
                "spec fingerprint mismatch: coordinator has " + fingerprint_ +
                ", worker sent " + fp));
            return;
          }
          greeted = true;
          chan.send_line(encode_hello_ok(options_.shard_count));
        } else if (!greeted) {
          chan.send_line(encode_error("hello must precede " + msg.type));
          return;
        } else if (msg.type == "lease_request") {
          const std::string worker = core::json_string(msg.fields, "worker");
          if (leases_.all_done()) {
            chan.send_line(encode_done());
          } else if (const auto grant =
                         leases_.acquire(worker, core::steady_now_ms())) {
            FLIM_LOG_INFO << "fleet: leased shard " << grant->shard_index
                          << "/" << options_.shard_count << " to " << worker
                          << " (token " << grant->token << ")";
            chan.send_line(encode_lease_grant(grant->shard_index,
                                              options_.shard_count,
                                              grant->token,
                                              options_.heartbeat_ms));
          } else {
            chan.send_line(encode_wait(options_.wait_retry_ms));
          }
        } else if (msg.type == "heartbeat") {
          const int shard =
              static_cast<int>(core::json_number(msg.fields, "shard_index"));
          const auto token = static_cast<std::uint64_t>(
              core::json_number(msg.fields, "token"));
          const auto completed = static_cast<std::size_t>(
              core::json_number(msg.fields, "completed"));
          const auto owned = static_cast<std::size_t>(
              core::json_number(msg.fields, "owned"));
          const bool alive = leases_.heartbeat(shard, token, completed, owned,
                                               core::steady_now_ms());
          chan.send_line(alive ? encode_heartbeat_ok() : encode_lease_lost());
        } else if (msg.type == "upload") {
          const int shard =
              static_cast<int>(core::json_number(msg.fields, "shard_index"));
          const auto token = static_cast<std::uint64_t>(
              core::json_number(msg.fields, "token"));
          const std::string reason = accept_upload(
              shard, token, core::json_string(msg.fields, "bytes"));
          if (reason.empty()) {
            FLIM_LOG_INFO << "fleet: shard " << shard << "/"
                          << options_.shard_count << " uploaded ("
                          << leases_.done_count() << " done)";
            chan.send_line(encode_upload_ok());
          } else {
            chan.send_line(encode_error(reason));
            return;
          }
        } else {
          chan.send_line(encode_error("unknown message type: " + msg.type));
          return;
        }
      } catch (const core::JsonError& e) {
        chan.send_line(encode_error("protocol violation: " + e.what));
        return;
      }
    }
  } catch (const std::exception& e) {
    // Socket errors mean the worker vanished mid-exchange; its lease will
    // expire and the shard will be re-granted. Nothing to unwind here.
    FLIM_LOG_WARN << "fleet: connection dropped: " << e.what();
  }
}

std::string Coordinator::accept_upload(int shard_index, std::uint64_t token,
                                       const std::string& bytes) {
  if (shard_index < 0 || shard_index >= options_.shard_count) {
    return "upload shard index out of range";
  }
  const std::string final_path = shard_path(shard_index);
  const std::string tmp_path = final_path + ".uploading";
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out.good()) return "cannot write upload to " + tmp_path;
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out.good()) return "short write to " + tmp_path;
    }
    // Validate before the rename: a malformed or foreign upload must never
    // shadow the canonical shard path.
    const exp::RunFile run = exp::RunFile::load(tmp_path);
    if (run.header.fingerprint != fingerprint_) {
      std::remove(tmp_path.c_str());
      return "uploaded shard has fingerprint " + run.header.fingerprint +
             ", expected " + fingerprint_;
    }
    if (run.header.shard_index != shard_index ||
        run.header.shard_count != options_.shard_count) {
      std::remove(tmp_path.c_str());
      return "uploaded file is shard " +
             std::to_string(run.header.shard_index) + "/" +
             std::to_string(run.header.shard_count) + ", lease is shard " +
             std::to_string(shard_index) + "/" +
             std::to_string(options_.shard_count);
    }
    if (run.truncated_tail || !run.complete()) {
      std::remove(tmp_path.c_str());
      return "uploaded shard is incomplete (" +
             std::to_string(run.points.size()) + " of " +
             std::to_string(run.owned_points()) + " points)";
    }
    std::filesystem::rename(tmp_path, final_path);
  } catch (const std::exception& e) {
    std::remove(tmp_path.c_str());
    return std::string("upload rejected: ") + e.what();
  }
  if (!leases_.complete(shard_index, token)) {
    // The shard file on disk is complete and validated either way; only the
    // fencing bookkeeping refuses a stale token (re-leased or already done).
    return "lease lost: stale fencing token for shard " +
           std::to_string(shard_index);
  }
  {
    const core::MutexLock lock(mutex_);
  }
  done_cv_.notify_all();
  return "";
}

}  // namespace flim::fleet

// Campaign coordinator: leases shards to workers, merges their results.
//
// One coordinator owns one ScenarioSpec. It listens on a TCP port, vets
// each worker's spec fingerprint on hello, hands out shard leases from a
// LeaseTable, refreshes them on heartbeats, expires silent ones so another
// worker can resume the shard's partial run file, and validates every
// uploaded shard file (fingerprint, shard identity, completeness) before
// accepting it. When all shards are uploaded it folds them through
// exp::merge_run_files -- so the fleet's CSV is byte-identical to a
// single-process run of the same spec. Threading is deliberately plain:
// one accept thread plus one blocking handler thread per connection, all
// joined in stop(). Docs: docs/fleet.md.
#pragma once

/// \file
/// The fleet coordinator: TCP serve loop, lease handout/expiry, upload
/// validation, and merge-on-completion.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/sync.hpp"
#include "exp/scenario.hpp"
#include "fleet/lease.hpp"
#include "fleet/wire.hpp"

namespace flim::fleet {

/// Tuning for one coordinator instance.
struct CoordinatorOptions {
  /// Dotted IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read back with port()).
  int port = 0;
  /// Number of shards the grid is partitioned into (>= 1).
  int shard_count = 1;
  /// A lease expires this long after its grant or last heartbeat; expired
  /// shards are re-leased. Must exceed the slowest grid point's evaluation
  /// time (heartbeats fire between points, not during them).
  std::int64_t lease_ttl_ms = 30000;
  /// Heartbeat cadence advertised to workers in lease grants; sensible
  /// values are well under lease_ttl_ms.
  std::int64_t heartbeat_ms = 5000;
  /// Retry delay advertised to workers when every shard is busy.
  std::int64_t wait_retry_ms = 500;
  /// Directory where validated shard uploads land (created on demand) as
  /// shard-<i>-of-<n>.run.jsonl.
  std::string work_dir = "fleet-work";
};

/// Serves one campaign to a worker fleet. start() binds and spawns the
/// accept loop; wait() blocks until every shard is uploaded and returns the
/// merged result; stop() tears the serve loop down (idempotent, also called
/// by the destructor).
class Coordinator {
 public:
  /// Validates the spec and options. Throws std::invalid_argument on bad
  /// configuration.
  Coordinator(exp::ScenarioSpec spec, CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listener and starts serving. Throws std::runtime_error when
  /// the bind fails.
  void start();

  /// The bound TCP port (valid after start()).
  int port() const { return port_; }

  /// Blocks until every shard is uploaded, then merges the shard files and
  /// returns the complete campaign result. Throws std::runtime_error when
  /// stop() interrupts the wait before completion.
  exp::ScenarioResult wait();

  /// Stops serving: closes the listener, wakes wait(), joins all threads.
  void stop();

  /// Lease-table introspection (status logging and tests).
  const LeaseTable& leases() const { return leases_; }

  /// Path the validated upload for `shard_index` is stored at.
  std::string shard_path(int shard_index) const;

 private:
  void accept_loop();
  void handle_connection(Socket socket);
  /// Validates an uploaded shard file and moves it into place. Returns an
  /// empty string on success, else the rejection reason.
  std::string accept_upload(int shard_index, std::uint64_t token,
                            const std::string& bytes);

  exp::ScenarioSpec spec_;
  CoordinatorOptions options_;
  std::string fingerprint_;
  LeaseTable leases_;
  int port_ = 0;

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  core::Mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<std::thread> handlers_ FLIM_GUARDED_BY(mutex_);
  bool started_ FLIM_GUARDED_BY(mutex_) = false;
};

}  // namespace flim::fleet

#include "fleet/wire.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/check.hpp"
#include "core/clock.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FLIM_FLEET_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FLIM_FLEET_POSIX 0
#endif

namespace flim::fleet {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

#if FLIM_FLEET_POSIX

sockaddr_in make_addr(const std::string& host, int port) {
  FLIM_REQUIRE(port >= 0 && port <= 65535, "port must be in [0, 65535]");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int rc = ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  FLIM_REQUIRE(rc == 1, "fleet host must be a dotted IPv4 address: " + host);
  return addr;
}

// Waits for readability; true when readable, false on timeout. EINTR
// restarts with the remaining budget so signals cannot shorten waits.
bool poll_readable(int fd, std::int64_t timeout_ms) {
  const bool forever = timeout_ms < 0;
  const std::int64_t deadline = forever ? 0 : core::steady_now_ms() + timeout_ms;
  while (true) {
    std::int64_t remaining = -1;
    if (!forever) {
      remaining = deadline - core::steady_now_ms();
      if (remaining < 0) remaining = 0;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    fail_errno("poll failed");
  }
}

#endif  // FLIM_FLEET_POSIX

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
#if FLIM_FLEET_POSIX
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

#if FLIM_FLEET_POSIX

Socket listen_on(const std::string& host, int port, int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("cannot create listener socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(s.fd(), backlog) != 0) fail_errno("cannot listen");
  return s;
}

int Socket::local_port() const {
  FLIM_REQUIRE(valid(), "local_port on an empty socket");
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

int local_port(const Socket& listener) { return listener.local_port(); }

std::optional<Socket> accept_with_timeout(const Socket& listener,
                                          std::int64_t timeout_ms) {
  if (!poll_readable(listener.fd(), timeout_ms)) return std::nullopt;
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    // The pending peer can vanish between poll and accept; that is a
    // timeout-shaped outcome, not an error.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == EINTR) {
      return std::nullopt;
    }
    fail_errno("accept failed");
  }
  return Socket(fd);
}

Socket connect_to(const std::string& host, int port) {
  const sockaddr_in addr = make_addr(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("cannot create socket");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail_errno("cannot connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

void LineChannel::send_line(const std::string& line) {
  FLIM_REQUIRE(line.find('\n') == std::string::npos,
               "fleet messages are single lines");
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
#if defined(MSG_NOSIGNAL)
    const int flags = MSG_NOSIGNAL;
#else
    const int flags = 0;
#endif
    const ssize_t n =
        ::send(socket_.fd(), framed.data() + sent, framed.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

RecvResult LineChannel::recv_line(std::int64_t timeout_ms) {
  const bool forever = timeout_ms < 0;
  const std::int64_t deadline =
      forever ? 0 : core::steady_now_ms() + timeout_ms;
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      RecvResult out{RecvStatus::kLine, buffer_.substr(0, nl)};
      buffer_.erase(0, nl + 1);
      return out;
    }
    if (buffer_.size() > kMaxLineBytes) {
      throw std::runtime_error("fleet message exceeds the line-length cap");
    }
    std::int64_t remaining = -1;
    if (!forever) {
      remaining = deadline - core::steady_now_ms();
      if (remaining < 0) remaining = 0;
    }
    if (!poll_readable(socket_.fd(), remaining)) {
      return {RecvStatus::kTimeout, {}};
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv failed");
    }
    if (n == 0) {
      // Clean shutdown. A torn trailing fragment (no newline) is dropped,
      // mirroring how the run-file loader treats torn tails.
      return {RecvStatus::kEof, {}};
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

#else  // !FLIM_FLEET_POSIX

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error("fleet networking requires POSIX sockets");
}
}  // namespace

Socket listen_on(const std::string&, int, int) { unsupported(); }
int Socket::local_port() const { unsupported(); }
int local_port(const Socket&) { unsupported(); }
std::optional<Socket> accept_with_timeout(const Socket&, std::int64_t) {
  unsupported();
}
Socket connect_to(const std::string&, int) { unsupported(); }
void LineChannel::send_line(const std::string&) { unsupported(); }
RecvResult LineChannel::recv_line(std::int64_t) { unsupported(); }

#endif  // FLIM_FLEET_POSIX

Socket connect_with_retry(const std::string& host, int port,
                          const core::BackoffPolicy& policy, int max_attempts,
                          core::Rng& rng) {
  core::validate(policy);
  FLIM_REQUIRE(max_attempts >= 1, "max_attempts must be >= 1");
  for (int attempt = 0;; ++attempt) {
    try {
      return connect_to(host, port);
    } catch (const std::runtime_error&) {
      if (attempt + 1 >= max_attempts) throw;
    }
    core::sleep_ms(core::backoff_delay_ms(policy, attempt, rng));
  }
}

}  // namespace flim::fleet

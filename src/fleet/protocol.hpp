// Fleet wire protocol: the message catalog.
//
// One JSON object per line, a "type" field naming the message, everything
// else flat string/number fields (core/minijson vocabulary). The protocol
// is deliberately request/response over one connection per worker: the
// worker speaks (hello, lease_request, heartbeat, upload), the coordinator
// answers each line with exactly one line, so neither side ever needs
// message correlation. Docs: docs/fleet.md#wire-protocol.
#pragma once

/// \file
/// Typed encode/decode for the fleet's line-delimited JSON messages.

#include <cstdint>
#include <map>
#include <string>

#include "core/minijson.hpp"

namespace flim::fleet {

/// Protocol revision; both ends send it in hello/hello_ok and refuse
/// mismatches, so a stale binary fails fast instead of misparsing.
inline constexpr int kProtocolVersion = 1;

/// A decoded message: its type tag plus the raw parsed fields. Field
/// accessors (core::json_number / json_string) throw core::JsonError on
/// missing or mistyped fields; callers treat that as a protocol violation.
struct Message {
  std::string type;
  std::map<std::string, core::JsonValue> fields;
};

/// Parses one wire line. Throws core::JsonError on malformed JSON or a
/// missing/mistyped "type" field.
Message parse_message(const std::string& line);

// --- Worker -> coordinator ------------------------------------------------

/// First message on a connection: protocol version, the worker's name, and
/// its spec fingerprint (spec_fingerprint(), which mixes in the code
/// fingerprint -- so a worker built from different sources is rejected
/// before it can contribute a single point).
std::string encode_hello(const std::string& worker,
                         const std::string& fingerprint);

/// Asks for a shard lease.
std::string encode_lease_request(const std::string& worker);

/// Periodic liveness + progress for a held lease: `completed` of `owned`
/// grid points are durably stored so far.
std::string encode_heartbeat(int shard_index, std::uint64_t token,
                             std::size_t completed, std::size_t owned);

/// Uploads the completed shard's run file verbatim (the JSONL bytes travel
/// as one JSON string; newlines ride as \n escapes).
std::string encode_upload(int shard_index, std::uint64_t token,
                          const std::string& file_bytes);

// --- Coordinator -> worker ------------------------------------------------

/// Accepts a hello.
std::string encode_hello_ok(int shard_count);

/// Grants shard `shard_index` of `shard_count` under fencing token `token`.
/// The worker heartbeats at least every `heartbeat_ms`; silence past the
/// coordinator's lease TTL forfeits the lease.
std::string encode_lease_grant(int shard_index, int shard_count,
                               std::uint64_t token, std::int64_t heartbeat_ms);

/// No shard free right now (all leased, none expired); retry the
/// lease_request after `retry_ms`.
std::string encode_wait(std::int64_t retry_ms);

/// Every shard is complete and uploaded; the worker can exit.
std::string encode_done();

/// Heartbeat acknowledged; the lease TTL was refreshed.
std::string encode_heartbeat_ok();

/// Upload validated and stored; the shard is done.
std::string encode_upload_ok();

/// The fencing token is stale: the lease expired and was re-granted. The
/// worker abandons the shard immediately (its partial file stays on disk
/// for the new lessee to resume).
std::string encode_lease_lost();

/// Fatal, connection-ending rejection (fingerprint mismatch, bad upload,
/// protocol violation). `what` is a human-readable reason.
std::string encode_error(const std::string& what);

// --- Serving (src/serve) --------------------------------------------------
//
// The evaluation server speaks the same one-JSON-object-per-line wire
// vocabulary: a client sends eval_request/stats lines, the server answers
// each with exactly one line (eval_result, busy, stats_ok, or error).
// Docs: docs/serving.md#wire-protocol.

/// One single-point evaluation request (client -> server): which model /
/// engine / fault stack to evaluate and the repetition protocol. The
/// server owns the workload shape (eval images, training budget), so two
/// clients asking for the same model share one warm cache entry.
struct EvalRequest {
  /// Model name ("lenet" or a Table-II zoo family).
  std::string model = "lenet";
  /// Execution substrate: reference|flim|device|tmr.
  std::string backend = "flim";
  /// kTmr replica count (ignored by the other backends).
  int tmr_replicas = 3;
  /// Composable fault expression (fault_registry grammar); "" = clean.
  std::string fault_expr;
  /// Mask granularity: output|term.
  std::string granularity = "output";
  /// Virtual crossbar grid as "RxC".
  std::string grid = "64x64";
  /// Repetition protocol.
  int repetitions = 3;
  std::uint64_t master_seed = 2023;
  /// Per-request deadline budget in ms from submission; < 0 = none. A
  /// request still queued when its budget elapses is answered with error
  /// instead of being evaluated.
  std::int64_t deadline_ms = -1;
};

/// Encodes an eval_request (carries kProtocolVersion; the server refuses
/// mismatches before touching the cache).
std::string encode_eval_request(const EvalRequest& req);

/// Decodes a parsed eval_request message. Field access throws
/// core::JsonError on missing/mistyped fields (a protocol violation).
EvalRequest decode_eval_request(const Message& msg);

/// The evaluation succeeded; `payload` is the canonical one-line JSON
/// summary (exp::format_eval_payload), byte-identical to what a direct
/// in-process evaluation of the same spec prints.
std::string encode_eval_result(const std::string& payload);

/// Extracts the payload of a parsed eval_result message.
std::string decode_eval_result(const Message& msg);

/// The submission queue is full; retry after `retry_ms` (clients back off
/// with core::BackoffPolicy on top of this hint).
std::string encode_busy(std::int64_t retry_ms);

/// Asks the server for its cache/batcher counters.
std::string encode_stats_request();

/// Serving-path counters, snapshot at stats time.
struct ServeStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Warm entries currently resident.
  std::uint64_t cache_entries = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_expired = 0;
  std::uint64_t requests_rejected = 0;
  /// Executed batches and the extra same-key requests that rode along.
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
};

/// Answers a stats request.
std::string encode_stats_ok(const ServeStats& stats);

/// Decodes a parsed stats_ok message.
ServeStats decode_stats_ok(const Message& msg);

}  // namespace flim::fleet

#include "fleet/worker.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/check.hpp"
#include "core/clock.hpp"
#include "core/log.hpp"
#include "core/minijson.hpp"
#include "exp/store.hpp"
#include "fleet/protocol.hpp"
#include "fleet/wire.hpp"

namespace flim::fleet {

namespace {

/// Thrown (by value, file-local) when a heartbeat answers lease_lost: the
/// shard belongs to someone else now, unwind out of the runner.
struct LeaseLost {};

/// Thrown when the max_points crash hook fires: stop everything, upload
/// nothing, leave the partial file exactly as a SIGKILL would.
struct SimulatedCrash {};

/// Sends `line` and awaits the coordinator's one-line answer.
Message exchange(LineChannel& chan, const std::string& line,
                 std::int64_t timeout_ms) {
  chan.send_line(line);
  const RecvResult recv = chan.recv_line(timeout_ms);
  if (recv.status == RecvStatus::kEof) {
    throw std::runtime_error("fleet: coordinator closed the connection");
  }
  if (recv.status == RecvStatus::kTimeout) {
    throw std::runtime_error("fleet: coordinator unresponsive after " +
                             std::to_string(timeout_ms) + " ms");
  }
  try {
    return parse_message(recv.line);
  } catch (const core::JsonError& e) {
    throw std::runtime_error("fleet: malformed coordinator message: " +
                             e.what);
  }
}

[[noreturn]] void rethrow_error(const Message& msg) {
  throw std::runtime_error("fleet: coordinator rejected us: " +
                           core::json_string(msg.fields, "what"));
}

std::string partial_path(const WorkerOptions& options, int shard_index,
                         int shard_count) {
  return options.work_dir + "/shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".partial.jsonl";
}

/// Points already durably stored in a partial file (0 when absent or not
/// yet holding a complete header -- the same cases StoreOptions::resume_from
/// treats as a fresh start).
std::size_t restored_points(const std::string& path) {
  if (!std::filesystem::exists(path)) return 0;
  try {
    return exp::RunFile::load(path).points.size();
  } catch (const std::invalid_argument&) {
    return 0;
  }
}

}  // namespace

WorkerReport run_worker(const exp::ScenarioSpec& spec,
                        const exp::Workload& workload,
                        const WorkerOptions& options) {
  FLIM_REQUIRE(options.max_connect_attempts >= 1,
               "max_connect_attempts must be >= 1");
  FLIM_REQUIRE(options.io_timeout_ms >= 1, "io_timeout_ms must be >= 1");
  FLIM_REQUIRE(!options.work_dir.empty(), "work_dir must be set");
  core::validate(options.connect_backoff);

  exp::ScenarioSpec worker_spec = spec;
  if (options.jobs >= 1) worker_spec.jobs = options.jobs;
  exp::ScenarioRunner runner(worker_spec);
  const std::string fingerprint = exp::spec_fingerprint(worker_spec);

  std::size_t total_points = 1;
  for (const exp::ScenarioAxis& axis : worker_spec.axes) {
    total_points *= axis.values.size();
  }

  std::filesystem::create_directories(options.work_dir);
  core::Rng backoff_rng(options.backoff_seed);
  LineChannel chan(connect_with_retry(options.host, options.port,
                                      options.connect_backoff,
                                      options.max_connect_attempts,
                                      backoff_rng));

  const Message hello_reply = exchange(
      chan, encode_hello(options.name, fingerprint), options.io_timeout_ms);
  if (hello_reply.type == "error") rethrow_error(hello_reply);
  if (hello_reply.type != "hello_ok") {
    throw std::runtime_error("fleet: expected hello_ok, got " +
                             hello_reply.type);
  }

  WorkerReport report;
  while (true) {
    const Message reply = exchange(chan, encode_lease_request(options.name),
                                   options.io_timeout_ms);
    if (reply.type == "done") {
      report.saw_done = true;
      FLIM_LOG_INFO << "fleet: " << options.name << " done ("
                    << report.shards_completed << " shard(s), "
                    << report.points_evaluated << " point(s))";
      return report;
    }
    if (reply.type == "wait") {
      core::sleep_ms(static_cast<std::int64_t>(
          core::json_number(reply.fields, "retry_ms")));
      continue;
    }
    if (reply.type == "error") rethrow_error(reply);
    if (reply.type != "lease_grant") {
      throw std::runtime_error("fleet: expected lease_grant, got " +
                               reply.type);
    }

    const int shard =
        static_cast<int>(core::json_number(reply.fields, "shard_index"));
    const int shard_count =
        static_cast<int>(core::json_number(reply.fields, "shard_count"));
    const auto token =
        static_cast<std::uint64_t>(core::json_number(reply.fields, "token"));
    const auto granted_hb = static_cast<std::int64_t>(
        core::json_number(reply.fields, "heartbeat_ms"));
    const std::int64_t heartbeat_ms =
        options.heartbeat_ms >= 1 ? options.heartbeat_ms : granted_hb;
    ++report.leases_granted;

    const std::string path = partial_path(options, shard, shard_count);
    exp::StoreOptions store;
    store.store_path = path;
    store.resume_from = path;
    store.shard_index = shard;
    store.shard_count = shard_count;
    store.fsync_each_point = options.fsync_each_point;

    std::size_t completed = restored_points(path);
    std::size_t owned = 0;
    for (std::size_t flat = 0; flat < total_points; ++flat) {
      if (exp::shard_owns(flat, shard, shard_count)) ++owned;
    }
    FLIM_LOG_INFO << "fleet: " << options.name << " running shard " << shard
                  << "/" << shard_count << " (" << completed << "/" << owned
                  << " restored)";

    auto beat = [&](std::size_t done_points) {
      const Message ack =
          exchange(chan, encode_heartbeat(shard, token, done_points, owned),
                   options.io_timeout_ms);
      if (ack.type == "lease_lost") throw LeaseLost{};
      if (ack.type == "error") rethrow_error(ack);
      if (ack.type != "heartbeat_ok") {
        throw std::runtime_error("fleet: expected heartbeat_ok, got " +
                                 ack.type);
      }
    };

    try {
      // One beat up front: it registers progress before the first point and
      // confirms the lease is still ours after the (possibly long) resume
      // file load.
      beat(completed);
      std::int64_t last_beat = core::steady_now_ms();
      runner.run(workload, store, [&](const exp::ScenarioPoint&) {
        ++completed;
        ++report.points_evaluated;
        if (options.max_points > 0 &&
            report.points_evaluated >= options.max_points) {
          throw SimulatedCrash{};
        }
        const std::int64_t now = core::steady_now_ms();
        if (now - last_beat >= heartbeat_ms) {
          beat(completed);
          last_beat = now;
        }
      });

      std::ifstream in(path, std::ios::binary);
      FLIM_REQUIRE(in.good(), "cannot read completed shard file: " + path);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      const Message ack = exchange(
          chan, encode_upload(shard, token, bytes.str()),
          options.io_timeout_ms);
      if (ack.type == "error") rethrow_error(ack);
      if (ack.type != "upload_ok") {
        throw std::runtime_error("fleet: expected upload_ok, got " + ack.type);
      }
      ++report.shards_completed;
    } catch (const LeaseLost&) {
      // The lease expired and someone else owns the shard now. The partial
      // file stays behind for the new lessee; ask for different work.
      ++report.leases_lost;
      FLIM_LOG_WARN << "fleet: " << options.name << " lost the lease on "
                    << "shard " << shard << "; abandoning";
    } catch (const SimulatedCrash&) {
      report.aborted = true;
      FLIM_LOG_WARN << "fleet: " << options.name
                    << " simulated crash after " << report.points_evaluated
                    << " point(s)";
      return report;
    }
  }
}

WorkerReport run_worker(const exp::ScenarioSpec& spec,
                        const WorkerOptions& options) {
  exp::ScenarioSpec worker_spec = spec;
  if (options.jobs >= 1) worker_spec.jobs = options.jobs;
  const exp::Workload workload = exp::load_workload(worker_spec.workload);
  return run_worker(spec, workload, options);
}

}  // namespace flim::fleet

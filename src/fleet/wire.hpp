// Blocking TCP sockets with RAII ownership and line framing.
//
// The fleet protocol is one JSON object per newline-terminated line over a
// plain blocking TCP connection -- no third-party networking, no async
// machinery. This header is the only place in src/fleet allowed to touch
// raw socket file descriptors (tools/flim_lint.py's `fleet-naked-socket`
// rule enforces that); everything above it sees RAII Socket handles and a
// buffered LineChannel. Socket I/O failures throw std::runtime_error --
// they are environmental, not configuration errors, and callers retry or
// surface them distinctly from FLIM_REQUIRE violations.
#pragma once

/// \file
/// RAII TCP sockets, poll-based timeouts, connect-with-backoff, and
/// newline-delimited line framing for the fleet wire protocol.

#include <cstdint>
#include <optional>
#include <string>

#include "core/backoff.hpp"
#include "core/rng.hpp"

/// Distributed campaign fleet: coordinator/worker shard leasing over TCP.
namespace flim::fleet {

/// Owns one socket file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 means empty).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The owned descriptor, or -1 when empty.
  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// The locally bound TCP port of this socket (ephemeral port-0 binds read
  /// their real port back through this). Throws std::runtime_error on an
  /// empty socket or a failed query.
  int local_port() const;
  /// Closes the descriptor now (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (port 0 picks an ephemeral port; read it
/// back with local_port). Throws std::runtime_error on failure.
Socket listen_on(const std::string& host, int port, int backlog = 16);

/// The locally bound port of a listening socket (delegates to
/// Socket::local_port; kept for call sites reading better as a free call).
int local_port(const Socket& listener);

/// Waits up to `timeout_ms` for a pending connection and accepts it.
/// Returns nullopt on timeout; throws std::runtime_error on socket errors.
std::optional<Socket> accept_with_timeout(const Socket& listener,
                                          std::int64_t timeout_ms);

/// One blocking connect attempt. Throws std::runtime_error on failure.
Socket connect_to(const std::string& host, int port);

/// Retries connect_to under the shared backoff policy until it succeeds or
/// `max_attempts` connection attempts fail (then rethrows the last error).
/// Jitter draws from `rng`, so retry schedules are reproducible in tests.
Socket connect_with_retry(const std::string& host, int port,
                          const core::BackoffPolicy& policy, int max_attempts,
                          core::Rng& rng);

/// Outcome of LineChannel::recv_line.
enum class RecvStatus {
  kLine,     ///< A complete line arrived (in RecvResult::line).
  kEof,      ///< The peer closed the connection cleanly.
  kTimeout,  ///< No complete line within the timeout.
};

/// One receive attempt: a status plus the line when status is kLine.
struct RecvResult {
  RecvStatus status = RecvStatus::kEof;
  std::string line;
};

/// Buffered newline-delimited message framing over one connected Socket.
/// Not thread-safe; each endpoint drives its channel from one thread.
class LineChannel {
 public:
  /// Takes ownership of a connected socket.
  explicit LineChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Sends `line` plus a terminating newline, looping over partial writes.
  /// Throws std::runtime_error on socket errors (including a closed peer)
  /// and std::invalid_argument when `line` itself contains a newline.
  void send_line(const std::string& line);

  /// Receives the next newline-terminated line (without the newline).
  /// `timeout_ms` < 0 blocks indefinitely. Lines beyond kMaxLineBytes throw
  /// std::runtime_error (a peer speaking garbage, not a torn message).
  RecvResult recv_line(std::int64_t timeout_ms);

  /// Closes the underlying socket now.
  void close() { socket_.close(); }

  /// Framing sanity cap: no legal fleet message (including a whole uploaded
  /// shard file) approaches this.
  static constexpr std::size_t kMaxLineBytes = 256ull * 1024 * 1024;

 private:
  Socket socket_;
  std::string buffer_;
};

}  // namespace flim::fleet

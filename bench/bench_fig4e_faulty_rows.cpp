// Fig 4e: whole faulty rows on a 40x10 crossbar per layer -- one
// faulty-rows x layer scenario on the paper's array geometry.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  std::vector<int> rows;
  for (int r = 0; r <= 20; r += 2) rows.push_back(r);

  exp::ScenarioSpec spec;
  spec.name = "fig4e_faulty_rows";
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault.kind = fault::FaultKind::kBitFlip;
  spec.grid = {40, 10};
  spec.axes = {exp::faulty_rows_axis(rows), exp::layers_axis(series)};
  spec.repetitions = options.repetitions;
  spec.master_seed = options.master_seed;

  exp::ScenarioRunner runner(spec);
  const exp::Workload fx = benchx::load_bench_workload(spec.workload);
  const exp::ScenarioResult result =
      runner.run(fx, benchx::store_options_from_env(spec.name),
                 [&](const exp::ScenarioPoint& p) {
        if (p.labels[1] == series.back()) {
          std::cerr << "[fig4e] " << p.labels[0] << " affected rows done\n";
        }
      });

  std::vector<std::string> columns{"affected_rows"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> row{std::to_string(rows[i])};
    for (std::size_t j = 0; j < series.size(); ++j) {
      row.push_back(benchx::pct(result.at({i, j}).mean));
    }
    table.add_row(std::move(row));
  }

  benchx::emit("Fig 4e: affected rows on a 40x10 crossbar vs accuracy",
               "fig4e_faulty_rows", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: each row corrupts only 1/40 of the mapped "
               "ops, so the impact per faulty row is weaker than per faulty "
               "column (Fig 4d).\n";
  return 0;
}

// Fig 4e: whole faulty rows on a 40x10 crossbar per layer.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const lim::CrossbarGeometry grid{40, 10};

  std::vector<std::string> columns{"affected_rows"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (int rows = 0; rows <= 20; rows += 2) {
    std::vector<std::string> row{std::to_string(rows)};
    for (const auto& s : series) {
      const std::vector<std::string> filter =
          s == "combined" ? std::vector<std::string>{}
                          : std::vector<std::string>{s};
      const core::Summary summary =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kBitFlip;
            spec.faulty_rows = rows;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, filter, spec, seed,
                                                grid);
          });
      row.push_back(benchx::pct(summary.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig4e] " << rows << " affected rows done\n";
  }

  benchx::emit("Fig 4e: affected rows on a 40x10 crossbar vs accuracy",
               "fig4e_faulty_rows", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: each row corrupts only 1/40 of the mapped "
               "ops, so the impact per faulty row is weaker than per faulty "
               "column (Fig 4d).\n";
  return 0;
}

// Ablation A2: stateful logic family (MAGIC vs IMPLY) -- pulses, modeled
// latency and energy per XNOR, and the projected cost of the LeNet layers.
#include <iostream>

#include "bench_common.hpp"
#include "lim/crossbar.hpp"
#include "lim/logic_family.hpp"
#include "lim/mapper.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  core::Table cost({"family", "pulses_per_xnor", "latency_ns_per_xnor",
                    "energy_pJ_per_xnor"});
  lim::CrossbarConfig electrical;
  for (const auto kind :
       {lim::LogicFamilyKind::kMagic, lim::LogicFamilyKind::kImply}) {
    const auto family = lim::make_logic_family(kind);
    const lim::XnorCost c = lim::calibrate_xnor_cost(electrical, *family);
    cost.add(lim::to_string(kind), c.pulses,
             core::format_double(c.latency_seconds * 1e9, 2),
             core::format_double(c.avg_energy_joules * 1e12, 3));
  }
  benchx::emit("Ablation A2a: calibrated per-XNOR cost by logic family",
               "ablation_logic_family_cost", cost);

  core::Table layers({"layer", "xnor_ops_per_image", "MAGIC_passes",
                      "MAGIC_latency_us", "IMPLY_latency_us",
                      "IMPLY_overhead_x"});
  const lim::CrossbarGeometry geom{128, 128};
  lim::CrossbarMapper magic(geom, 4, lim::LogicFamilyKind::kMagic, electrical);
  lim::CrossbarMapper imply(geom, 4, lim::LogicFamilyKind::kImply, electrical);
  for (const auto& layer : fx.layers) {
    const auto ops = layer.product_terms_per_image();
    const auto rm = magic.map_ops(ops);
    const auto ri = imply.map_ops(ops);
    layers.add(layer.layer_name, ops, rm.passes,
               core::format_double(rm.latency_seconds * 1e6, 1),
               core::format_double(ri.latency_seconds * 1e6, 1),
               core::format_double(ri.latency_seconds / rm.latency_seconds, 2));
  }
  benchx::emit(
      "Ablation A2b: projected LeNet layer latency by family (4x 128x128 "
      "arrays)",
      "ablation_logic_family_layers", layers);
  std::cout << "reading: IMPLY's longer micro-op schedule (11 vs 8 pulses) "
               "translates directly into per-layer latency overhead; both "
               "families compute identical XNOR results (see lim tests).\n";
  return 0;
}

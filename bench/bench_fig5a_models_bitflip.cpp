// Fig 5a: bit-flip resilience across the nine Table-II model families --
// one rate-axis scenario per family, sharing the workload/axis spec.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);        // zoo-scale training
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);

  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20};
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (const double r : rates) {
    columns.push_back("rate_" + core::format_double(r * 100.0, 0) + "%_acc_%");
  }
  core::Table table(columns);

  for (const auto& name : models::zoo_model_names()) {
    exp::ScenarioSpec spec;
    spec.name = "fig5a_" + name;
    spec.workload = benchx::zoo_workload_spec(name, options);
    spec.fault.kind = fault::FaultKind::kBitFlip;
    spec.axes = {benchx::rate_or_expr_axis(rates)};
    spec.repetitions = options.repetitions;
    spec.master_seed = options.master_seed;

    exp::ScenarioRunner runner(spec);
    const exp::Workload fx = benchx::load_bench_workload(spec.workload);
    const exp::ScenarioResult result =
        runner.run(fx, benchx::store_options_from_env(spec.name));

    std::vector<std::string> row{name, benchx::pct(fx.clean_accuracy)};
    for (std::size_t i = 0; i < rates.size(); ++i) {
      row.push_back(benchx::pct(result.at({i}).mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5a] " << name << " done\n";
  }

  benchx::emit("Fig 5a: bit-flips across BNN model families",
               "fig5a_models_bitflip", table);
  std::cout << "expected shape: all models degrade with rate; models with "
               "real-valued shortcut activations (BiRealNet, RealToBinaryNet) "
               "and gain scaling (XNORNet) retain accuracy longer.\n";
  return 0;
}

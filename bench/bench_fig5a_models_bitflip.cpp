// Fig 5a: bit-flip resilience across the nine Table-II model families.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);        // zoo-scale training
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);
  const benchx::ZooFixture fx = benchx::make_zoo_fixture(options);

  const std::vector<double> rates{0.0, 0.05, 0.10, 0.15, 0.20};
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (const double r : rates) {
    columns.push_back("rate_" + core::format_double(r * 100.0, 0) + "%_acc_%");
  }
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const auto& name : models::zoo_model_names()) {
    const bnn::Model model = benchx::load_zoo_model(name, fx, options);
    const auto layers =
        model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f))
            .binarized_layers;
    bnn::ReferenceEngine ref;
    const double clean = model.evaluate(fx.eval_batch, ref);

    std::vector<std::string> row{name, benchx::pct(clean)};
    for (const double rate : rates) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kBitFlip;
            spec.injection_rate = rate;
            return benchx::evaluate_with_faults(model, fx.eval_batch, layers,
                                                {}, spec, seed, {64, 64});
          });
      row.push_back(benchx::pct(s.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5a] " << name << " done\n";
  }

  benchx::emit("Fig 5a: bit-flips across BNN model families",
               "fig5a_models_bitflip", table);
  std::cout << "expected shape: all models degrade with rate; models with "
               "real-valued shortcut activations (BiRealNet, RealToBinaryNet) "
               "and gain scaling (XNORNet) retain accuracy longer.\n";
  return 0;
}

// Fig 4c: dynamic faults -- accuracy vs the number of XNOR operations needed
// to sensitize the fault (period 0 = static/every execution).
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const double rate = 0.20;  // fixed bit-flip density of the dynamic mask

  std::vector<std::string> columns{"period"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (int period = 0; period <= 4; ++period) {
    std::vector<std::string> row{std::to_string(period)};
    for (const auto& s : series) {
      const std::vector<std::string> filter =
          s == "combined" ? std::vector<std::string>{}
                          : std::vector<std::string>{s};
      const core::Summary summary =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kDynamic;
            spec.injection_rate = rate;
            spec.dynamic_period = period;
            return benchx::evaluate_with_faults(fx.model, fx.eval_batch,
                                                fx.layers, filter, spec, seed,
                                                {64, 64});
          });
      row.push_back(benchx::pct(summary.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig4c] period " << period << " done\n";
  }

  benchx::emit(
      "Fig 4c: dynamic faults -- sensitization period vs accuracy (20% mask)",
      "fig4c_dynamic_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: accuracy recovers toward the clean value by "
               "period ~4 (paper: stabilizes around four XNOR ops).\n";
  return 0;
}

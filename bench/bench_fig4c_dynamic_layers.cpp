// Fig 4c: dynamic faults -- accuracy vs the number of XNOR operations needed
// to sensitize the fault (period 0 = static/every execution). One
// period x layer scenario at a fixed 20% mask density.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();

  std::vector<std::string> series = models::lenet_faultable_layers();
  series.push_back("combined");
  const std::vector<int> periods{0, 1, 2, 3, 4};

  exp::ScenarioSpec spec;
  spec.name = "fig4c_dynamic_layers";
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault.kind = fault::FaultKind::kDynamic;
  spec.fault.injection_rate = 0.20;  // fixed bit-flip density of the mask
  spec.axes = {exp::period_axis(periods), exp::layers_axis(series)};
  spec.repetitions = options.repetitions;
  spec.master_seed = options.master_seed;

  exp::ScenarioRunner runner(spec);
  const exp::Workload fx = benchx::load_bench_workload(spec.workload);
  const exp::ScenarioResult result =
      runner.run(fx, benchx::store_options_from_env(spec.name),
                 [&](const exp::ScenarioPoint& p) {
        if (p.labels[1] == series.back()) {
          std::cerr << "[fig4c] period " << p.labels[0] << " done\n";
        }
      });

  std::vector<std::string> columns{"period"};
  for (const auto& s : series) columns.push_back(s + "_acc_%");
  core::Table table(columns);
  for (std::size_t i = 0; i < periods.size(); ++i) {
    std::vector<std::string> row{std::to_string(periods[i])};
    for (std::size_t j = 0; j < series.size(); ++j) {
      row.push_back(benchx::pct(result.at({i, j}).mean));
    }
    table.add_row(std::move(row));
  }

  benchx::emit(
      "Fig 4c: dynamic faults -- sensitization period vs accuracy (20% mask)",
      "fig4c_dynamic_layers", table);
  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy) << "%\n";
  std::cout << "expected shape: accuracy recovers toward the clean value by "
               "period ~4 (paper: stabilizes around four XNOR ops).\n";
  return 0;
}

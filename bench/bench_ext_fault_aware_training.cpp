// Extension E1 (the paper's future work): fault injection during training.
//
// Trains two binary LeNets with the same budget -- one clean, one with
// training-time fault injection wired to a fixed fault-vector file -- and
// evaluates both under (a) no faults and (b) the injected distribution.
// Fault-aware training should recover a substantial part of the accuracy
// the clean-trained model loses under the same faults.
#include <iostream>

#include "bench_common.hpp"
#include "bnn/flim_engine.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  data::SyntheticMnistOptions d;
  d.size = options.train_samples + options.eval_images;
  data::SyntheticMnist dataset(d);

  // A fixed defect map: 15% bit-flips plus 2% stuck-at on every
  // crossbar-mapped layer.
  fault::FaultGenerator gen({64, 64});
  core::Rng rng(options.master_seed);
  fault::FaultVectorFile vectors;
  for (const auto& layer : models::lenet_faultable_layers()) {
    fault::FaultSpec flips;
    flips.kind = fault::FaultKind::kBitFlip;
    flips.injection_rate = 0.15;
    fault::FaultVectorEntry e;
    e.layer_name = layer;
    e.mask = gen.generate(flips, rng);
    // Add stuck-at cells into the same mask.
    fault::FaultSpec stuck;
    stuck.kind = fault::FaultKind::kStuckAt;
    stuck.injection_rate = 0.02;
    const fault::FaultMask sa = gen.generate(stuck, rng);
    for (std::int64_t s = 0; s < sa.num_slots(); ++s) {
      if (sa.sa0(s)) e.mask.set_sa0(s, true);
      if (sa.sa1(s)) e.mask.set_sa1(s, true);
    }
    vectors.add(std::move(e));
  }

  train::TrainConfig cfg;
  cfg.epochs = options.epochs;
  cfg.batch_size = 32;
  cfg.train_samples = options.train_samples;

  std::cerr << "[ext-training] training clean LeNet...\n";
  train::Graph clean_graph = models::build_lenet_binary(options.master_seed);
  train::Adam adam1(2e-3f);
  train::fit(clean_graph, adam1, dataset, cfg);
  bnn::Model clean_model = clean_graph.to_inference_model();

  std::cerr << "[ext-training] training fault-aware LeNet...\n";
  train::Graph aware_graph = models::build_lenet_binary_fault_aware(
      options.master_seed, vectors, /*active_probability=*/0.8);
  train::Adam adam2(2e-3f);
  train::fit(aware_graph, adam2, dataset, cfg);
  bnn::Model aware_model = aware_graph.to_inference_model();

  const data::Batch test =
      data::load_batch(dataset, options.train_samples, options.eval_images);

  bnn::ReferenceEngine ref;
  bnn::FlimEngine faulty(vectors);

  core::Table table(
      {"training", "clean_acc_%", "faulty_acc_%", "drop_points"});
  const double c0 = clean_model.evaluate(test, ref);
  faulty.reset_time();
  const double c1 = clean_model.evaluate(test, faulty);
  table.add("standard", benchx::pct(c0), benchx::pct(c1),
            benchx::pct(c0 - c1));
  const double a0 = aware_model.evaluate(test, ref);
  faulty.reset_time();
  const double a1 = aware_model.evaluate(test, faulty);
  table.add("fault-aware", benchx::pct(a0), benchx::pct(a1),
            benchx::pct(a0 - a1));

  benchx::emit(
      "Extension E1: fault-aware training (15% flips + 2% stuck-at)",
      "ext_fault_aware_training", table);
  std::cout << "expected shape: the fault-aware model loses fewer points "
               "under the trained-for fault distribution, at a small clean-"
               "accuracy cost -- the paper's proposed future extension.\n";
  return 0;
}

// Serving-path latency: cold vs warm request cost through the PlanCache.
//
// The evaluation server's pitch is that everything before the forward
// passes -- workload load (or training), ForwardPlan compilation, fault
// expression parsing, workspace sizing -- is paid once per (model, engine,
// fault-expr) key and amortized across requests. This bench measures that
// directly: the first request against an empty cache (cold) vs repeated
// requests against the warm entry, plus the batcher's same-key coalescing
// counters for one submitted burst.
//
// Flags:
//   --quick       tiny sizes for CI smoke runs
//   --json PATH   machine-readable JSON output (default
//                 $FLIM_BENCH_JSON or ./BENCH_serve_latency.json)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/eval_point.hpp"
#include "serve/batcher.hpp"
#include "serve/plan_cache.hpp"

using namespace flim;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = [] {
    if (const char* v = std::getenv("FLIM_BENCH_JSON")) return std::string(v);
    return std::string("BENCH_serve_latency.json");
  }();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--quick] [--json PATH]\n";
      return 2;
    }
  }

  benchx::BenchOptions options = benchx::options_from_env();
  if (quick) {
    options.train_samples = std::min<std::int64_t>(options.train_samples, 256);
    options.epochs = 1;
    options.eval_images = std::min<std::int64_t>(options.eval_images, 64);
  }
  const int repetitions = quick ? 2 : options.repetitions;
  const int warm_requests = quick ? 5 : 20;

  exp::EvalPointSpec spec;
  spec.workload = benchx::lenet_workload_spec(options);
  spec.fault_expr = "stuckat(rate=2e-3,sa1=0.7)";
  spec.repetitions = repetitions;
  spec.master_seed = options.master_seed;

  serve::PlanCache cache(4, 1);

  // Cold: the first request pays workload load/training, plan compilation,
  // expression parsing, and workspace growth on top of the forward passes.
  std::cerr << "[serve] cold request (empty cache)...\n";
  const auto cold_start = std::chrono::steady_clock::now();
  std::shared_ptr<serve::CacheEntry> entry = cache.get_or_create(spec);
  const std::string cold_payload =
      entry->evaluate_payload(spec.repetitions, spec.master_seed, nullptr);
  const double cold_ms = ms_since(cold_start);

  // Warm: repeats of the same request hit the warm entry and pay only the
  // forward passes. A differently spelled expression must land on the same
  // entry (canonical keying), so it rides in the warm loop.
  std::cerr << "[serve] " << warm_requests << " warm request(s)...\n";
  exp::EvalPointSpec respelled = spec;
  respelled.fault_expr = "stuckat(sa1=0.70, rate=0.002)";
  double warm_total_ms = 0.0;
  double warm_min_ms = 0.0;
  for (int i = 0; i < warm_requests; ++i) {
    const exp::EvalPointSpec& request = (i % 2 == 0) ? spec : respelled;
    const auto start = std::chrono::steady_clock::now();
    const std::shared_ptr<serve::CacheEntry> warm =
        cache.get_or_create(request);
    const std::string payload =
        warm->evaluate_payload(request.repetitions, request.master_seed,
                               nullptr);
    const double ms = ms_since(start);
    warm_total_ms += ms;
    warm_min_ms = (i == 0) ? ms : std::min(warm_min_ms, ms);
    if (warm.get() != entry.get() || payload != cold_payload) {
      std::cerr << "serve bench: warm request diverged from the cold one\n";
      return 1;
    }
  }
  const double warm_mean_ms = warm_total_ms / warm_requests;
  const double speedup = warm_mean_ms > 0.0 ? cold_ms / warm_mean_ms : 0.0;
  const serve::CacheCounters cc = cache.counters();

  // One same-key burst through the batcher: every request after the first
  // coalesces into the batch and the identical protocol shares a single
  // evaluation.
  const int burst = 4;
  serve::BatcherOptions bopts;
  bopts.start_thread = false;
  serve::Batcher batcher(bopts);
  std::vector<std::shared_ptr<serve::Ticket>> tickets;
  for (int i = 0; i < burst; ++i) {
    tickets.push_back(std::make_shared<serve::Ticket>());
    if (batcher.submit(entry, spec.repetitions, spec.master_seed, -1,
                       tickets.back()) != serve::SubmitStatus::kAccepted) {
      std::cerr << "serve bench: burst submit rejected\n";
      return 1;
    }
  }
  const auto burst_start = std::chrono::steady_clock::now();
  while (batcher.pump()) {
  }
  const double burst_ms = ms_since(burst_start);
  for (const auto& ticket : tickets) {
    ticket->wait();
    if (!ticket->ok() || ticket->payload() != cold_payload) {
      std::cerr << "serve bench: batched payload diverged\n";
      return 1;
    }
  }
  const serve::BatcherCounters bc = batcher.counters();

  std::cout << "serve latency (lenet, " << spec.fault_expr << ", reps="
            << repetitions << ")\n"
            << "  cold request        " << json_number(cold_ms) << " ms\n"
            << "  warm request mean   " << json_number(warm_mean_ms)
            << " ms  (min " << json_number(warm_min_ms) << " ms, n="
            << warm_requests << ")\n"
            << "  warm-path speedup   " << json_number(speedup) << "x\n"
            << "  cache               " << cc.hits << " hit(s), " << cc.misses
            << " miss(es)\n"
            << "  burst of " << burst << "          " << json_number(burst_ms)
            << " ms, " << bc.batches << " batch(es), " << bc.coalesced
            << " coalesced\n";

  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"serve_latency\",\n"
     << "  \"model\": \"lenet\",\n"
     << "  \"fault_expr\": \"stuckat(rate=2e-3,sa1=0.7)\",\n"
     << "  \"repetitions\": " << repetitions << ",\n"
     << "  \"eval_images\": " << options.eval_images << ",\n"
     << "  \"cold_ms\": " << json_number(cold_ms) << ",\n"
     << "  \"warm_mean_ms\": " << json_number(warm_mean_ms) << ",\n"
     << "  \"warm_min_ms\": " << json_number(warm_min_ms) << ",\n"
     << "  \"warm_requests\": " << warm_requests << ",\n"
     << "  \"warm_speedup\": " << json_number(speedup) << ",\n"
     << "  \"cache_hits\": " << cc.hits << ",\n"
     << "  \"cache_misses\": " << cc.misses << ",\n"
     << "  \"burst_requests\": " << burst << ",\n"
     << "  \"burst_ms\": " << json_number(burst_ms) << ",\n"
     << "  \"burst_batches\": " << bc.batches << ",\n"
     << "  \"burst_coalesced\": " << bc.coalesced << "\n"
     << "}\n";
  std::ofstream out(json_path);
  out << js.str();
  std::cerr << "[serve] wrote " << json_path << "\n";
  return 0;
}

// Fig 5b: stuck-at resilience across the nine Table-II model families.
// The paper sweeps a much smaller rate range than Fig 5a (0..2%) because
// permanent faults are far more damaging. One scenario per family.
#include <iostream>

#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);

  const std::vector<double> rates{0.0, 0.005, 0.01, 0.015, 0.02};
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (const double r : rates) {
    columns.push_back("rate_" + core::format_double(r * 100.0, 1) + "%_acc_%");
  }
  core::Table table(columns);

  for (const auto& name : models::zoo_model_names()) {
    exp::ScenarioSpec spec;
    spec.name = "fig5b_" + name;
    spec.workload = benchx::zoo_workload_spec(name, options);
    spec.fault.kind = fault::FaultKind::kStuckAt;
    spec.axes = {benchx::rate_or_expr_axis(rates)};
    spec.repetitions = options.repetitions;
    spec.master_seed = options.master_seed;

    exp::ScenarioRunner runner(spec);
    const exp::Workload fx = benchx::load_bench_workload(spec.workload);
    const exp::ScenarioResult result =
        runner.run(fx, benchx::store_options_from_env(spec.name));

    std::vector<std::string> row{name, benchx::pct(fx.clean_accuracy)};
    for (std::size_t i = 0; i < rates.size(); ++i) {
      row.push_back(benchx::pct(result.at({i}).mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5b] " << name << " done\n";
  }

  benchx::emit("Fig 5b: stuck-at faults across BNN model families",
               "fig5b_models_stuckat", table);
  std::cout << "expected shape: permanent stuck-at faults compromise "
               "accuracy at rates an order of magnitude below the Fig 5a "
               "bit-flip rates.\n";
  return 0;
}

// Fig 5b: stuck-at resilience across the nine Table-II model families.
// The paper sweeps a much smaller rate range than Fig 5a (0..2%) because
// permanent faults are far more damaging.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "models/zoo.hpp"

using namespace flim;

int main() {
  benchx::BenchOptions options = benchx::options_from_env();
  options.epochs = std::min(options.epochs, 2);
  options.train_samples = std::min<std::int64_t>(options.train_samples, 2000);
  const benchx::ZooFixture fx = benchx::make_zoo_fixture(options);

  const std::vector<double> rates{0.0, 0.005, 0.01, 0.015, 0.02};
  std::vector<std::string> columns{"model", "clean_acc_%"};
  for (const double r : rates) {
    columns.push_back("rate_" + core::format_double(r * 100.0, 1) + "%_acc_%");
  }
  core::Table table(columns);

  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  for (const auto& name : models::zoo_model_names()) {
    const bnn::Model model = benchx::load_zoo_model(name, fx, options);
    const auto layers =
        model.analyze(tensor::FloatTensor(tensor::Shape{1, 3, 32, 32}, 0.3f))
            .binarized_layers;
    bnn::ReferenceEngine ref;
    const double clean = model.evaluate(fx.eval_batch, ref);

    std::vector<std::string> row{name, benchx::pct(clean)};
    for (const double rate : rates) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::kStuckAt;
            spec.injection_rate = rate;
            return benchx::evaluate_with_faults(model, fx.eval_batch, layers,
                                                {}, spec, seed, {64, 64});
          });
      row.push_back(benchx::pct(s.mean));
    }
    table.add_row(std::move(row));
    std::cerr << "[fig5b] " << name << " done\n";
  }

  benchx::emit("Fig 5b: stuck-at faults across BNN model families",
               "fig5b_models_stuckat", table);
  std::cout << "expected shape: permanent stuck-at faults compromise "
               "accuracy at rates an order of magnitude below the Fig 5a "
               "bit-flip rates.\n";
  return 0;
}

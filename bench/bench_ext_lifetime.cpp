// Extension E5: accuracy over the deployment lifetime, with and without
// mitigation.
//
// Operationalizes the paper's lifetime narrative (transient flips from
// environmental variation, stuck-at faults toward end of life) and its
// conclusion that monitoring/mitigation strategies are mandatory: the
// LeNet/MNIST workload ages under a Poisson upset process and a Weibull
// wear-out process while four mitigation stacks -- none, scrubbing,
// scrubbing+SEC-DED, scrubbing+SEC-DED+TMR -- are evaluated on the same
// fault trajectory seeds.
#include <iostream>

#include "bench_common.hpp"
#include "reliability/lifetime.hpp"

using namespace flim;

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  const benchx::LenetFixture fx = benchx::make_lenet_fixture(options);

  reliability::LifetimeConfig cfg;
  cfg.grid = {64, 64};
  cfg.step_hours = 2000.0;
  cfg.horizon_hours = 20000.0;
  cfg.wearout.scale_hours = 16000.0;
  cfg.wearout.shape = 2.2;
  cfg.transients.upsets_per_grid_hour = 0.05;
  cfg.seed = options.master_seed;
  const reliability::LifetimeSimulator sim(cfg);

  std::vector<reliability::MitigationStack> stacks(4);
  stacks[1].scrub = true;
  stacks[1].scrub_period_hours = cfg.step_hours;
  stacks[2] = stacks[1];
  stacks[2].ecc = true;
  stacks[2].ecc_options.word_bits = 32;  // tolerate ~2x the fault density
  stacks[2].ecc_options.interleave = 4;
  stacks[3] = stacks[2];
  stacks[3].modular_redundancy = 3;

  std::vector<std::string> columns{"hours"};
  for (const auto& stack : stacks) columns.push_back(stack.name() + "_acc_%");
  core::Table table(columns);

  std::vector<reliability::LifetimeCurve> curves;
  for (const auto& stack : stacks) {
    curves.push_back(sim.simulate(fx.model, fx.eval_batch, fx.layers, stack));
    std::cerr << "[lifetime] " << stack.name() << " done\n";
  }

  for (std::size_t p = 0; p < curves.front().points.size(); ++p) {
    std::vector<std::string> row{
        core::format_double(curves.front().points[p].hours, 0)};
    for (const auto& curve : curves) {
      row.push_back(benchx::pct(curve.points[p].accuracy));
    }
    table.add_row(std::move(row));
  }
  benchx::emit("Extension E5: accuracy over lifetime per mitigation stack",
               "ext_lifetime", table);

  // Useful-life summary: first crossing of 80% of clean accuracy.
  const double threshold = 0.8 * fx.clean_accuracy;
  core::Table summary({"mitigation", "useful_life_hours"});
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    const auto hours = curves[i].hours_to_threshold(threshold);
    summary.add(stacks[i].name(),
                hours ? core::format_double(*hours, 0) : ">horizon");
  }
  benchx::emit("Extension E5b: useful life (accuracy >= 80% of clean)",
               "ext_lifetime_summary", summary);

  std::cout << "clean accuracy: " << benchx::pct(fx.clean_accuracy)
            << "%; threshold: " << benchx::pct(threshold) << "%\n";
  std::cout
      << "expected shape: unmitigated accuracy decays with accumulating "
         "upsets and collapses past the Weibull knee; scrubbing removes the "
         "transient component; ECC hides sparse wear-out and defers the "
         "collapse; TMR survives until multiple replicas wear out.\n";
  return 0;
}

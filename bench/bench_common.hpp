// Shared infrastructure for the figure/table bench binaries.
//
// Every bench prints the paper-shaped table to stdout and writes a CSV into
// the results directory ($FLIM_RESULTS_DIR, default ./results). Scale knobs
// come from the environment so CI can run quick passes while a full
// reproduction can match the paper's 100 repetitions:
//   FLIM_BENCH_REPS          campaign repetitions (default 10, paper: 100)
//   FLIM_BENCH_EVAL_IMAGES   evaluation images per repetition (default 200)
//   FLIM_BENCH_TRAIN_SAMPLES training samples for the cached models
//   FLIM_BENCH_EPOCHS        training epochs for the cached models
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bnn/engine.hpp"
#include "bnn/model.hpp"
#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "data/synthetic_mnist.hpp"
#include "exp/scenario.hpp"
#include "fault/fault_spec.hpp"
#include "lim/mapper.hpp"

namespace flim::benchx {

/// Scale configuration resolved from the environment.
struct BenchOptions {
  int repetitions = 10;
  std::int64_t eval_images = 200;
  std::int64_t train_samples = 3000;
  int epochs = 3;
  std::uint64_t master_seed = 2023;  // DAC'23
};

/// Reads the environment knobs.
BenchOptions options_from_env();

/// Shared LeNet fixture: synthetic MNIST, the cached pretrained binary
/// LeNet, its binarized-layer workloads, and a held-out evaluation batch.
struct LenetFixture {
  data::SyntheticMnist dataset;
  bnn::Model model;
  std::vector<bnn::LayerWorkload> layers;
  data::Batch eval_batch;
  double clean_accuracy = 0.0;
};

/// Builds (or loads from the weight cache) the LeNet fixture.
LenetFixture make_lenet_fixture(const BenchOptions& options);

/// Workload spec for the shared LeNet fixture on the scenario layer
/// (exp::ScenarioSpec::workload for the figure benches).
exp::WorkloadSpec lenet_workload_spec(const BenchOptions& options);

/// Workload spec for one Table-II zoo model on the scenario layer.
exp::WorkloadSpec zoo_workload_spec(const std::string& name,
                                    const BenchOptions& options);

/// Loads a workload and logs its clean accuracy to stderr (the scenario-
/// layer replacement for make_lenet_fixture / load_zoo_model).
exp::Workload load_bench_workload(const exp::WorkloadSpec& spec);

/// Durable-store options for a figure bench. When $FLIM_BENCH_STORE_DIR is
/// set, the bench streams each completed grid point to
/// `<dir>/<scenario_name>.run.jsonl` and resumes from that file when it
/// already exists -- an interrupted paper-scale reproduction (FLIM_BENCH_REPS
/// =100) picks up where it was killed instead of restarting, bit-identically.
/// Unset, the default in-memory behaviour is unchanged.
exp::StoreOptions store_options_from_env(const std::string& scenario_name);

/// The rate axis of a figure bench, overridable through the composable
/// fault-model registry: when $FLIM_BENCH_FAULT_EXPR is set (an expression
/// with '@' as the swept-rate placeholder, e.g. "readdisturb(rate=@)" or
/// "stuckat(rate=@)+drift(tau=2000)"), the swept axis becomes a
/// fault-expression axis with '@' expanded per rate -- the figure's grid
/// shape, table layout, and store/resume behaviour are unchanged, only the
/// injected fault stack is swapped. Unset, this is exactly
/// exp::rate_axis(rates), byte-identical to the pre-registry benches.
exp::ScenarioAxis rate_or_expr_axis(const std::vector<double>& rates);

/// Shared zoo fixture for the Fig 5 / Table II benches.
struct ZooFixture {
  data::SyntheticImagenet dataset;
  data::Batch eval_batch;
};

ZooFixture make_zoo_fixture(const BenchOptions& options);

/// Loads (or trains and caches) one zoo model.
bnn::Model load_zoo_model(const std::string& name, const ZooFixture& fixture,
                          const BenchOptions& options);

/// Evaluates `model` on `batch` with a FLIM engine configured from `spec`
/// applied to the named layers (empty = all `layers`), drawing mask
/// randomness from `seed` on the given virtual grid.
double evaluate_with_faults(const bnn::Model& model, const data::Batch& batch,
                            const std::vector<bnn::LayerWorkload>& layers,
                            const std::vector<std::string>& layer_filter,
                            const fault::FaultSpec& spec, std::uint64_t seed,
                            lim::CrossbarGeometry grid);

/// Prints the table and writes `<name>.csv` into the results directory.
void emit(const std::string& title, const std::string& csv_name,
          const core::Table& table);

/// Formats an accuracy fraction as percent with one decimal.
std::string pct(double accuracy_fraction);

}  // namespace flim::benchx

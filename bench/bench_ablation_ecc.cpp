// Ablation A4: SEC-DED code organization -- word size and interleaving.
//
// Sweeps the ECC design space at mask level: the fraction of stuck-at
// faults hidden from computation ("correction rate") under random cell
// defects and under burst defects (a damaged row segment), for word sizes
// 32/64 and interleave 1/4, together with the parity-cell overhead each
// organization pays. Demonstrates the design rule that interleaving, not
// shorter words, is what rescues spatially correlated defects.
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/rng.hpp"
#include "fault/fault_generator.hpp"
#include "reliability/ecc.hpp"

using namespace flim;

namespace {

constexpr std::int64_t kRows = 64;
constexpr std::int64_t kCols = 64;

/// Random stuck-at defects at `rate`.
fault::FaultMask random_mask(double rate, std::uint64_t seed) {
  core::Rng rng(seed);
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kStuckAt;
  spec.injection_rate = rate;
  fault::FaultGenerator gen({kRows, kCols});
  return gen.generate(spec, rng);
}

/// Burst defects: `bursts` damaged 8-cell row segments.
fault::FaultMask burst_mask(int bursts, std::uint64_t seed) {
  core::Rng rng(seed);
  fault::FaultMask mask(kRows, kCols);
  for (int b = 0; b < bursts; ++b) {
    const auto r = static_cast<std::int64_t>(rng.uniform(kRows));
    const auto c0 = static_cast<std::int64_t>(rng.uniform(kCols - 8));
    for (std::int64_t c = c0; c < c0 + 8; ++c) {
      mask.set_sa0(r * kCols + c, true);
    }
  }
  return mask;
}

/// Fraction of faulty bits removed by the scrub.
double correction_rate(const fault::FaultMask& mask,
                       const reliability::EccOptions& options) {
  reliability::EccScrubStats stats;
  (void)reliability::apply_secded_scrub(mask, options, &stats);
  if (stats.faulty_bits_before == 0) return 1.0;
  return 1.0 - static_cast<double>(stats.faulty_bits_after) /
                   static_cast<double>(stats.faulty_bits_before);
}

}  // namespace

int main() {
  const benchx::BenchOptions options = benchx::options_from_env();
  core::CampaignConfig campaign;
  campaign.repetitions = options.repetitions;
  campaign.master_seed = options.master_seed;

  const std::vector<reliability::EccOptions> organizations{
      {32, 1}, {64, 1}, {64, 4}, {64, 8}};

  core::Table random_table({"stuckat_rate_%", "w32_i1_%", "w64_i1_%",
                            "w64_i4_%", "w64_i8_%"});
  for (const double rate : {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}) {
    std::vector<std::string> row{core::format_double(rate * 100.0, 2)};
    for (const auto& org : organizations) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            return correction_rate(random_mask(rate, seed), org);
          });
      row.push_back(core::format_double(s.mean * 100.0, 1));
    }
    random_table.add_row(std::move(row));
  }
  benchx::emit(
      "Ablation A4a: ECC correction rate vs random stuck-at rate "
      "(word x interleave)",
      "ablation_ecc_random", random_table);

  core::Table burst_table({"bursts", "w32_i1_%", "w64_i1_%", "w64_i4_%",
                           "w64_i8_%"});
  for (const int bursts : {1, 2, 4, 8}) {
    std::vector<std::string> row{std::to_string(bursts)};
    for (const auto& org : organizations) {
      const core::Summary s =
          core::run_repeated(campaign, [&](std::uint64_t seed) {
            return correction_rate(burst_mask(bursts, seed), org);
          });
      row.push_back(core::format_double(s.mean * 100.0, 1));
    }
    burst_table.add_row(std::move(row));
  }
  benchx::emit("Ablation A4b: ECC correction rate vs 8-cell burst defects",
               "ablation_ecc_burst", burst_table);

  core::Table overhead({"organization", "parity_overhead_%"});
  for (const auto& org : organizations) {
    reliability::EccScrubStats stats;
    overhead.add("w" + std::to_string(org.word_bits) + "_i" +
                     std::to_string(org.interleave),
                 core::format_double(stats.overhead(org) * 100.0, 1));
  }
  benchx::emit("Ablation A4c: parity overhead per organization",
               "ablation_ecc_overhead", overhead);

  std::cout
      << "expected shape: at low random rates every organization corrects "
         "nearly everything (faults are isolated); shorter words help as "
         "rates grow (fewer collisions per word). Bursts expose the design "
         "rule that the interleave degree must cover the burst length: an "
         "8-cell burst defeats interleave 1 and 4 (>= 2 faults per word) "
         "and only interleave 8 isolates every cell.\n";
  return 0;
}
